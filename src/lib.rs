//! # quorum-commit — facade crate
//!
//! Re-exports the full public API of the quorum-based commit and
//! termination protocol reproduction (Huang & Li, ICDE 1988).
//!
//! See the individual crates for details:
//!
//! * [`simnet`] — deterministic discrete-event network simulator
//! * [`votes`] — Gifford weighted-voting replica control
//! * [`locks`] — per-site strict-2PL lock manager
//! * [`storage`] — write-ahead log and versioned item store
//! * [`election`] — coordinator election within a partition
//! * [`core`] — the commit & termination protocol state machines
//! * [`db`] — the distributed database node tying it all together
//! * [`cluster`] — sharded cluster runtime: client sessions,
//!   group-commit batching, live metrics
//! * [`harness`] — scenarios, failure injection, metrics, checkers

pub use qbc_cluster as cluster;
pub use qbc_core as core;
pub use qbc_db as db;
pub use qbc_election as election;
pub use qbc_harness as harness;
pub use qbc_locks as locks;
pub use qbc_simnet as simnet;
pub use qbc_storage as storage;
pub use qbc_votes as votes;
