//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `rand` APIs the simulator and harness use are reimplemented
//! here: [`rngs::SmallRng`] (a SplitMix64 generator), [`SeedableRng`],
//! [`Rng::gen_range`]/[`Rng::gen`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom`]. Determinism is the only contract the workspace
//! relies on: equal seeds give equal streams. Statistical quality beyond
//! SplitMix64 is not a goal.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `Self` from the full "standard" range:
/// `f64` in `[0, 1)`, integers uniform over their domain.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard-distribution value (`f64` in `[0, 1)`, ...).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-4i64..9);
            assert!((-4..9).contains(&z));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
