//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_in_slice() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
