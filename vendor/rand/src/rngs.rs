//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator (SplitMix64).
///
/// Matches the role `rand::rngs::SmallRng` plays in this workspace: a
/// cheap deterministic stream for simulations. The output stream is
/// stable across builds — experiment results quoted in docs depend on it.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when used
        // as a stream; trivially seedable from one word.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}
