//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset the threaded transport uses,
//! implemented over `std::sync::mpsc`. Semantics preserved: unbounded and
//! bounded (blocking-on-full) sends, timeout receives, disconnect
//! detection, clonable senders.

pub mod channel;
