//! Multi-producer channels with timeout receives.

use std::sync::mpsc;
use std::time::Duration;

/// Error returned by [`Sender::send`] when the receiver is gone;
/// carries the unsent message.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender has been dropped.
    Disconnected,
}

enum Tx<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            Tx::Bounded(s) => Tx::Bounded(s.clone()),
        }
    }
}

/// The sending half of a channel. Clonable; sends on a full bounded
/// channel block until space frees up.
pub struct Sender<T>(Tx<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking on a full bounded channel.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Waits up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Waits for a message until all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvTimeoutError> {
        self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
    }
}

/// An unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(Tx::Unbounded(tx)), Receiver(rx))
}

/// A bounded channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(Tx::Bounded(tx)), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_detected() {
        let (tx, rx) = bounded::<u8>(4);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_crosses_threads() {
        let (tx, rx) = bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(rx.recv_timeout(Duration::from_secs(1)).unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
