//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree: `new_value` draws a
/// fresh value directly, and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A boxed generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, UnionArm<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// An empty union (drawing from it panics until an arm is pushed).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            arms: Vec::new(),
            total_weight: 0,
        }
    }

    /// Adds one weighted arm.
    pub fn push(&mut self, weight: u32, arm: UnionArm<T>) {
        assert!(weight > 0, "prop_oneof weight must be positive");
        self.arms.push((weight, arm));
        self.total_weight += weight as u64;
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof with no arms");
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights cover the draw range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for_case(0);
        for _ in 0..200 {
            let v = (3u32..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1u64..=3).new_value(&mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng_for_case(1);
        let s = (1u32..5).prop_map(|x| x * 10).prop_flat_map(|x| x..x + 3);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((10..43).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = rng_for_case(2);
        let mut u = Union::new();
        u.push(1, Box::new(|_rng: &mut TestRng| 1u8));
        u.push(3, Box::new(|_rng: &mut TestRng| 2u8));
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng_for_case(3);
        let (a, b, c) = (0u8..2, 5u32..6, Just("x")).new_value(&mut rng);
        assert!(a < 2);
        assert_eq!(b, 5);
        assert_eq!(c, "x");
    }
}
