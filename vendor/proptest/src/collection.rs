//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for [`vec`]: an exact length or a length range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = rng_for_case(0);
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 7).new_value(&mut rng).len(), 7);
            let v = vec(0u8..5, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
