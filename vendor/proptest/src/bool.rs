//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy type of [`ANY`].
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

/// Uniformly random booleans.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}
