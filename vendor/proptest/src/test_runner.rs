//! Test execution support: configuration, case RNGs, failure type.

use std::fmt;

pub use rand::rngs::SmallRng as TestRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only `cases` is honored by the stub; the other fields exist so struct
/// literals written against real proptest keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // fast while still exercising the properties broadly.
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// Deterministic RNG for case number `case`: stable across machines and
/// runs, so failures are reproducible by case index.
pub fn rng_for_case(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x5EED_CA5E ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod run {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro pipeline works end to end, including tuple patterns
        /// and early `return Ok(())`.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), flip in crate::bool::ANY) {
            if flip {
                return Ok(());
            }
            prop_assume!(a + b < 100);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }
    }

    // Declared without a #[test] meta so it runs only when invoked by
    // the should_panic test below.
    proptest! {
        fn always_failing_property(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        always_failing_property();
    }
}
