//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`strategy::Strategy`] with `prop_map`/`prop_flat_map`,
//! range/tuple/`Just`/union strategies, [`collection::vec`],
//! [`bool::ANY`], the `proptest!`/`prop_oneof!`/`prop_assert*!` macros and
//! [`test_runner::ProptestConfig`] — over the vendored `rand`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its seed and the formatted
//!   assertion message; re-running is deterministic, so the case is
//!   reproducible but not minimized.
//! * **Fixed per-case seeding.** Case `i` of every test draws from a
//!   seed derived from `i` alone, so runs are stable across machines.
//! * `prop_assume!` skips the case instead of resampling.

pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Entry point macro: expands each `#[test] fn name(pat in strategy, ..)`
/// into a plain test that runs `cases` random instantiations of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::rng_for_case(__case);
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Chooses among several strategies, optionally weighted
/// (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::new();
        $(
            {
                let __s = $strat;
                __union.push($weight as u32, ::std::boxed::Box::new(
                    move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::new_value(&__s, rng)
                    },
                ));
            }
        )+
        __union
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case when the precondition does not hold.
/// (Real proptest resamples; the stub just passes the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
