//! `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Yields `Some` from the inner strategy with the given probability,
/// `None` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_range(0u64..1_000_000) < (self.some_probability * 1e6) as u64 {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// `Some` three times out of four (real proptest's default), `None`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.75, inner)
}

/// `Some` with probability `some_probability`.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "probability must be in [0, 1]"
    );
    OptionStrategy {
        inner,
        some_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn of_yields_both_variants_in_range() {
        let mut rng = rng_for_case(0);
        let s = of(3u32..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match s.new_value(&mut rng) {
                Some(v) => {
                    assert!((3..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > none, "Some dominates at p = 0.75 ({some}/{none})");
        assert!(none > 0, "None must appear");
    }

    #[test]
    fn weighted_extremes_are_deterministic() {
        let mut rng = rng_for_case(1);
        assert_eq!(weighted(0.0, 0u32..5).new_value(&mut rng), None);
        assert!(weighted(1.0, 0u32..5).new_value(&mut rng).is_some());
    }
}
