//! Derive half of the offline `serde` stand-in.
//!
//! Parses just enough of the item token stream to find the type name and
//! emits empty impls of the marker traits. Written without `syn`/`quote`
//! because the build container has no crates.io access. Supports the
//! non-generic structs and enums this workspace derives on; deriving on
//! a generic type is a compile error with a clear message.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive was applied to.
/// Returns `Err` with a message when the item is generic or unparseable.
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => return Err(format!("expected type name, found {other:?}")),
                    };
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "the offline serde stub cannot derive on generic type `{name}`"
                        ));
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)`, etc.: keep scanning.
            }
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".into())
}

fn marker_impls(input: TokenStream, imp: &str) -> TokenStream {
    match item_name(input) {
        Ok(name) => imp
            .replace("$name", &name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impls(input, "impl ::serde::Serialize for $name {}")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impls(input, "impl<'de> ::serde::Deserialize<'de> for $name {}")
}
