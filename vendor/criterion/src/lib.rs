//! Offline stand-in for `criterion`.
//!
//! Keeps `cargo bench` working without crates.io access: same macro
//! surface (`criterion_group!`, `criterion_main!`, `black_box`,
//! `Criterion::bench_function`, `Bencher::iter`), but measurement is a
//! plain calibrated wall-clock loop with mean/min reporting — no
//! statistics engine, no HTML reports.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark body.
pub struct Bencher {
    target: Duration,
    /// (total elapsed, iterations) recorded by the last `iter` call.
    sample: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count that fills the
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: double until one batch takes >= 1% of the window.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= self.target / 100 || batch >= 1 << 20 {
                break dt.max(Duration::from_nanos(1)) / (batch as u32).max(1);
            }
            batch *= 2;
        };
        let iters =
            (self.target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.sample = Some((t0.elapsed(), iters));
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(200),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target: self.target,
            sample: None,
        };
        f(&mut b);
        match b.sample {
            Some((elapsed, iters)) => {
                let mean = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<50} {:>12}/iter ({iters} iters)", fmt_ns(mean));
            }
            None => println!("{name:<50} (no measurement: body never called iter)"),
        }
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }
}
