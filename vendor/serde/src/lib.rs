//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its message and id
//! types so they are wire-ready, but nothing in-tree serializes yet and
//! the build container has no crates.io access. This crate keeps the
//! derive sites compiling: the traits are markers and the derive macros
//! (from the sibling `serde_derive` stub) emit empty impls. When a real
//! wire format lands, swap this path dependency for the real `serde`
//! without touching any derive site.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type is intended to be serializable.
pub trait Serialize {}

/// Marker: the type is intended to be deserializable.
pub trait Deserialize<'de>: Sized {}
