//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses (`lock()` returning a guard directly, no poisoning).
//! A poisoned std lock is recovered rather than propagated: the threaded
//! transport holds locks only for short topology queries, and a panic
//! there already fails the test run on join.

use std::sync::PoisonError;

/// Re-export of the std guard type; `lock()` returns it directly.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Arc::new(Mutex::new(1));
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
