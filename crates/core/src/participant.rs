//! The participant engine (Fig. 5 "PARTICIPANTS", shared by all
//! protocol variants).
//!
//! One `Participant` instance tracks one transaction at one site. The
//! engine implements the message handling of the paper's Fig. 5 with the
//! safe reading of the PREPARE rules (DESIGN.md §2 decision 4):
//!
//! * `PREPARE-TO-COMMIT` is honoured in `{W, PC}` (idempotent re-ack in
//!   PC), **ignored in PA**, answered with the decision in `{C, A}`;
//! * `PREPARE-TO-ABORT` is honoured in `{W, PA}`, **ignored in PC**,
//!   answered with the decision in `{C, A}`;
//! * direct `COMMIT`/`ABORT` commands are obeyed in any non-terminal
//!   state — the protocols only issue them once the opposite outcome is
//!   impossible.
//!
//! The [`FaultyMode`] switch re-creates the broken variant of Example 3
//! (answering prepares across the PC/PA wall) for the E3/E10 experiments.

use crate::actions::Action;
use crate::log::{LogRecord, RecoveredTxn};
use crate::messages::Msg;
use crate::states::{LocalState, Transition};
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::Version;
use std::sync::Arc;

/// Whether the participant honours the PC/PA mutual-ignore rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultyMode {
    /// Correct behaviour per Fig. 6: no PC↔PA transitions.
    #[default]
    Correct,
    /// The Example 3 counterexample: respond to PREPARE-TO-ABORT in PC
    /// and PREPARE-TO-COMMIT in PA. Demonstrably unsafe.
    AnswerAcrossWall,
}

/// Per-transaction participant configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParticipantConfig {
    /// Vote yes on `VOTE-REQ`? (A site votes no when it cannot perform
    /// the update, e.g. its I/O subsystem failed.)
    pub vote_yes: bool,
    /// Fault-injection switch for Example 3.
    pub faulty: FaultyMode,
}

impl Default for ParticipantConfig {
    fn default() -> Self {
        ParticipantConfig {
            vote_yes: true,
            faulty: FaultyMode::Correct,
        }
    }
}

/// The participant state machine for one transaction at one site.
#[derive(Clone, Debug)]
pub struct Participant {
    site: SiteId,
    txn: TxnId,
    cfg: ParticipantConfig,
    spec: Option<Arc<TxnSpec>>,
    state: LocalState,
    commit_version: Option<Version>,
    /// Audit trail of every state change (consumed by experiment E6).
    transitions: Vec<Transition>,
    /// Set when a command conflicting with an irrevocable decision
    /// arrived (never in correct runs).
    conflicting_command: bool,
}

impl Participant {
    /// A fresh participant in the initial (`q`) state.
    pub fn new(site: SiteId, txn: TxnId, cfg: ParticipantConfig) -> Self {
        Participant {
            site,
            txn,
            cfg,
            spec: None,
            state: LocalState::Initial,
            commit_version: None,
            transitions: Vec::new(),
            conflicting_command: false,
        }
    }

    /// Rebuilds a participant from recovered durable state.
    pub fn from_recovery(
        site: SiteId,
        txn: TxnId,
        cfg: ParticipantConfig,
        rec: &RecoveredTxn,
    ) -> Self {
        Participant {
            site,
            txn,
            cfg,
            spec: rec.spec.clone(),
            state: rec.state,
            commit_version: rec.commit_version,
            transitions: Vec::new(),
            conflicting_command: false,
        }
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The transaction this engine tracks.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Current local state.
    pub fn state(&self) -> LocalState {
        self.state
    }

    /// The spec, once known.
    pub fn spec(&self) -> Option<&TxnSpec> {
        self.spec.as_deref()
    }

    /// The commit version learned from a prepare/commit, if any.
    pub fn commit_version(&self) -> Option<Version> {
        self.commit_version
    }

    /// Every state change this engine performed (for Fig. 6 audits).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Overrides the vote this participant will cast on `VOTE-REQ`.
    ///
    /// The database node decides the vote dynamically (scripted no-votes,
    /// lock conflicts) just before feeding the request to the engine; it
    /// has no effect once the vote is cast.
    pub fn set_vote(&mut self, yes: bool) {
        self.cfg.vote_yes = yes;
    }

    /// True when a command conflicting with the local decision arrived.
    pub fn saw_conflicting_command(&self) -> bool {
        self.conflicting_command
    }

    /// The decision, once terminal.
    pub fn decision(&self) -> Option<Decision> {
        self.state.decision()
    }

    fn set_state(&mut self, to: LocalState) {
        self.transitions.push(Transition {
            from: self.state,
            to,
        });
        self.state = to;
    }

    /// Handles a protocol message addressed to the participant role.
    ///
    /// `local_max_version` is the highest version among this site's
    /// copies of the transaction's writeset items (reported in the yes
    /// vote; the coordinator derives the commit version from these).
    /// Actions are appended to the caller's scratch buffer (as
    /// everywhere on this engine: no per-event allocation in steady
    /// state).
    pub fn on_msg(
        &mut self,
        _from: SiteId,
        msg: &Msg,
        local_max_version: Version,
        out: &mut Vec<Action>,
    ) {
        match msg {
            Msg::VoteReq { spec } => self.on_vote_req(spec, local_max_version, out),
            Msg::PrepareCommit { commit_version, .. } => {
                self.on_prepare_commit(*commit_version, out)
            }
            Msg::PrepareAbort { .. } => self.on_prepare_abort(out),
            Msg::Commit { commit_version, .. } => self.on_commit(*commit_version, out),
            Msg::Abort { .. } => self.on_abort(out),
            Msg::Decided {
                decision,
                commit_version,
                ..
            } => match decision {
                Decision::Commit => match commit_version {
                    Some(v) => self.on_commit(*v, out),
                    None => out.push(Action::ViolationNote {
                        txn: self.txn,
                        note: "Decided(Commit) without version",
                    }),
                },
                Decision::Abort => self.on_abort(out),
            },
            Msg::StateReq { round, spec } => self.on_state_req(*round, spec, out),
            // Coordinator/termination/cross-shard/acceptor-role messages
            // are not ours.
            Msg::Vote { .. }
            | Msg::PcAck { .. }
            | Msg::PaAck { .. }
            | Msg::StateRep { .. }
            | Msg::XBranchReq { .. }
            | Msg::XVote { .. }
            | Msg::XDecide { .. }
            | Msg::XOutcomeReq { .. }
            | Msg::PaxosP1a { .. }
            | Msg::PaxosP1b { .. }
            | Msg::PaxosP2a { .. }
            | Msg::PaxosP2b { .. } => {}
        }
    }

    fn on_vote_req(
        &mut self,
        spec: &Arc<TxnSpec>,
        local_max_version: Version,
        out: &mut Vec<Action>,
    ) {
        match self.state {
            LocalState::Initial => {
                if self.cfg.vote_yes {
                    self.spec = Some(Arc::clone(spec));
                    self.set_state(LocalState::Wait);
                    out.push(Action::Log(LogRecord::Voted {
                        spec: Arc::clone(spec),
                    }));
                    out.push(Action::Reply(Msg::Vote {
                        txn: self.txn,
                        yes: true,
                        max_version: local_max_version,
                    }));
                } else {
                    self.set_state(LocalState::Aborted);
                    out.push(Action::Log(LogRecord::VotedNo { txn: self.txn }));
                    out.push(Action::Reply(Msg::Vote {
                        txn: self.txn,
                        yes: false,
                        max_version: local_max_version,
                    }));
                    out.push(Action::ApplyAndDecide {
                        decision: Decision::Abort,
                        commit_version: None,
                    });
                }
            }
            // Duplicate VOTE-REQ (retransmission): re-reply idempotently.
            LocalState::Wait | LocalState::PreCommit | LocalState::PreAbort => {
                out.push(Action::Reply(Msg::Vote {
                    txn: self.txn,
                    yes: true,
                    max_version: local_max_version,
                }));
            }
            LocalState::Committed | LocalState::Aborted => out.push(self.reply_decided()),
        }
    }

    fn reply_decided(&self) -> Action {
        Action::Reply(Msg::Decided {
            txn: self.txn,
            decision: self.state.decision().expect("terminal"),
            commit_version: self.commit_version,
        })
    }

    fn on_prepare_commit(&mut self, commit_version: Version, out: &mut Vec<Action>) {
        match self.state {
            LocalState::Wait => {
                self.commit_version = Some(commit_version);
                self.set_state(LocalState::PreCommit);
                out.push(Action::Log(LogRecord::PreCommit {
                    txn: self.txn,
                    commit_version,
                }));
                out.push(Action::Reply(Msg::PcAck { txn: self.txn }));
            }
            // Already in PC: idempotent re-ack (supports several
            // termination coordinators, Example 3's legal half).
            LocalState::PreCommit => out.push(Action::Reply(Msg::PcAck { txn: self.txn })),
            LocalState::PreAbort => match self.cfg.faulty {
                // The Fig. 6 rule: a PA site must ignore PREPARE-TO-COMMIT.
                FaultyMode::Correct => {}
                FaultyMode::AnswerAcrossWall => {
                    // The Example 3 bug: PA answers and moves to PC.
                    self.commit_version = Some(commit_version);
                    self.set_state(LocalState::PreCommit);
                    out.push(Action::Log(LogRecord::PreCommit {
                        txn: self.txn,
                        commit_version,
                    }));
                    out.push(Action::Reply(Msg::PcAck { txn: self.txn }));
                }
            },
            // A prepare must never precede the vote.
            LocalState::Initial => {}
            LocalState::Committed | LocalState::Aborted => out.push(self.reply_decided()),
        }
    }

    fn on_prepare_abort(&mut self, out: &mut Vec<Action>) {
        match self.state {
            LocalState::Wait => {
                self.set_state(LocalState::PreAbort);
                out.push(Action::Log(LogRecord::PreAbort { txn: self.txn }));
                out.push(Action::Reply(Msg::PaAck { txn: self.txn }));
            }
            LocalState::PreAbort => out.push(Action::Reply(Msg::PaAck { txn: self.txn })),
            LocalState::PreCommit => match self.cfg.faulty {
                FaultyMode::Correct => {}
                FaultyMode::AnswerAcrossWall => {
                    self.set_state(LocalState::PreAbort);
                    out.push(Action::Log(LogRecord::PreAbort { txn: self.txn }));
                    out.push(Action::Reply(Msg::PaAck { txn: self.txn }));
                }
            },
            LocalState::Initial => {}
            LocalState::Committed | LocalState::Aborted => out.push(self.reply_decided()),
        }
    }

    fn on_commit(&mut self, commit_version: Version, out: &mut Vec<Action>) {
        match self.state {
            LocalState::Committed => {}
            LocalState::Aborted => {
                // Irrevocable: keep the abort; flag the impossible event.
                self.conflicting_command = true;
                out.push(Action::ViolationNote {
                    txn: self.txn,
                    note: "COMMIT command arrived at an aborted participant",
                });
            }
            LocalState::Initial => {
                // Provably unreachable in the paper's protocols (a PC
                // state, prerequisite for commit, implies all voted).
                // Defensive: we cannot apply updates we never received.
                out.push(Action::ViolationNote {
                    txn: self.txn,
                    note: "COMMIT command arrived at a participant in q",
                });
            }
            LocalState::Wait | LocalState::PreCommit | LocalState::PreAbort => {
                self.commit_version = Some(commit_version);
                self.set_state(LocalState::Committed);
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.txn,
                    decision: Decision::Commit,
                    commit_version: Some(commit_version),
                }));
                out.push(Action::ApplyAndDecide {
                    decision: Decision::Commit,
                    commit_version: Some(commit_version),
                });
            }
        }
    }

    fn on_abort(&mut self, out: &mut Vec<Action>) {
        match self.state {
            LocalState::Aborted => {}
            LocalState::Committed => {
                self.conflicting_command = true;
                out.push(Action::ViolationNote {
                    txn: self.txn,
                    note: "ABORT command arrived at a committed participant",
                });
            }
            LocalState::Initial
            | LocalState::Wait
            | LocalState::PreCommit
            | LocalState::PreAbort => {
                self.set_state(LocalState::Aborted);
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.txn,
                    decision: Decision::Abort,
                    commit_version: None,
                }));
                out.push(Action::ApplyAndDecide {
                    decision: Decision::Abort,
                    commit_version: None,
                });
            }
        }
    }

    fn on_state_req(&mut self, round: u64, spec: &Arc<TxnSpec>, out: &mut Vec<Action>) {
        // A site that never saw VOTE-REQ learns the spec here, so it can
        // serve as a termination coordinator if elected.
        if self.spec.is_none() {
            self.spec = Some(Arc::clone(spec));
        }
        // An unvoted site answering a termination STATE-REQ casts a
        // veto, and the veto must be irrevocable *before* it is spoken.
        self.veto_abort(out);
        out.push(Action::Reply(Msg::StateRep {
            txn: self.txn,
            round,
            state: self.state,
            pc_version: if self.state.is_committable() {
                self.commit_version
            } else {
                None
            },
        }));
    }

    /// The unvoted-site veto, made durable and irrevocable: a
    /// participant still in `q` that engages in the termination
    /// protocol — answering a `STATE-REQ`, or starting a round as an
    /// elected leader — contributes an abort-leaning state to some
    /// leader's view, so it must never vote yes afterwards. Model
    /// checking found the window this closes: reply (or seed) `q`,
    /// *then* receive the late `VOTE-REQ` and vote yes — the leader
    /// aborts on the veto while the coordinator commits on the vote.
    /// Logging `VotedNo` before the reply leaves closes the crash
    /// window too (a recovered site replays the no-vote instead of
    /// forgetting it ever vetoed). No-op in any other state.
    pub fn veto_abort(&mut self, out: &mut Vec<Action>) {
        if self.state != LocalState::Initial {
            return;
        }
        self.set_state(LocalState::Aborted);
        out.push(Action::Log(LogRecord::VotedNo { txn: self.txn }));
        out.push(Action::ApplyAndDecide {
            decision: Decision::Abort,
            commit_version: None,
        });
    }

    /// The coordinator has been silent for `3T` after our last message to
    /// it (Fig. 5 participant event 6): request the termination protocol.
    pub fn on_coordinator_silent(&mut self, out: &mut Vec<Action>) {
        if !(self.state.is_terminal() || self.state == LocalState::Initial) {
            out.push(Action::RequestTermination { txn: self.txn });
        }
    }
}

/// Collecting wrappers for unit tests: same engine calls, fresh buffer
/// per call (production code passes a reused scratch buffer instead).
#[cfg(test)]
impl Participant {
    pub(crate) fn on_msg_v(
        &mut self,
        from: SiteId,
        msg: &Msg,
        local_max_version: Version,
    ) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_msg(from, msg, local_max_version, &mut v);
        v
    }

    fn on_coordinator_silent_v(&mut self) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_coordinator_silent(&mut v);
        v
    }
}

/// Canonical state hash for the model checker's visited-set.
///
/// Hashes the behavioural state — local protocol state, adopted commit
/// version, the vote this participant will cast, whether it has seen
/// the spec, and the conflicting-command violation flag. The
/// `transitions` audit trail is deliberately excluded: it is pure
/// history, and hashing it would make every distinct path hash distinct,
/// destroying the state merging that keeps exhaustive search tractable.
impl qbc_simnet::Fingerprint for Participant {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(
            format!(
                "{:?}|{:?}|{:?}|{}|{}",
                self.state,
                self.commit_version,
                self.cfg,
                self.spec.is_some(),
                self.conflicting_command
            )
            .as_bytes(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_votes::ItemId;

    fn spec() -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(1),
            coordinator: SiteId(0),
            writeset: WriteSet::new([(ItemId(0), 42)]),
            participants: [SiteId(0), SiteId(1), SiteId(2)].into(),
            protocol: ProtocolKind::QuorumCommit1,
            parent: None,
        })
    }

    fn fresh() -> Participant {
        Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default())
    }

    fn coordinator() -> SiteId {
        SiteId(0)
    }

    #[test]
    fn yes_vote_logs_before_replying() {
        let mut p = fresh();
        let out = p.on_msg_v(coordinator(), &Msg::VoteReq { spec: spec() }, Version(3));
        assert!(matches!(out[0], Action::Log(LogRecord::Voted { .. })));
        assert!(matches!(
            out[1],
            Action::Reply(Msg::Vote {
                yes: true,
                max_version: Version(3),
                ..
            })
        ));
        assert_eq!(p.state(), LocalState::Wait);
    }

    #[test]
    fn no_vote_aborts_immediately() {
        let mut p = Participant::new(
            SiteId(1),
            TxnId(1),
            ParticipantConfig {
                vote_yes: false,
                faulty: FaultyMode::Correct,
            },
        );
        let out = p.on_msg_v(coordinator(), &Msg::VoteReq { spec: spec() }, Version(0));
        assert_eq!(p.state(), LocalState::Aborted);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Reply(Msg::Vote { yes: false, .. }))));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ApplyAndDecide {
                decision: Decision::Abort,
                ..
            }
        )));
    }

    fn to_wait(p: &mut Participant) {
        p.on_msg_v(coordinator(), &Msg::VoteReq { spec: spec() }, Version(0));
        assert_eq!(p.state(), LocalState::Wait);
    }

    #[test]
    fn prepare_commit_moves_w_to_pc() {
        let mut p = fresh();
        to_wait(&mut p);
        let out = p.on_msg_v(
            coordinator(),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        assert_eq!(p.state(), LocalState::PreCommit);
        assert_eq!(p.commit_version(), Some(Version(5)));
        assert!(matches!(out[0], Action::Log(LogRecord::PreCommit { .. })));
        assert!(matches!(out[1], Action::Reply(Msg::PcAck { .. })));
    }

    #[test]
    fn pc_ignores_prepare_abort_the_fig6_rule() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(
            coordinator(),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        let out = p.on_msg_v(SiteId(2), &Msg::PrepareAbort { txn: TxnId(1) }, Version(0));
        assert!(out.is_empty(), "PC must ignore PREPARE-TO-ABORT");
        assert_eq!(p.state(), LocalState::PreCommit);
        assert!(p.transitions().iter().all(Transition::is_legal));
    }

    #[test]
    fn pa_ignores_prepare_commit_the_fig6_rule() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(SiteId(2), &Msg::PrepareAbort { txn: TxnId(1) }, Version(0));
        assert_eq!(p.state(), LocalState::PreAbort);
        let out = p.on_msg_v(
            SiteId(3),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        assert!(out.is_empty(), "PA must ignore PREPARE-TO-COMMIT");
        assert_eq!(p.state(), LocalState::PreAbort);
    }

    #[test]
    fn faulty_mode_answers_across_the_wall() {
        let mut p = Participant::new(
            SiteId(1),
            TxnId(1),
            ParticipantConfig {
                vote_yes: true,
                faulty: FaultyMode::AnswerAcrossWall,
            },
        );
        to_wait(&mut p);
        p.on_msg_v(SiteId(2), &Msg::PrepareAbort { txn: TxnId(1) }, Version(0));
        assert_eq!(p.state(), LocalState::PreAbort);
        let out = p.on_msg_v(
            SiteId(3),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::Reply(Msg::PcAck { .. }))),
            "faulty participant acks PREPARE-TO-COMMIT in PA"
        );
        assert_eq!(p.state(), LocalState::PreCommit);
        // The audit trail records the illegal transition.
        assert!(p.transitions().iter().any(|t| !t.is_legal()));
    }

    #[test]
    fn re_ack_in_pc_is_idempotent() {
        let mut p = fresh();
        to_wait(&mut p);
        for _ in 0..2 {
            let out = p.on_msg_v(
                coordinator(),
                &Msg::PrepareCommit {
                    txn: TxnId(1),
                    commit_version: Version(5),
                },
                Version(0),
            );
            assert!(out
                .iter()
                .any(|a| matches!(a, Action::Reply(Msg::PcAck { .. }))));
        }
        // Only one log record (first transition), one transition recorded.
        assert_eq!(
            p.transitions()
                .iter()
                .filter(|t| t.to == LocalState::PreCommit)
                .count(),
            1
        );
    }

    #[test]
    fn commit_command_from_pa_is_obeyed() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(SiteId(2), &Msg::PrepareAbort { txn: TxnId(1) }, Version(0));
        let out = p.on_msg_v(
            SiteId(3),
            &Msg::Commit {
                txn: TxnId(1),
                commit_version: Version(9),
            },
            Version(0),
        );
        assert_eq!(p.state(), LocalState::Committed);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::ApplyAndDecide {
                decision: Decision::Commit,
                ..
            }
        )));
        assert!(p.transitions().iter().all(Transition::is_legal));
    }

    #[test]
    fn abort_command_from_pc_is_obeyed() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(
            coordinator(),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        p.on_msg_v(SiteId(2), &Msg::Abort { txn: TxnId(1) }, Version(0));
        assert_eq!(p.state(), LocalState::Aborted);
        assert!(p.transitions().iter().all(Transition::is_legal));
    }

    #[test]
    fn terminated_participant_reannounces_decision() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(SiteId(2), &Msg::Abort { txn: TxnId(1) }, Version(0));
        let out = p.on_msg_v(
            SiteId(3),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        assert!(matches!(
            out[0],
            Action::Reply(Msg::Decided {
                decision: Decision::Abort,
                ..
            })
        ));
    }

    #[test]
    fn conflicting_command_is_flagged_not_obeyed() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(SiteId(2), &Msg::Abort { txn: TxnId(1) }, Version(0));
        let out = p.on_msg_v(
            SiteId(3),
            &Msg::Commit {
                txn: TxnId(1),
                commit_version: Version(9),
            },
            Version(0),
        );
        assert_eq!(p.state(), LocalState::Aborted, "decision is irrevocable");
        assert!(p.saw_conflicting_command());
        assert!(matches!(out[0], Action::ViolationNote { .. }));
    }

    #[test]
    fn state_req_teaches_spec_and_vetoes_an_unvoted_site() {
        let mut p = fresh();
        assert!(p.spec().is_none());
        let out = p.on_msg_v(
            SiteId(2),
            &Msg::StateReq {
                round: 1,
                spec: spec(),
            },
            Version(0),
        );
        assert!(p.spec().is_some());
        // The veto is durable and irrevocable *before* the reply: the
        // no-vote is logged, the local abort applied, and the reported
        // state is already `a` — never `q` followed by a later yes
        // (the commit/abort split the model checker found).
        assert!(matches!(out[0], Action::Log(LogRecord::VotedNo { .. })));
        assert!(matches!(
            out[1],
            Action::ApplyAndDecide {
                decision: Decision::Abort,
                ..
            }
        ));
        assert!(matches!(
            out[2],
            Action::Reply(Msg::StateRep {
                state: LocalState::Aborted,
                round: 1,
                ..
            })
        ));
        assert_eq!(p.state(), LocalState::Aborted);
        // A late VOTE-REQ now draws the decided-abort reply, not a yes.
        let out = p.on_msg_v(coordinator(), &Msg::VoteReq { spec: spec() }, Version(0));
        assert!(matches!(
            out[0],
            Action::Reply(Msg::Decided {
                decision: Decision::Abort,
                ..
            })
        ));
    }

    #[test]
    fn state_rep_from_pc_carries_version() {
        let mut p = fresh();
        to_wait(&mut p);
        p.on_msg_v(
            coordinator(),
            &Msg::PrepareCommit {
                txn: TxnId(1),
                commit_version: Version(5),
            },
            Version(0),
        );
        let out = p.on_msg_v(
            SiteId(2),
            &Msg::StateReq {
                round: 2,
                spec: spec(),
            },
            Version(0),
        );
        assert!(matches!(
            out[0],
            Action::Reply(Msg::StateRep {
                state: LocalState::PreCommit,
                pc_version: Some(Version(5)),
                ..
            })
        ));
    }

    #[test]
    fn watchdog_requests_termination_only_when_undecided() {
        let mut p = fresh();
        assert!(p.on_coordinator_silent_v().is_empty(), "q site stays quiet");
        to_wait(&mut p);
        let out = p.on_coordinator_silent_v();
        assert!(matches!(out[0], Action::RequestTermination { .. }));
        p.on_msg_v(SiteId(2), &Msg::Abort { txn: TxnId(1) }, Version(0));
        assert!(
            p.on_coordinator_silent_v().is_empty(),
            "terminal stays quiet"
        );
    }

    #[test]
    fn recovery_restores_state_and_version() {
        let rec = RecoveredTxn {
            spec: Some(spec()),
            state: LocalState::PreCommit,
            commit_version: Some(Version(7)),
        };
        let p = Participant::from_recovery(SiteId(1), TxnId(1), ParticipantConfig::default(), &rec);
        assert_eq!(p.state(), LocalState::PreCommit);
        assert_eq!(p.commit_version(), Some(Version(7)));
    }

    #[test]
    fn duplicate_vote_req_is_idempotent() {
        let mut p = fresh();
        to_wait(&mut p);
        let out = p.on_msg_v(coordinator(), &Msg::VoteReq { spec: spec() }, Version(2));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Action::Reply(Msg::Vote { yes: true, .. })));
        assert_eq!(p.state(), LocalState::Wait);
    }
}
