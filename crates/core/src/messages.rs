//! The protocol message vocabulary (Figs. 1, 2, 5, 8, 9).

use crate::states::LocalState;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_simnet::{Label, SiteId};
use qbc_votes::Version;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// All messages exchanged by the commit and termination protocols.
///
/// One vocabulary serves every protocol variant: 2PC never sends
/// `PrepareCommit`; only the termination protocols send `PrepareAbort`
/// and `StateReq`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// Coordinator → participants: the transaction spec (update values
    /// included); "vote on this transaction".
    ///
    /// The spec is built once per transaction and shared by reference
    /// (`Arc`) across every copy of the fan-out — cloning the message
    /// per recipient costs a refcount bump, not a writeset copy.
    VoteReq {
        /// Full transaction description, logged by the participant.
        spec: Arc<TxnSpec>,
    },
    /// Participant → coordinator: yes/no vote. A yes carries the local
    /// version of the highest-versioned writeset copy at the voter, from
    /// which the coordinator derives the commit version.
    Vote {
        /// Transaction voted on.
        txn: TxnId,
        /// True = yes (enter W), false = no (abort).
        yes: bool,
        /// Highest local version among the voter's writeset copies.
        max_version: Version,
    },
    /// Coordinator → participants: enter PC (3PC/QC/termination).
    PrepareCommit {
        /// Transaction.
        txn: TxnId,
        /// The version every copy will carry after commit.
        commit_version: Version,
    },
    /// Participant → sender of `PrepareCommit`: now in PC.
    PcAck {
        /// Transaction.
        txn: TxnId,
    },
    /// Termination coordinator → participants: enter PA.
    PrepareAbort {
        /// Transaction.
        txn: TxnId,
    },
    /// Participant → sender of `PrepareAbort`: now in PA.
    PaAck {
        /// Transaction.
        txn: TxnId,
    },
    /// Commit command (normal case or termination).
    Commit {
        /// Transaction.
        txn: TxnId,
        /// Version installed on every written copy.
        commit_version: Version,
    },
    /// Abort command (normal case or termination).
    Abort {
        /// Transaction.
        txn: TxnId,
    },
    /// Termination coordinator → participants: report your local state
    /// (phase 1 of Figs. 5/8). Carries the spec so that participants
    /// that never saw `VoteReq` can still answer (they report `q`).
    StateReq {
        /// Round of the termination attempt (guards stale replies).
        round: u64,
        /// Transaction description (shared, like [`Msg::VoteReq`]'s).
        spec: Arc<TxnSpec>,
    },
    /// Participant → termination coordinator: local state report.
    StateRep {
        /// Transaction.
        txn: TxnId,
        /// Round this reply answers.
        round: u64,
        /// The participant's current local state.
        state: LocalState,
        /// When in PC: the commit version it learned, so a termination
        /// coordinator in W can issue a correct `Commit`.
        pc_version: Option<Version>,
    },
    /// A terminated participant re-announcing the outcome to anyone who
    /// still asks (engineering addition; see DESIGN.md §2 decision 4).
    Decided {
        /// Transaction.
        txn: TxnId,
        /// The irrevocable outcome.
        decision: Decision,
        /// Commit version when the decision is Commit.
        commit_version: Option<Version>,
    },
    /// Cross-shard coordinator → branch coordinator: run the in-shard
    /// commit protocol for this branch and report your vote. The spec
    /// carries `parent` (the cross-shard coordinator's site), so the
    /// whole branch knows where the outcome authority lives.
    XBranchReq {
        /// The branch's transaction spec (one shard's slice of the
        /// cross-shard writeset; shared like [`Msg::VoteReq`]'s).
        spec: Arc<TxnSpec>,
        /// Coordinators of the *other* branches. An orphaned branch asks
        /// them for the outcome alongside the parent: any branch that
        /// learned the top-level decision can answer, so a crashed
        /// parent no longer leaves the shard blocked until recovery.
        siblings: Vec<SiteId>,
    },
    /// Branch coordinator → cross-shard coordinator: this shard's
    /// resource-manager vote. A yes means the branch reached its
    /// in-shard commit point and is *held* there; the branch can no
    /// longer abort unilaterally.
    XVote {
        /// Cross-shard transaction.
        txn: TxnId,
        /// True = this shard can commit (held at its commit point).
        yes: bool,
        /// The branch's in-shard commit version (yes votes only).
        commit_version: Option<Version>,
    },
    /// Cross-shard coordinator → a branch site: the top-level decision.
    /// Sent to every branch coordinator once decided (and re-announced
    /// on recovery), and to any site that asks via [`Msg::XOutcomeReq`].
    XDecide {
        /// Cross-shard transaction.
        txn: TxnId,
        /// The irrevocable top-level outcome.
        decision: Decision,
        /// The *recipient's branch* commit version when committing.
        commit_version: Option<Version>,
    },
    /// An orphaned branch site → cross-shard coordinator: what happened
    /// to this transaction? (The branch replacement for the in-shard
    /// termination protocol: a held branch may not decide unilaterally,
    /// so coordinator silence triggers outcome discovery instead of an
    /// election.) Answered with [`Msg::XDecide`] once decided; ignored
    /// while undecided (the asker's watchdog retries).
    XOutcomeReq {
        /// Cross-shard transaction.
        txn: TxnId,
    },
    /// Paxos Commit, recovery candidate → acceptors: Phase-1a prepare at
    /// ballot `bal` for *every* vote instance of `txn` at once (Gray &
    /// Lamport run one Paxos instance per participant's vote; a single
    /// batched message carries the round for all of them). Carries the
    /// spec so acceptors that never saw `VoteReq` can still answer.
    PaxosP1a {
        /// Transaction whose vote instances are being recovered.
        txn: TxnId,
        /// Candidate's ballot (> 0; ballot 0 is the original leader's).
        bal: u64,
        /// Transaction description (shared, like [`Msg::VoteReq`]'s).
        spec: Arc<TxnSpec>,
    },
    /// Paxos Commit, acceptor → recovery candidate: Phase-1b promise at
    /// `bal`, reporting for each vote instance the highest-ballot value
    /// this acceptor has accepted (instances it never accepted in are
    /// simply absent — the candidate applies presumed abort to any
    /// instance no quorum member reports).
    PaxosP1b {
        /// Transaction.
        txn: TxnId,
        /// Ballot this promise answers.
        bal: u64,
        /// Accepted values: `(instance participant, accepted ballot,
        /// prepared?, reported max version)` per instance.
        accepted: Vec<(SiteId, u64, bool, Version)>,
    },
    /// Paxos Commit, leader → acceptors: Phase-2a at ballot `bal`,
    /// proposing a value for every vote instance in one batched message
    /// (one entry per participant's vote).
    PaxosP2a {
        /// Transaction.
        txn: TxnId,
        /// Proposing ballot (0 from the original coordinator; higher
        /// from a recovery candidate).
        bal: u64,
        /// Proposed values: `(instance participant, prepared?, reported
        /// max version)` per instance.
        votes: Vec<(SiteId, bool, Version)>,
    },
    /// Paxos Commit, acceptor → leader: Phase-2b, echoing the accepted
    /// values after force-logging them.
    PaxosP2b {
        /// Transaction.
        txn: TxnId,
        /// Ballot accepted at.
        bal: u64,
        /// The values this acceptor accepted (echo of the 2a batch).
        votes: Vec<(SiteId, bool, Version)>,
    },
}

impl Msg {
    /// The transaction this message is about.
    pub fn txn(&self) -> TxnId {
        match self {
            Msg::VoteReq { spec } => spec.id,
            Msg::StateReq { spec, .. } => spec.id,
            Msg::XBranchReq { spec, .. } => spec.id,
            Msg::PaxosP1a { spec, .. } => spec.id,
            Msg::Vote { txn, .. }
            | Msg::PrepareCommit { txn, .. }
            | Msg::PcAck { txn }
            | Msg::PrepareAbort { txn }
            | Msg::PaAck { txn }
            | Msg::Commit { txn, .. }
            | Msg::Abort { txn }
            | Msg::StateRep { txn, .. }
            | Msg::Decided { txn, .. }
            | Msg::XVote { txn, .. }
            | Msg::XDecide { txn, .. }
            | Msg::XOutcomeReq { txn }
            | Msg::PaxosP1b { txn, .. }
            | Msg::PaxosP2a { txn, .. }
            | Msg::PaxosP2b { txn, .. } => *txn,
        }
    }
}

impl Label for Msg {
    fn label(&self) -> &'static str {
        match self {
            Msg::VoteReq { .. } => "VOTE-REQ",
            Msg::Vote { yes: true, .. } => "VOTE-YES",
            Msg::Vote { yes: false, .. } => "VOTE-NO",
            Msg::PrepareCommit { .. } => "PREPARE-TO-COMMIT",
            Msg::PcAck { .. } => "PC-ACK",
            Msg::PrepareAbort { .. } => "PREPARE-TO-ABORT",
            Msg::PaAck { .. } => "PA-ACK",
            Msg::Commit { .. } => "COMMIT",
            Msg::Abort { .. } => "ABORT",
            Msg::StateReq { .. } => "STATE-REQ",
            Msg::StateRep { .. } => "STATE-REP",
            Msg::Decided { .. } => "DECIDED",
            Msg::XBranchReq { .. } => "X-BRANCH-REQ",
            Msg::XVote { yes: true, .. } => "X-VOTE-YES",
            Msg::XVote { yes: false, .. } => "X-VOTE-NO",
            Msg::XDecide { .. } => "X-DECIDE",
            Msg::XOutcomeReq { .. } => "X-OUTCOME-REQ",
            Msg::PaxosP1a { .. } => "PAXOS-1A",
            Msg::PaxosP1b { .. } => "PAXOS-1B",
            Msg::PaxosP2a { .. } => "PAXOS-2A",
            Msg::PaxosP2b { .. } => "PAXOS-2B",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_simnet::SiteId;

    fn spec() -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(7),
            coordinator: SiteId(1),
            writeset: WriteSet::default(),
            participants: Default::default(),
            protocol: ProtocolKind::QuorumCommit1,
            parent: None,
        })
    }

    #[test]
    fn txn_accessor_covers_all_variants() {
        let msgs = [
            Msg::VoteReq { spec: spec() },
            Msg::Vote {
                txn: TxnId(7),
                yes: true,
                max_version: Version(0),
            },
            Msg::PrepareCommit {
                txn: TxnId(7),
                commit_version: Version(1),
            },
            Msg::PcAck { txn: TxnId(7) },
            Msg::PrepareAbort { txn: TxnId(7) },
            Msg::PaAck { txn: TxnId(7) },
            Msg::Commit {
                txn: TxnId(7),
                commit_version: Version(1),
            },
            Msg::Abort { txn: TxnId(7) },
            Msg::StateReq {
                round: 1,
                spec: spec(),
            },
            Msg::StateRep {
                txn: TxnId(7),
                round: 1,
                state: LocalState::Wait,
                pc_version: None,
            },
            Msg::Decided {
                txn: TxnId(7),
                decision: Decision::Commit,
                commit_version: Some(Version(1)),
            },
            Msg::XBranchReq {
                spec: spec(),
                siblings: vec![SiteId(3)],
            },
            Msg::XVote {
                txn: TxnId(7),
                yes: true,
                commit_version: Some(Version(1)),
            },
            Msg::XDecide {
                txn: TxnId(7),
                decision: Decision::Abort,
                commit_version: None,
            },
            Msg::XOutcomeReq { txn: TxnId(7) },
            Msg::PaxosP1a {
                txn: TxnId(7),
                bal: 3,
                spec: spec(),
            },
            Msg::PaxosP1b {
                txn: TxnId(7),
                bal: 3,
                accepted: vec![(SiteId(2), 0, true, Version(4))],
            },
            Msg::PaxosP2a {
                txn: TxnId(7),
                bal: 0,
                votes: vec![(SiteId(2), true, Version(4))],
            },
            Msg::PaxosP2b {
                txn: TxnId(7),
                bal: 0,
                votes: vec![(SiteId(2), true, Version(4))],
            },
        ];
        for m in &msgs {
            assert_eq!(m.txn(), TxnId(7), "{m:?}");
        }
    }

    #[test]
    fn labels_distinguish_vote_outcomes() {
        let yes = Msg::Vote {
            txn: TxnId(1),
            yes: true,
            max_version: Version(0),
        };
        let no = Msg::Vote {
            txn: TxnId(1),
            yes: false,
            max_version: Version(0),
        };
        assert_eq!(yes.label(), "VOTE-YES");
        assert_eq!(no.label(), "VOTE-NO");
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(
            Msg::PrepareCommit {
                txn: TxnId(0),
                commit_version: Version(0)
            }
            .label(),
            "PREPARE-TO-COMMIT"
        );
        assert_eq!(Msg::PaAck { txn: TxnId(0) }.label(), "PA-ACK");
    }
}
