//! Local transaction states and the Fig. 6 transition relation.
//!
//! The local states of a participant are the paper's `q` (initial), `W`
//! (wait — voted yes), `PC` (prepare-to-commit), `PA` (prepare-to-abort,
//! the state the paper introduces), `C` (commit) and `A` (abort).
//!
//! The central structural property (Fig. 6): **there is no transition
//! between PC and PA**. A participant in PC ignores PREPARE-TO-ABORT and
//! a participant in PA ignores PREPARE-TO-COMMIT; this is what keeps the
//! protocol safe when several coordinators race in one partition
//! (Example 3). Direct COMMIT/ABORT *commands* are obeyed in any
//! non-terminal state — they are only ever sent after a quorum has made
//! the opposite outcome impossible.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::types::Decision;

/// A participant's local state for one transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LocalState {
    /// `q` — has not voted.
    Initial,
    /// `W` — voted yes, awaiting the coordinator.
    Wait,
    /// `PC` — received PREPARE-TO-COMMIT; committable.
    PreCommit,
    /// `PA` — received PREPARE-TO-ABORT; has relinquished its right to
    /// join a commit quorum.
    PreAbort,
    /// `C` — committed (terminal).
    Committed,
    /// `A` — aborted (terminal).
    Aborted,
}

impl LocalState {
    /// Terminal states are irrevocable.
    pub fn is_terminal(self) -> bool {
        matches!(self, LocalState::Committed | LocalState::Aborted)
    }

    /// Committable states: the site may occupy them only if every
    /// participant voted yes.
    pub fn is_committable(self) -> bool {
        matches!(self, LocalState::PreCommit | LocalState::Committed)
    }

    /// The decision a terminal state encodes.
    pub fn decision(self) -> Option<Decision> {
        match self {
            LocalState::Committed => Some(Decision::Commit),
            LocalState::Aborted => Some(Decision::Abort),
            _ => None,
        }
    }

    /// The paper's one-letter names.
    pub fn short(self) -> &'static str {
        match self {
            LocalState::Initial => "q",
            LocalState::Wait => "W",
            LocalState::PreCommit => "PC",
            LocalState::PreAbort => "PA",
            LocalState::Committed => "C",
            LocalState::Aborted => "A",
        }
    }

    /// The legal transition relation of Fig. 6 (extended with PA).
    ///
    /// Legal:
    /// * `q → W` (vote yes), `q → A` (vote no / abort command)
    /// * `W → PC`, `W → PA` (prepare messages)
    /// * `W → C`, `W → A` (direct commands — a commit/abort command may
    ///   reach a participant that never saw the prepare)
    /// * `PC → C`, `PC → A` (commands; PC→A occurs when an abort quorum
    ///   formed among non-PC participants)
    /// * `PA → A`, `PA → C` (symmetric)
    /// * self-loops (idempotent redelivery)
    ///
    /// Illegal — the load-bearing ones:
    /// * `PC → PA` and `PA → PC` (the Fig. 6 rule)
    /// * leaving a terminal state
    /// * `q → PC` / `q → PA` (prepare before vote)
    pub fn legal_transition(from: LocalState, to: LocalState) -> bool {
        use LocalState::*;
        if from == to {
            return true;
        }
        matches!(
            (from, to),
            (Initial, Wait)
                | (Initial, Aborted)
                | (Wait, PreCommit)
                | (Wait, PreAbort)
                | (Wait, Committed)
                | (Wait, Aborted)
                | (PreCommit, Committed)
                | (PreCommit, Aborted)
                | (PreAbort, Aborted)
                | (PreAbort, Committed)
        )
    }
}

impl fmt::Display for LocalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// A witness of one state transition, recorded by participants so the
/// Fig. 6 conformance experiment (E6) can audit entire runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: LocalState,
    /// State after.
    pub to: LocalState,
}

impl Transition {
    /// True when the transition is legal per Fig. 6.
    pub fn is_legal(&self) -> bool {
        LocalState::legal_transition(self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LocalState::*;

    const ALL: [LocalState; 6] = [Initial, Wait, PreCommit, PreAbort, Committed, Aborted];

    #[test]
    fn no_transition_between_pc_and_pa() {
        assert!(!LocalState::legal_transition(PreCommit, PreAbort));
        assert!(!LocalState::legal_transition(PreAbort, PreCommit));
    }

    #[test]
    fn terminal_states_are_absorbing() {
        for s in ALL {
            if s != Committed {
                assert!(!LocalState::legal_transition(Committed, s));
            }
            if s != Aborted {
                assert!(!LocalState::legal_transition(Aborted, s));
            }
        }
        assert!(Committed.is_terminal());
        assert!(Aborted.is_terminal());
        assert!(!PreCommit.is_terminal());
    }

    #[test]
    fn prepare_requires_vote_first() {
        assert!(!LocalState::legal_transition(Initial, PreCommit));
        assert!(!LocalState::legal_transition(Initial, PreAbort));
        assert!(!LocalState::legal_transition(Initial, Committed));
    }

    #[test]
    fn commands_obeyed_from_either_prepared_state() {
        assert!(LocalState::legal_transition(PreCommit, Aborted));
        assert!(LocalState::legal_transition(PreAbort, Committed));
        assert!(LocalState::legal_transition(Wait, Committed));
        assert!(LocalState::legal_transition(Wait, Aborted));
    }

    #[test]
    fn self_loops_are_legal() {
        for s in ALL {
            assert!(LocalState::legal_transition(s, s));
        }
    }

    #[test]
    fn committable_states_match_paper_definition() {
        assert!(PreCommit.is_committable());
        assert!(Committed.is_committable());
        assert!(!Wait.is_committable());
        assert!(!PreAbort.is_committable());
        assert!(!Initial.is_committable());
    }

    #[test]
    fn decisions_of_terminal_states() {
        assert_eq!(Committed.decision(), Some(Decision::Commit));
        assert_eq!(Aborted.decision(), Some(Decision::Abort));
        assert_eq!(Wait.decision(), None);
    }

    #[test]
    fn short_names_match_paper() {
        let names: Vec<&str> = ALL.iter().map(|s| s.short()).collect();
        assert_eq!(names, vec!["q", "W", "PC", "PA", "C", "A"]);
    }

    #[test]
    fn transition_witness_checks() {
        assert!(Transition {
            from: Wait,
            to: PreCommit
        }
        .is_legal());
        assert!(!Transition {
            from: PreCommit,
            to: PreAbort
        }
        .is_legal());
    }
}
