//! Shared protocol vocabulary: transactions, decisions, protocol kinds.

use qbc_simnet::SiteId;
use qbc_votes::{Catalog, ItemId, Version};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Globally unique transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// The two irrevocable transaction outcomes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Decision {
    /// All of the transaction's updates are performed.
    Commit,
    /// None of the transaction's updates are performed.
    Abort,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => write!(f, "COMMIT"),
            Decision::Abort => write!(f, "ABORT"),
        }
    }
}

/// Which commit protocol a transaction runs under.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Two-phase commit (Fig. 1): fast, blocking on coordinator failure.
    TwoPhase,
    /// Skeen's three-phase commit (Fig. 2) with the site-failure-only
    /// termination protocol (Example 2 shows it is unsafe under
    /// partitions).
    ThreePhase,
    /// Skeen's quorum-based commit protocol `[16]`: commit quorum `Vc`
    /// and abort quorum `Va` counted in *site* votes.
    SkeenQuorum,
    /// The paper's quorum commit protocol 1 (Fig. 9) with termination
    /// protocol 1 (Fig. 5): commit point at `w(x)` PC-ACK votes for
    /// *every* writeset item.
    QuorumCommit1,
    /// The paper's quorum commit protocol 2 with termination protocol 2
    /// (Fig. 8): commit point at `r(x)` PC-ACK votes for *some* writeset
    /// item. Faster than QC1.
    QuorumCommit2,
    /// Gray & Lamport's Paxos Commit (*Consensus on Transaction
    /// Commit*): one Paxos consensus instance per participant's vote,
    /// acceptors co-located on the participant sites, leader = the
    /// transaction coordinator. Commit exactly when every instance
    /// chooses *prepared*; a silent leader is replaced by Phase-1
    /// recovery from any participant (no separate termination
    /// protocol), with presumed abort for instances no acceptor
    /// quorum has accepted.
    PaxosCommit,
}

impl ProtocolKind {
    /// All protocol kinds, in presentation order.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::TwoPhase,
        ProtocolKind::ThreePhase,
        ProtocolKind::SkeenQuorum,
        ProtocolKind::QuorumCommit1,
        ProtocolKind::QuorumCommit2,
        ProtocolKind::PaxosCommit,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::TwoPhase => "2PC",
            ProtocolKind::ThreePhase => "3PC",
            ProtocolKind::SkeenQuorum => "Skeen-QC",
            ProtocolKind::QuorumCommit1 => "QC1+TP1",
            ProtocolKind::QuorumCommit2 => "QC2+TP2",
            ProtocolKind::PaxosCommit => "PaxosCommit",
        }
    }

    /// True for the protocols that run a second round between the votes
    /// and the decision (the PC round, or Paxos Commit's 2a/2b round);
    /// 2PC alone decides straight off the votes.
    pub fn has_prepare_phase(self) -> bool {
        !matches!(self, ProtocolKind::TwoPhase)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Site-vote parameters for Skeen's quorum protocol `[16]`.
///
/// Each *site* carries votes; a transaction commits during termination
/// only with `Vc` votes cast for committing and aborts only with `Va`
/// cast for aborting, where `Vc + Va > V` (total).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteVotes {
    /// Vote weight per site.
    pub weights: BTreeMap<SiteId, u32>,
    /// Commit quorum `Vc`.
    pub commit_quorum: u32,
    /// Abort quorum `Va`.
    pub abort_quorum: u32,
}

impl SiteVotes {
    /// Uniform weight-1 votes over `sites` with the given quorums.
    pub fn uniform(
        sites: impl IntoIterator<Item = SiteId>,
        commit_quorum: u32,
        abort_quorum: u32,
    ) -> Self {
        SiteVotes {
            weights: sites.into_iter().map(|s| (s, 1)).collect(),
            commit_quorum,
            abort_quorum,
        }
    }

    /// Total votes `V`.
    pub fn total(&self) -> u32 {
        self.weights.values().sum()
    }

    /// Checks `Vc + Va > V` and both quorums satisfiable.
    pub fn validate(&self) -> Result<(), String> {
        let v = self.total();
        if self.commit_quorum + self.abort_quorum <= v {
            return Err(format!(
                "Vc({}) + Va({}) must exceed V({v})",
                self.commit_quorum, self.abort_quorum
            ));
        }
        if self.commit_quorum > v || self.abort_quorum > v {
            return Err("quorum exceeds total votes".to_string());
        }
        Ok(())
    }

    /// Sum of site votes over a set.
    pub fn votes_among<'a>(&self, sites: impl IntoIterator<Item = &'a SiteId>) -> u32 {
        sites
            .into_iter()
            .map(|s| self.weights.get(s).copied().unwrap_or(0))
            .sum()
    }
}

/// The writeset of a transaction: new values for the items it updates.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WriteSet {
    /// New value per updated item.
    pub updates: BTreeMap<ItemId, i64>,
}

impl WriteSet {
    /// A writeset over the given `(item, value)` pairs.
    pub fn new(updates: impl IntoIterator<Item = (ItemId, i64)>) -> Self {
        WriteSet {
            updates: updates.into_iter().collect(),
        }
    }

    /// The items written — the paper's `W(TR)`.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.updates.keys().copied()
    }

    /// Number of items written.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when no items are written.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

/// Everything a participant must know about a transaction, distributed
/// in the `VOTE-REQ` message and logged before voting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Transaction id.
    pub id: TxnId,
    /// The site coordinating the normal-case protocol.
    pub coordinator: SiteId,
    /// Items updated and their new values.
    pub writeset: WriteSet,
    /// All participating sites (every site holding a copy of a writeset
    /// item).
    pub participants: BTreeSet<SiteId>,
    /// Protocol the transaction runs under.
    pub protocol: ProtocolKind,
    /// When this spec is one *branch* of a cross-shard transaction: the
    /// site hosting the cross-shard (top-level 2PC) coordinator. A
    /// branch runs the in-shard protocol up to its commit point, then
    /// *holds* and votes to the parent instead of committing; the
    /// parent's decision is the only authority that can terminate it
    /// (in-shard termination is replaced by outcome discovery).
    pub parent: Option<SiteId>,
}

impl TxnSpec {
    /// Builds a spec, deriving the participant set from the catalog.
    pub fn from_catalog(
        id: TxnId,
        coordinator: SiteId,
        writeset: WriteSet,
        protocol: ProtocolKind,
        catalog: &Catalog,
    ) -> Self {
        let participants = catalog.participants(writeset.items());
        TxnSpec {
            id,
            coordinator,
            writeset,
            participants,
            protocol,
            parent: None,
        }
    }

    /// Marks this spec as a branch of a cross-shard transaction whose
    /// top-level coordinator runs at `parent` (builder style).
    pub fn with_parent(mut self, parent: SiteId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// True when this spec is a branch of a cross-shard transaction.
    pub fn is_branch(&self) -> bool {
        self.parent.is_some()
    }

    /// The items of `W(TR)`.
    pub fn writeset_items(&self) -> Vec<ItemId> {
        self.writeset.items().collect()
    }
}

/// The version a committed transaction installs on every copy it writes:
/// one more than the highest version any voting participant reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitVersion(pub Version);

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_votes::CatalogBuilder;

    #[test]
    fn protocol_names_are_stable() {
        assert_eq!(ProtocolKind::TwoPhase.name(), "2PC");
        assert_eq!(ProtocolKind::QuorumCommit2.name(), "QC2+TP2");
        assert_eq!(ProtocolKind::PaxosCommit.name(), "PaxosCommit");
        assert!(!ProtocolKind::TwoPhase.has_prepare_phase());
        assert!(ProtocolKind::QuorumCommit1.has_prepare_phase());
        assert!(ProtocolKind::PaxosCommit.has_prepare_phase());
        assert_eq!(ProtocolKind::ALL.len(), 6);
    }

    #[test]
    fn site_votes_example1_parameters_validate() {
        // Example 1: 8 sites, one vote each, Vc = 5, Va = 4.
        let sv = SiteVotes::uniform((1..=8).map(SiteId), 5, 4);
        assert_eq!(sv.total(), 8);
        assert!(sv.validate().is_ok());
        let g3: Vec<SiteId> = (6..=8).map(SiteId).collect();
        assert_eq!(sv.votes_among(&g3), 3);
    }

    #[test]
    fn site_votes_quorum_overlap_enforced() {
        let sv = SiteVotes::uniform((1..=8).map(SiteId), 4, 4);
        assert!(sv.validate().is_err(), "Vc+Va = V must be rejected");
    }

    #[test]
    fn spec_from_catalog_derives_participants() {
        let catalog = CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3)])
            .quorums(2, 2)
            .item(ItemId(1), "y")
            .copies_at([SiteId(3), SiteId(4), SiteId(5)])
            .quorums(2, 2)
            .build()
            .unwrap();
        let ws = WriteSet::new([(ItemId(0), 7), (ItemId(1), 9)]);
        let spec = TxnSpec::from_catalog(
            TxnId(1),
            SiteId(1),
            ws,
            ProtocolKind::QuorumCommit1,
            &catalog,
        );
        assert_eq!(spec.participants.len(), 5);
        assert_eq!(spec.writeset_items(), vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn writeset_accessors() {
        let ws = WriteSet::new([(ItemId(3), 1)]);
        assert_eq!(ws.len(), 1);
        assert!(!ws.is_empty());
        assert!(WriteSet::default().is_empty());
    }
}
