//! The pluggable commit-engine abstraction.
//!
//! Every commit protocol in this repo is a sans-IO state machine that
//! consumes messages and timer expiries and returns [`Action`]s. This
//! module names that shape as a trait, so the five quorum-paper engines
//! (driven by [`Coordinator`] + [`Participant`]) and Gray & Lamport's
//! Paxos Commit ([`crate::paxos_commit::PaxosLeader`]) are peers: the
//! driver selects an engine by [`crate::types::ProtocolKind`] and talks
//! to it only through this interface. The trait requires
//! [`qbc_simnet::Fingerprint`], so any engine slots straight into the
//! model checker's visited-state hashing.
//!
//! The trait impls for [`Coordinator`] and [`Participant`] delegate to
//! the exact per-message methods the driver used to call directly —
//! the refactor is behavior-preserving by construction, and the golden
//! digests in `crates/cluster/tests/determinism.rs` pin that it stays
//! so.

use crate::actions::{Action, TimerKind};
use crate::coordinator::{CoordPhase, Coordinator};
use crate::messages::Msg;
use crate::participant::Participant;
use crate::types::{Decision, TxnId};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, Version};

/// Per-event context the driver supplies alongside each message or
/// timer: the replica catalog (quorum arithmetic) and the highest local
/// version among this site's copies of the transaction's writeset items
/// (reported in yes votes).
pub struct EngineCtx<'a> {
    /// The cluster's replica catalog.
    pub catalog: &'a Catalog,
    /// Highest local version among the site's writeset copies.
    pub local_max_version: Version,
}

/// One commit-protocol role (coordinator, participant, Paxos leader)
/// for one transaction, as a uniform message-in/actions-out machine.
///
/// Effects are appended to a caller-supplied scratch buffer rather than
/// returned in a fresh `Vec`: the driver recycles a small pool of
/// buffers, so the steady-state message path performs no allocation per
/// event. Engines only ever *push* — they must not read, clear, or
/// reorder what the caller already buffered.
pub trait CommitEngine: qbc_simnet::Fingerprint {
    /// The transaction this engine drives.
    fn txn(&self) -> TxnId;

    /// Kicks the engine off (no-op for purely reactive roles).
    fn start(&mut self, out: &mut Vec<Action>);

    /// Feeds one protocol message; appends the effects to `out`.
    fn on_msg(&mut self, from: SiteId, msg: &Msg, ctx: &EngineCtx<'_>, out: &mut Vec<Action>);

    /// Feeds one timer expiry; appends the effects to `out`.
    fn on_timer(&mut self, kind: TimerKind, ctx: &EngineCtx<'_>, out: &mut Vec<Action>);

    /// The irrevocable outcome, once this engine reached one.
    fn decision(&self) -> Option<Decision>;

    /// The commit version, once fixed.
    fn commit_version(&self) -> Option<Version>;

    /// The [`crate::log::LogRecord`] kinds this engine force-writes, by
    /// stable name — the durability contract an engine declares to the
    /// driver and the docs.
    fn log_record_kinds(&self) -> &'static [&'static str];
}

impl CommitEngine for Coordinator {
    fn txn(&self) -> TxnId {
        Coordinator::txn(self)
    }

    fn start(&mut self, out: &mut Vec<Action>) {
        Coordinator::start(self, out)
    }

    fn on_msg(&mut self, from: SiteId, msg: &Msg, ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        match msg {
            Msg::Vote {
                yes, max_version, ..
            } => self.on_vote(from, *yes, *max_version, ctx.catalog, out),
            Msg::PcAck { .. } => self.on_pc_ack(from, ctx.catalog, out),
            Msg::XDecide {
                decision,
                commit_version,
                ..
            } => self.on_x_decide(*decision, *commit_version, out),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        match kind {
            TimerKind::VoteCollection { .. } => self.on_vote_timer(out),
            TimerKind::AckCollection { .. } => self.on_ack_timer(ctx.catalog, out),
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        match self.phase() {
            CoordPhase::Decided(d) => Some(d),
            _ => None,
        }
    }

    fn commit_version(&self) -> Option<Version> {
        Coordinator::commit_version(self)
    }

    fn log_record_kinds(&self) -> &'static [&'static str] {
        &["coordinator-start", "decided"]
    }
}

impl CommitEngine for Participant {
    fn txn(&self) -> TxnId {
        Participant::txn(self)
    }

    fn start(&mut self, _out: &mut Vec<Action>) {
        // participants are purely reactive
    }

    fn on_msg(&mut self, from: SiteId, msg: &Msg, ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        Participant::on_msg(self, from, msg, ctx.local_max_version, out)
    }

    fn on_timer(&mut self, kind: TimerKind, _ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        if let TimerKind::CoordinatorWatch { .. } = kind {
            self.on_coordinator_silent(out)
        }
    }

    fn decision(&self) -> Option<Decision> {
        Participant::decision(self)
    }

    fn commit_version(&self) -> Option<Version> {
        Participant::commit_version(self)
    }

    fn log_record_kinds(&self) -> &'static [&'static str] {
        &["voted", "voted-no", "pre-commit", "pre-abort", "decided"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantConfig;
    use crate::types::{ProtocolKind, TxnSpec, WriteSet};
    use qbc_votes::{CatalogBuilder, ItemId};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(0), SiteId(1), SiteId(2)])
            .quorums(2, 2)
            .build()
            .unwrap()
    }

    fn spec(protocol: ProtocolKind) -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(1),
            coordinator: SiteId(0),
            writeset: WriteSet::new([(ItemId(0), 7)]),
            participants: [SiteId(0), SiteId(1), SiteId(2)].into(),
            protocol,
            parent: None,
        })
    }

    /// The trait path and the direct-method path must emit identical
    /// actions — the refactor's behavior-preservation contract, checked
    /// here message by message on a full 2PC run.
    #[test]
    fn trait_dispatch_matches_direct_calls_for_coordinator() {
        let cat = catalog();
        let ctx = EngineCtx {
            catalog: &cat,
            local_max_version: Version(0),
        };
        let mut direct = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        let mut via_trait = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        direct.start(&mut a);
        CommitEngine::start(&mut via_trait, &mut b);
        assert_eq!(a, b);
        for s in 0..3u32 {
            a.clear();
            b.clear();
            direct.on_vote(SiteId(s), true, Version(s as u64), &cat, &mut a);
            via_trait.on_msg(
                SiteId(s),
                &Msg::Vote {
                    txn: TxnId(1),
                    yes: true,
                    max_version: Version(s as u64),
                },
                &ctx,
                &mut b,
            );
            assert_eq!(a, b);
        }
        assert_eq!(CommitEngine::decision(&via_trait), Some(Decision::Commit));
        assert_eq!(CommitEngine::commit_version(&via_trait), Some(Version(3)));
    }

    #[test]
    fn trait_dispatch_matches_direct_calls_for_participant() {
        let ctx = EngineCtx {
            catalog: &catalog(),
            local_max_version: Version(5),
        };
        let mut direct = Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default());
        let mut via_trait = Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default());
        let req = Msg::VoteReq {
            spec: spec(ProtocolKind::QuorumCommit1),
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        direct.on_msg(SiteId(0), &req, Version(5), &mut a);
        CommitEngine::on_msg(&mut via_trait, SiteId(0), &req, &ctx, &mut b);
        assert_eq!(a, b);
        // The watchdog timer maps to the coordinator-silence event.
        a.clear();
        b.clear();
        direct.on_coordinator_silent(&mut a);
        via_trait.on_timer(TimerKind::CoordinatorWatch { txn: TxnId(1) }, &ctx, &mut b);
        assert_eq!(a, b);
        assert!(matches!(a[0], Action::RequestTermination { .. }));
    }

    #[test]
    fn engines_declare_their_log_records() {
        let c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        assert!(c.log_record_kinds().contains(&"decided"));
        let p = Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default());
        assert!(p.log_record_kinds().contains(&"voted"));
    }
}
