//! Log records forced to stable storage at each protocol transition.
//!
//! The rule: a participant logs *before* acknowledging. What the log
//! contains after a crash is exactly what the participant may claim to
//! remember; recovery replays these records to rebuild the local state
//! (see [`recover_state`]).

use crate::states::LocalState;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_votes::Version;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A force-written log record of the commit/termination protocols.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Written by the coordinator before soliciting votes: makes the
    /// spec (and this site's coordinatorship) durable, so a recovering
    /// coordinator can apply presumed-abort (2PC) or re-announce a
    /// logged decision — even when it holds no copies itself.
    CoordinatorStart {
        /// The transaction spec being coordinated (shared with the
        /// engines and messages; a durable record conceptually owns its
        /// bytes, which the `Arc` preserves — the spec is immutable).
        spec: Arc<TxnSpec>,
    },
    /// Voted yes: the spec (with update values) is durable; state W.
    Voted {
        /// The transaction spec as received in `VOTE-REQ`.
        spec: Arc<TxnSpec>,
    },
    /// Voted no / aborted before voting; state A.
    VotedNo {
        /// Transaction.
        txn: TxnId,
    },
    /// Entered PC (acknowledged a PREPARE-TO-COMMIT).
    PreCommit {
        /// Transaction.
        txn: TxnId,
        /// The commit version learned from the prepare.
        commit_version: Version,
    },
    /// Entered PA (acknowledged a PREPARE-TO-ABORT).
    PreAbort {
        /// Transaction.
        txn: TxnId,
    },
    /// Terminal decision (commit or abort).
    Decided {
        /// Transaction.
        txn: TxnId,
        /// Outcome.
        decision: Decision,
        /// Version installed when committing.
        commit_version: Option<Version>,
    },
    /// Written by a *cross-shard* coordinator before soliciting branch
    /// votes: the branch specs (and this site's cross-shard
    /// coordinatorship) are durable, so recovery can apply top-level
    /// presumed abort — the absence of a durable [`LogRecord::XDecision`]
    /// proves no `X-DECIDE` commit was ever sent.
    XStart {
        /// Cross-shard transaction.
        txn: TxnId,
        /// One spec per involved shard, each with `parent` set to this
        /// site (shared with the engine and the `X-BRANCH-REQ` fan-out).
        branches: Vec<Arc<TxnSpec>>,
    },
    /// The cross-shard commit point: the top-level decision, forced
    /// before any `X-DECIDE` leaves this site. Carries every branch's
    /// in-shard commit version so a recovering coordinator can
    /// re-announce the correct version to each shard.
    XDecision {
        /// Cross-shard transaction.
        txn: TxnId,
        /// The irrevocable top-level outcome.
        decision: Decision,
        /// `(branch coordinator, branch commit version)` per branch,
        /// in [`LogRecord::XStart`] branch order.
        branch_versions: Vec<(qbc_simnet::SiteId, Option<Version>)>,
    },
    /// Paxos Commit acceptor: promised not to accept below `bal`
    /// (Phase-1b). Forced before the promise leaves the site, so a
    /// recovering acceptor never accepts a 2a an earlier incarnation
    /// already promised away.
    PaxosPromise {
        /// Transaction.
        txn: TxnId,
        /// The ballot promised.
        bal: u64,
    },
    /// Paxos Commit acceptor: accepted the batched Phase-2a values at
    /// `bal` (Phase-2b). Forced before the 2b echo leaves the site —
    /// this is the acceptor's contribution to the decision's durability
    /// (the leader never force-logs votes itself; F+1 of these records
    /// across the acceptors make the outcome stable).
    PaxosAccept {
        /// Transaction.
        txn: TxnId,
        /// The ballot accepted at.
        bal: u64,
        /// The accepted values: `(instance participant, prepared?,
        /// reported max version)` per vote instance.
        votes: Vec<(qbc_simnet::SiteId, bool, Version)>,
    },
    /// A checkpoint: the compact outcomes of every *retired*
    /// transaction and cross-shard coordination, plus a snapshot of the
    /// site's versioned item copies, re-logged in one record so the
    /// per-transaction records they were distilled from become dead
    /// weight. Once this record is forced, the log prefix below it (and
    /// below every live transaction's first record) can be truncated;
    /// recovery installs the snapshot and replays only the suffix
    /// instead of the full history. This is what bounds stable storage
    /// the way retirement bounds the in-memory tables.
    Checkpoint {
        /// Outcomes of retired single-shard transactions.
        retired: Vec<RetiredOutcome>,
        /// Outcomes of retired cross-shard coordinations hosted here.
        xretired: Vec<XRetiredOutcome>,
        /// The retained version chain of every local copy as of the
        /// checkpoint (ascending, newest last) — the durable home of
        /// updates whose commit records are about to be truncated.
        /// Single-slot sites carry one-entry chains; multi-version
        /// retention (snapshot reads) carries the full bounded chain
        /// so recovery can still answer watermark reads.
        items: Vec<(qbc_votes::ItemId, ItemChain)>,
    },
}

/// The retained `(version, value)` chain of one item, ascending — the
/// per-item payload of [`LogRecord::Checkpoint`].
pub type ItemChain = Vec<(Version, i64)>;

/// The compact outcome of one retired transaction, as carried by
/// [`LogRecord::Checkpoint`]: everything a straggler's question can
/// still need after the per-record history is truncated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetiredOutcome {
    /// Transaction.
    pub txn: TxnId,
    /// Its irrevocable outcome.
    pub decision: Decision,
    /// Version installed when committing.
    pub commit_version: Option<Version>,
}

/// The compact outcome of one retired *cross-shard* coordination, as
/// carried by [`LogRecord::Checkpoint`]: per-branch membership and
/// commit versions, enough to keep answering `X-OUTCOME-REQ` from late
/// orphans.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XRetiredOutcome {
    /// Cross-shard transaction.
    pub txn: TxnId,
    /// The top-level outcome.
    pub decision: Decision,
    /// `(branch coordinator, branch participants, in-shard commit
    /// version)` per branch.
    pub branches: Vec<(qbc_simnet::SiteId, Vec<qbc_simnet::SiteId>, Option<Version>)>,
}

impl LogRecord {
    /// The transaction this record belongs to; `None` for
    /// [`LogRecord::Checkpoint`], which spans many.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::CoordinatorStart { spec } | LogRecord::Voted { spec } => Some(spec.id),
            LogRecord::VotedNo { txn }
            | LogRecord::PreCommit { txn, .. }
            | LogRecord::PreAbort { txn }
            | LogRecord::Decided { txn, .. }
            | LogRecord::XStart { txn, .. }
            | LogRecord::XDecision { txn, .. }
            | LogRecord::PaxosPromise { txn, .. }
            | LogRecord::PaxosAccept { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// The most recent [`LogRecord::Checkpoint`] in a replay, if any: the
/// retired outcomes and item snapshot a recovering site must
/// re-install before replaying the per-transaction suffix (their own
/// records may be truncated). Returns
/// `(retired, xretired, item version chains)`.
#[allow(clippy::type_complexity)]
pub fn last_checkpoint<'a>(
    records: impl IntoIterator<Item = &'a LogRecord>,
) -> Option<(
    &'a [RetiredOutcome],
    &'a [XRetiredOutcome],
    &'a [(qbc_votes::ItemId, ItemChain)],
)> {
    let mut found = None;
    for rec in records {
        if let LogRecord::Checkpoint {
            retired,
            xretired,
            items,
        } = rec
        {
            found = Some((retired.as_slice(), xretired.as_slice(), items.as_slice()));
        }
    }
    found
}

/// The durable state of one transaction reconstructed from the log.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredTxn {
    /// The spec, if the site voted yes (q/vote-no sites have none).
    pub spec: Option<Arc<TxnSpec>>,
    /// Local state as of the last logged record.
    pub state: LocalState,
    /// Commit version learned (from PC or commit records).
    pub commit_version: Option<Version>,
}

/// Replays a site's log records (in order) into per-transaction state.
///
/// Used by a recovering site to rebuild its participant engines: a
/// transaction recovered in a non-terminal state re-enters the
/// termination path.
pub fn recover_state<'a>(
    records: impl IntoIterator<Item = &'a LogRecord>,
) -> std::collections::BTreeMap<TxnId, RecoveredTxn> {
    let mut out: std::collections::BTreeMap<TxnId, RecoveredTxn> =
        std::collections::BTreeMap::new();
    for rec in records {
        // Cross-shard coordinator records describe the top-level 2PC
        // role, not this site's participant state (recovered separately
        // by [`recover_xstate`]); checkpoints span many transactions
        // (recovered by [`last_checkpoint`]).
        let Some(txn) = rec.txn() else { continue };
        if matches!(
            rec,
            LogRecord::XStart { .. }
                | LogRecord::XDecision { .. }
                | LogRecord::PaxosPromise { .. }
                | LogRecord::PaxosAccept { .. }
        ) {
            // Cross-shard coordinator records are recovered by
            // [`recover_xstate`]; Paxos acceptor records by
            // [`recover_paxos`].
            continue;
        }
        let entry = out.entry(txn).or_insert(RecoveredTxn {
            spec: None,
            state: LocalState::Initial,
            commit_version: None,
        });
        // Terminal decisions are irrevocable: later records (which should
        // not exist) never downgrade them.
        if entry.state.is_terminal() {
            continue;
        }
        match rec {
            LogRecord::CoordinatorStart { spec } => {
                // Establishes the spec; the local *participant* state is
                // untouched (a pure coordinator never votes).
                if entry.spec.is_none() {
                    entry.spec = Some(Arc::clone(spec));
                }
            }
            LogRecord::Voted { spec } => {
                entry.spec = Some(Arc::clone(spec));
                entry.state = LocalState::Wait;
            }
            LogRecord::VotedNo { .. } => {
                entry.state = LocalState::Aborted;
            }
            LogRecord::PreCommit { commit_version, .. } => {
                entry.state = LocalState::PreCommit;
                entry.commit_version = Some(*commit_version);
            }
            LogRecord::PreAbort { .. } => {
                entry.state = LocalState::PreAbort;
            }
            LogRecord::Decided {
                decision,
                commit_version,
                ..
            } => {
                entry.state = match decision {
                    Decision::Commit => LocalState::Committed,
                    Decision::Abort => LocalState::Aborted,
                };
                if commit_version.is_some() {
                    entry.commit_version = *commit_version;
                }
            }
            LogRecord::XStart { .. }
            | LogRecord::XDecision { .. }
            | LogRecord::PaxosPromise { .. }
            | LogRecord::PaxosAccept { .. }
            | LogRecord::Checkpoint { .. } => {
                unreachable!("skipped above")
            }
        }
    }
    out
}

/// `(branch coordinator, in-shard commit version)` per branch — the
/// payload of [`LogRecord::XDecision`].
pub type BranchVersions = Vec<(qbc_simnet::SiteId, Option<Version>)>;

/// The durable state of one *cross-shard* coordination reconstructed
/// from the log (the top-level 2PC counterpart of [`RecoveredTxn`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredXTxn {
    /// The branch specs logged at start.
    pub branches: Vec<Arc<TxnSpec>>,
    /// The logged top-level decision with per-branch commit versions,
    /// if the transaction reached its cross-shard commit point.
    pub decision: Option<(Decision, BranchVersions)>,
}

/// Replays a site's log into per-transaction cross-shard coordinator
/// state. A transaction recovered *without* a decision is presumed
/// aborted by the recovering coordinator (the top-level analogue of 2PC
/// presumed abort): no durable [`LogRecord::XDecision`] means no
/// `X-DECIDE` was ever sent, so abort is still safe.
pub fn recover_xstate<'a>(
    records: impl IntoIterator<Item = &'a LogRecord>,
) -> std::collections::BTreeMap<TxnId, RecoveredXTxn> {
    let mut out: std::collections::BTreeMap<TxnId, RecoveredXTxn> =
        std::collections::BTreeMap::new();
    for rec in records {
        match rec {
            LogRecord::XStart { txn, branches } => {
                out.entry(*txn).or_insert(RecoveredXTxn {
                    branches: branches.clone(),
                    decision: None,
                });
            }
            LogRecord::XDecision {
                txn,
                decision,
                branch_versions,
            } => {
                if let Some(x) = out.get_mut(txn) {
                    // The decision is irrevocable: keep the first.
                    if x.decision.is_none() {
                        x.decision = Some((*decision, branch_versions.clone()));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// The durable Paxos-acceptor state for one transaction reconstructed
/// from the log: the highest ballot promised and the highest-ballot
/// batch of values accepted.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RecoveredAcceptor {
    /// Highest ballot promised (from both promise and accept records —
    /// accepting at `b` implies promising `b`).
    pub promised: u64,
    /// The accepted batch with the highest ballot, if any:
    /// `(ballot, values)`.
    pub accepted: Option<(u64, crate::paxos_commit::PaxosVotes)>,
}

/// Replays a site's log into per-transaction Paxos acceptor state (the
/// Paxos Commit counterpart of [`recover_state`]). A recovering
/// acceptor re-installs these before answering any 1a/2a, so it never
/// breaks a promise an earlier incarnation made.
pub fn recover_paxos<'a>(
    records: impl IntoIterator<Item = &'a LogRecord>,
) -> std::collections::BTreeMap<TxnId, RecoveredAcceptor> {
    let mut out: std::collections::BTreeMap<TxnId, RecoveredAcceptor> =
        std::collections::BTreeMap::new();
    for rec in records {
        match rec {
            LogRecord::PaxosPromise { txn, bal } => {
                let a = out.entry(*txn).or_default();
                a.promised = a.promised.max(*bal);
            }
            LogRecord::PaxosAccept { txn, bal, votes } => {
                let a = out.entry(*txn).or_default();
                a.promised = a.promised.max(*bal);
                if a.accepted.as_ref().is_none_or(|(b, _)| *bal >= *b) {
                    a.accepted = Some((*bal, votes.clone()));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_simnet::SiteId;

    fn spec(id: u64) -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(id),
            coordinator: SiteId(1),
            writeset: WriteSet::default(),
            participants: Default::default(),
            protocol: ProtocolKind::ThreePhase,
            parent: None,
        })
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let state = recover_state([]);
        assert!(state.is_empty());
    }

    #[test]
    fn voted_then_pc_recovers_as_pc() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::PreCommit {
                txn: TxnId(1),
                commit_version: Version(4),
            },
        ];
        let state = recover_state(&records);
        let t = &state[&TxnId(1)];
        assert_eq!(t.state, LocalState::PreCommit);
        assert_eq!(t.commit_version, Some(Version(4)));
        assert!(t.spec.is_some());
    }

    #[test]
    fn decision_is_final_even_with_trailing_garbage() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Abort,
                commit_version: None,
            },
            // A corrupt/duplicated trailing record must not resurrect it.
            LogRecord::PreCommit {
                txn: TxnId(1),
                commit_version: Version(9),
            },
        ];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(1)].state, LocalState::Aborted);
    }

    #[test]
    fn multiple_transactions_recover_independently() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::Voted { spec: spec(2) },
            LogRecord::PreAbort { txn: TxnId(2) },
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                commit_version: Some(Version(2)),
            },
        ];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(1)].state, LocalState::Committed);
        assert_eq!(state[&TxnId(1)].commit_version, Some(Version(2)));
        assert_eq!(state[&TxnId(2)].state, LocalState::PreAbort);
    }

    #[test]
    fn x_records_recover_separately_from_participant_state() {
        let records = vec![
            LogRecord::XStart {
                txn: TxnId(5),
                branches: vec![spec(5)],
            },
            LogRecord::Voted { spec: spec(5) },
            LogRecord::XDecision {
                txn: TxnId(5),
                decision: Decision::Commit,
                branch_versions: vec![(SiteId(1), Some(Version(2)))],
            },
        ];
        // Participant recovery sees only the Voted record.
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(5)].state, LocalState::Wait);
        // X recovery sees the start and the decision.
        let x = recover_xstate(&records);
        assert_eq!(x[&TxnId(5)].branches.len(), 1);
        assert_eq!(
            x[&TxnId(5)].decision,
            Some((Decision::Commit, vec![(SiteId(1), Some(Version(2)))]))
        );
    }

    #[test]
    fn xstart_without_decision_recovers_undecided() {
        let records = vec![LogRecord::XStart {
            txn: TxnId(9),
            branches: vec![spec(9), spec(9)],
        }];
        let x = recover_xstate(&records);
        assert_eq!(x[&TxnId(9)].decision, None);
        assert_eq!(x[&TxnId(9)].branches.len(), 2);
    }

    #[test]
    fn paxos_records_recover_separately_from_participant_state() {
        let records = vec![
            LogRecord::Voted { spec: spec(4) },
            LogRecord::PaxosAccept {
                txn: TxnId(4),
                bal: 0,
                votes: vec![(SiteId(1), true, Version(2))],
            },
            LogRecord::PaxosPromise {
                txn: TxnId(4),
                bal: 3,
            },
            LogRecord::PaxosAccept {
                txn: TxnId(4),
                bal: 3,
                votes: vec![(SiteId(1), false, Version(0))],
            },
        ];
        // Participant recovery is untouched by acceptor records.
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(4)].state, LocalState::Wait);
        // Acceptor recovery keeps the highest-ballot acceptance and the
        // highest promise.
        let paxos = recover_paxos(&records);
        let a = &paxos[&TxnId(4)];
        assert_eq!(a.promised, 3);
        assert_eq!(a.accepted, Some((3, vec![(SiteId(1), false, Version(0))])));
    }

    #[test]
    fn paxos_accept_implies_promise() {
        let records = vec![LogRecord::PaxosAccept {
            txn: TxnId(8),
            bal: 5,
            votes: vec![],
        }];
        let paxos = recover_paxos(&records);
        assert_eq!(paxos[&TxnId(8)].promised, 5);
    }

    #[test]
    fn vote_no_recovers_aborted_without_spec() {
        let records = vec![LogRecord::VotedNo { txn: TxnId(3) }];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(3)].state, LocalState::Aborted);
        assert!(state[&TxnId(3)].spec.is_none());
    }
}
