//! Log records forced to stable storage at each protocol transition.
//!
//! The rule: a participant logs *before* acknowledging. What the log
//! contains after a crash is exactly what the participant may claim to
//! remember; recovery replays these records to rebuild the local state
//! (see [`recover_state`]).

use crate::states::LocalState;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_votes::Version;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A force-written log record of the commit/termination protocols.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Written by the coordinator before soliciting votes: makes the
    /// spec (and this site's coordinatorship) durable, so a recovering
    /// coordinator can apply presumed-abort (2PC) or re-announce a
    /// logged decision — even when it holds no copies itself.
    CoordinatorStart {
        /// The transaction spec being coordinated (shared with the
        /// engines and messages; a durable record conceptually owns its
        /// bytes, which the `Arc` preserves — the spec is immutable).
        spec: Arc<TxnSpec>,
    },
    /// Voted yes: the spec (with update values) is durable; state W.
    Voted {
        /// The transaction spec as received in `VOTE-REQ`.
        spec: Arc<TxnSpec>,
    },
    /// Voted no / aborted before voting; state A.
    VotedNo {
        /// Transaction.
        txn: TxnId,
    },
    /// Entered PC (acknowledged a PREPARE-TO-COMMIT).
    PreCommit {
        /// Transaction.
        txn: TxnId,
        /// The commit version learned from the prepare.
        commit_version: Version,
    },
    /// Entered PA (acknowledged a PREPARE-TO-ABORT).
    PreAbort {
        /// Transaction.
        txn: TxnId,
    },
    /// Terminal decision (commit or abort).
    Decided {
        /// Transaction.
        txn: TxnId,
        /// Outcome.
        decision: Decision,
        /// Version installed when committing.
        commit_version: Option<Version>,
    },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::CoordinatorStart { spec } | LogRecord::Voted { spec } => spec.id,
            LogRecord::VotedNo { txn }
            | LogRecord::PreCommit { txn, .. }
            | LogRecord::PreAbort { txn }
            | LogRecord::Decided { txn, .. } => *txn,
        }
    }
}

/// The durable state of one transaction reconstructed from the log.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredTxn {
    /// The spec, if the site voted yes (q/vote-no sites have none).
    pub spec: Option<Arc<TxnSpec>>,
    /// Local state as of the last logged record.
    pub state: LocalState,
    /// Commit version learned (from PC or commit records).
    pub commit_version: Option<Version>,
}

/// Replays a site's log records (in order) into per-transaction state.
///
/// Used by a recovering site to rebuild its participant engines: a
/// transaction recovered in a non-terminal state re-enters the
/// termination path.
pub fn recover_state<'a>(
    records: impl IntoIterator<Item = &'a LogRecord>,
) -> std::collections::BTreeMap<TxnId, RecoveredTxn> {
    let mut out: std::collections::BTreeMap<TxnId, RecoveredTxn> =
        std::collections::BTreeMap::new();
    for rec in records {
        let entry = out.entry(rec.txn()).or_insert(RecoveredTxn {
            spec: None,
            state: LocalState::Initial,
            commit_version: None,
        });
        // Terminal decisions are irrevocable: later records (which should
        // not exist) never downgrade them.
        if entry.state.is_terminal() {
            continue;
        }
        match rec {
            LogRecord::CoordinatorStart { spec } => {
                // Establishes the spec; the local *participant* state is
                // untouched (a pure coordinator never votes).
                if entry.spec.is_none() {
                    entry.spec = Some(Arc::clone(spec));
                }
            }
            LogRecord::Voted { spec } => {
                entry.spec = Some(Arc::clone(spec));
                entry.state = LocalState::Wait;
            }
            LogRecord::VotedNo { .. } => {
                entry.state = LocalState::Aborted;
            }
            LogRecord::PreCommit { commit_version, .. } => {
                entry.state = LocalState::PreCommit;
                entry.commit_version = Some(*commit_version);
            }
            LogRecord::PreAbort { .. } => {
                entry.state = LocalState::PreAbort;
            }
            LogRecord::Decided {
                decision,
                commit_version,
                ..
            } => {
                entry.state = match decision {
                    Decision::Commit => LocalState::Committed,
                    Decision::Abort => LocalState::Aborted,
                };
                if commit_version.is_some() {
                    entry.commit_version = *commit_version;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_simnet::SiteId;

    fn spec(id: u64) -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(id),
            coordinator: SiteId(1),
            writeset: WriteSet::default(),
            participants: Default::default(),
            protocol: ProtocolKind::ThreePhase,
        })
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let state = recover_state([]);
        assert!(state.is_empty());
    }

    #[test]
    fn voted_then_pc_recovers_as_pc() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::PreCommit {
                txn: TxnId(1),
                commit_version: Version(4),
            },
        ];
        let state = recover_state(&records);
        let t = &state[&TxnId(1)];
        assert_eq!(t.state, LocalState::PreCommit);
        assert_eq!(t.commit_version, Some(Version(4)));
        assert!(t.spec.is_some());
    }

    #[test]
    fn decision_is_final_even_with_trailing_garbage() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Abort,
                commit_version: None,
            },
            // A corrupt/duplicated trailing record must not resurrect it.
            LogRecord::PreCommit {
                txn: TxnId(1),
                commit_version: Version(9),
            },
        ];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(1)].state, LocalState::Aborted);
    }

    #[test]
    fn multiple_transactions_recover_independently() {
        let records = vec![
            LogRecord::Voted { spec: spec(1) },
            LogRecord::Voted { spec: spec(2) },
            LogRecord::PreAbort { txn: TxnId(2) },
            LogRecord::Decided {
                txn: TxnId(1),
                decision: Decision::Commit,
                commit_version: Some(Version(2)),
            },
        ];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(1)].state, LocalState::Committed);
        assert_eq!(state[&TxnId(1)].commit_version, Some(Version(2)));
        assert_eq!(state[&TxnId(2)].state, LocalState::PreAbort);
    }

    #[test]
    fn vote_no_recovers_aborted_without_spec() {
        let records = vec![LogRecord::VotedNo { txn: TxnId(3) }];
        let state = recover_state(&records);
        assert_eq!(state[&TxnId(3)].state, LocalState::Aborted);
        assert!(state[&TxnId(3)].spec.is_none());
    }
}
