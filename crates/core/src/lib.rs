//! # qbc-core — quorum-based commit and termination protocols
//!
//! The primary contribution of Huang & Li, *"A Quorum-based Commit and
//! Termination Protocol for Distributed Database Systems"* (ICDE 1988),
//! implemented as sans-IO state machines, alongside every baseline the
//! paper compares against:
//!
//! | Engine | Paper artifact |
//! |---|---|
//! | [`Coordinator`] (`ProtocolKind::TwoPhase`) | Fig. 1, 2PC |
//! | [`Coordinator`] (`ProtocolKind::ThreePhase`) | Fig. 2, Skeen's 3PC |
//! | [`Coordinator`] (`ProtocolKind::SkeenQuorum`) | Skeen's quorum commit `[16]` |
//! | [`Coordinator`] (`ProtocolKind::QuorumCommit1/2`) | Fig. 9, QC1/QC2 |
//! | [`PaxosLeader`] + [`PaxosAcceptor`] (`ProtocolKind::PaxosCommit`) | Gray & Lamport's Paxos Commit (comparison engine) |
//! | [`Participant`] | Fig. 5 "PARTICIPANTS" (all variants) |
//! | [`Termination`] + [`rules`] | Figs. 5 & 8, TP1/TP2 + baselines |
//! | [`LocalState`]/[`Transition`] | Fig. 6 state-transition diagram |
//! | [`partition_state`] | Fig. 4 partition states & concurrency sets |
//!
//! Engines are pure: they consume messages/timeouts and emit
//! [`Action`]s. The `qbc-db` crate wires them to the network, the lock
//! manager and stable storage.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod actions;
mod commit_engine;
mod coordinator;
pub mod log;
mod messages;
mod participant;
pub mod partition_state;
mod paxos_commit;
pub mod rules;
mod states;
mod termination;
mod types;
mod wal_codec;
mod xshard;

pub use actions::{Action, TimerKind};
pub use commit_engine::{CommitEngine, EngineCtx};
pub use coordinator::{CoordPhase, Coordinator};
pub use log::{
    last_checkpoint, recover_paxos, recover_state, recover_xstate, ItemChain, LogRecord,
    RecoveredAcceptor, RecoveredTxn, RecoveredXTxn, RetiredOutcome, XRetiredOutcome,
};
pub use messages::Msg;
pub use participant::{FaultyMode, Participant, ParticipantConfig};
pub use paxos_commit::{PaxosAcceptor, PaxosLeader, PaxosPhase, PaxosVotes};
pub use rules::{Phase2Outcome, StateView, TerminationKind};
pub use states::{LocalState, Transition};
pub use termination::{Termination, TerminationPhase};
pub use types::{CommitVersion, Decision, ProtocolKind, SiteVotes, TxnId, TxnSpec, WriteSet};
pub use wal_codec::encoded_len;
pub use xshard::{XPhase, XTxnCoordinator};

/// Derives the termination rule set for a protocol kind.
///
/// `site_votes` must be provided for [`ProtocolKind::SkeenQuorum`].
pub fn termination_kind_for(
    protocol: ProtocolKind,
    site_votes: Option<&SiteVotes>,
) -> TerminationKind {
    match protocol {
        ProtocolKind::TwoPhase => TerminationKind::TwoPcCooperative,
        ProtocolKind::ThreePhase => TerminationKind::ThreePcSiteFailure,
        ProtocolKind::SkeenQuorum => TerminationKind::SkeenQuorum(
            site_votes
                .cloned()
                .expect("Skeen quorum protocol requires site votes"),
        ),
        ProtocolKind::QuorumCommit1 => TerminationKind::Tp1,
        ProtocolKind::QuorumCommit2 => TerminationKind::Tp2,
        // Paxos Commit replaces the quorum termination protocol with
        // Phase-1 leader recovery ([`PaxosLeader::recover`]); asking
        // for its termination rules is a driver bug.
        ProtocolKind::PaxosCommit => {
            panic!("Paxos Commit has no termination protocol: leader recovery replaces it")
        }
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;
    use qbc_simnet::SiteId;

    #[test]
    fn protocol_to_termination_mapping() {
        assert_eq!(
            termination_kind_for(ProtocolKind::TwoPhase, None),
            TerminationKind::TwoPcCooperative
        );
        assert_eq!(
            termination_kind_for(ProtocolKind::ThreePhase, None),
            TerminationKind::ThreePcSiteFailure
        );
        assert_eq!(
            termination_kind_for(ProtocolKind::QuorumCommit1, None),
            TerminationKind::Tp1
        );
        assert_eq!(
            termination_kind_for(ProtocolKind::QuorumCommit2, None),
            TerminationKind::Tp2
        );
        let sv = SiteVotes::uniform([SiteId(1)], 1, 1);
        assert!(matches!(
            termination_kind_for(ProtocolKind::SkeenQuorum, Some(&sv)),
            TerminationKind::SkeenQuorum(_)
        ));
    }

    #[test]
    #[should_panic(expected = "requires site votes")]
    fn skeen_without_votes_panics() {
        termination_kind_for(ProtocolKind::SkeenQuorum, None);
    }

    #[test]
    #[should_panic(expected = "no termination protocol")]
    fn paxos_commit_has_no_termination_protocol() {
        termination_kind_for(ProtocolKind::PaxosCommit, None);
    }
}
