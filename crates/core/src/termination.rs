//! The termination-protocol coordinator engine (Figs. 5 and 8).
//!
//! Runs at the site elected coordinator of its partition. Three phases:
//!
//! 1. request local states from all reachable participants (`2T` window);
//! 2. evaluate the rule table ([`crate::rules::phase2`]): immediate
//!    decision, prepare round, or block;
//! 3. collect PREPARE acks (`2T`); if the quorum completes, command the
//!    decision; otherwise "start the election protocol" again (the
//!    re-entrant path — handled by emitting
//!    [`Action::RequestTermination`]).
//!
//! The engine is re-enterable: each attempt carries a round number, and
//! stale replies or timers from older rounds are ignored. Multiple
//! engines may run concurrently in one partition (several coordinators);
//! safety rests on the participants' PC/PA wall, not on uniqueness here.

use crate::actions::{Action, TimerKind};
use crate::messages::Msg;
use crate::rules::{phase2, phase3_satisfied, Phase2Outcome, StateView, TerminationKind};
use crate::states::LocalState;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, Version};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Progress of one termination attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationPhase {
    /// Phase 1: collecting `STATE-REP`s.
    CollectingStates,
    /// Phase 3 (commit direction): collecting `PC-ACK`s.
    AwaitingPcAcks,
    /// Phase 3 (abort direction): collecting `PA-ACK`s.
    AwaitingPaAcks,
    /// Decided and commanded.
    Done(Decision),
    /// Rule 5: blocked (will be retried by a later round).
    Blocked,
    /// Phase 3 failed; a new election/round was requested.
    Failed,
}

/// The termination coordinator for one transaction, one round.
#[derive(Clone, Debug)]
pub struct Termination {
    self_site: SiteId,
    spec: Arc<TxnSpec>,
    kind: TerminationKind,
    round: u64,
    phase: TerminationPhase,
    view: StateView,
    /// Commit version learned from any committable replier.
    pc_version: Option<Version>,
    /// Phase-1 repliers already in the prepared state (the "base").
    base: BTreeSet<SiteId>,
    /// Phase-3 ackers.
    acks: BTreeSet<SiteId>,
    /// Direction being attempted in phase 3.
    attempt: Option<Decision>,
}

impl Termination {
    /// Creates a termination attempt and returns it with its kickoff
    /// actions: broadcast `STATE-REQ` and arm the `2T` collection timer.
    ///
    /// `own_state`/`own_pc_version` seed the view with the coordinator's
    /// own participant state (it is always itself a participant, except
    /// for a site that learned the spec only through a `STATE-REQ`).
    pub fn start(
        self_site: SiteId,
        spec: Arc<TxnSpec>,
        kind: TerminationKind,
        round: u64,
        own_state: LocalState,
        own_pc_version: Option<Version>,
    ) -> (Self, Vec<Action>) {
        let mut view = StateView::new();
        view.record(self_site, own_state);
        let t = Termination {
            self_site,
            spec,
            kind,
            round,
            phase: TerminationPhase::CollectingStates,
            view,
            pc_version: own_pc_version,
            base: BTreeSet::new(),
            acks: BTreeSet::new(),
            attempt: None,
        };
        let peers: Vec<SiteId> = t
            .spec
            .participants
            .iter()
            .copied()
            .filter(|&s| s != self_site)
            .collect();
        let mut actions = vec![Action::Broadcast(
            peers,
            Msg::StateReq {
                round,
                spec: Arc::clone(&t.spec),
            },
        )];
        actions.push(Action::SetTimer(TimerKind::StateCollection {
            txn: t.spec.id,
            round,
        }));
        // A lone participant can evaluate immediately only when its
        // partition contains nobody else; we still wait for the timer so
        // late repliers are counted (deterministic and simple).
        (t, actions)
    }

    /// The round of this attempt.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The site running this termination attempt.
    pub fn coordinator_site(&self) -> SiteId {
        self.self_site
    }

    /// Current phase.
    pub fn phase(&self) -> &TerminationPhase {
        &self.phase
    }

    /// The transaction being terminated.
    pub fn txn(&self) -> TxnId {
        self.spec.id
    }

    /// Handles a `STATE-REP` (phase 1) or a terminal `Decided` relay.
    pub fn on_state_rep(
        &mut self,
        from: SiteId,
        round: u64,
        state: LocalState,
        pc_version: Option<Version>,
        catalog: &Catalog,
    ) -> Vec<Action> {
        if round != self.round || self.phase != TerminationPhase::CollectingStates {
            return Vec::new();
        }
        self.view.record(from, state);
        if let Some(v) = pc_version {
            self.pc_version = Some(v);
        }
        // A terminal report decides immediately — "if any participant
        // has committed, then TR is immediately committed at all
        // participants in the partition" (and symmetrically for abort).
        if let Some(decision) = state.decision() {
            return self.decide(decision);
        }
        // All participants answered: no need to wait out the timer.
        if self.view.len() == self.spec.participants.len() {
            return self.evaluate(catalog);
        }
        Vec::new()
    }

    /// Phase-1 collection window expired.
    pub fn on_state_timer(&mut self, round: u64, catalog: &Catalog) -> Vec<Action> {
        if round != self.round || self.phase != TerminationPhase::CollectingStates {
            return Vec::new();
        }
        self.evaluate(catalog)
    }

    /// Evaluates the phase-2 rule table and acts on it.
    fn evaluate(&mut self, catalog: &Catalog) -> Vec<Action> {
        match phase2(&self.kind, catalog, &self.spec, &self.view) {
            Phase2Outcome::Immediate(d) => self.decide(d),
            Phase2Outcome::AttemptCommit => {
                let Some(version) = self.pc_version else {
                    // ∃PC is a precondition of the commit attempt, and PC
                    // repliers carry their version; missing version means
                    // a protocol bug.
                    return vec![Action::ViolationNote {
                        txn: self.spec.id,
                        note: "commit attempt without a PC version witness",
                    }];
                };
                self.phase = TerminationPhase::AwaitingPcAcks;
                self.attempt = Some(Decision::Commit);
                self.base = self
                    .view
                    .sites_where(|s| s == LocalState::PreCommit || s == LocalState::Committed);
                self.acks.clear();
                let wait_sites: Vec<SiteId> = self
                    .view
                    .sites_where(|s| s == LocalState::Wait)
                    .into_iter()
                    .collect();
                vec![
                    Action::Broadcast(
                        wait_sites,
                        Msg::PrepareCommit {
                            txn: self.spec.id,
                            commit_version: version,
                        },
                    ),
                    Action::SetTimer(TimerKind::TerminationAcks {
                        txn: self.spec.id,
                        round: self.round,
                    }),
                ]
            }
            Phase2Outcome::AttemptAbort => {
                self.phase = TerminationPhase::AwaitingPaAcks;
                self.attempt = Some(Decision::Abort);
                self.base = self.view.sites_where(|s| s == LocalState::PreAbort);
                self.acks.clear();
                let wait_sites: Vec<SiteId> = self
                    .view
                    .sites_where(|s| s == LocalState::Wait)
                    .into_iter()
                    .collect();
                vec![
                    Action::Broadcast(wait_sites, Msg::PrepareAbort { txn: self.spec.id }),
                    Action::SetTimer(TimerKind::TerminationAcks {
                        txn: self.spec.id,
                        round: self.round,
                    }),
                ]
            }
            Phase2Outcome::Block => {
                self.phase = TerminationPhase::Blocked;
                vec![Action::DeclareBlocked { txn: self.spec.id }]
            }
        }
    }

    /// Issues the decision to every reachable participant.
    fn decide(&mut self, decision: Decision) -> Vec<Action> {
        self.phase = TerminationPhase::Done(decision);
        let everyone: Vec<SiteId> = self.spec.participants.iter().copied().collect();
        let msg = match decision {
            Decision::Commit => match self.pc_version {
                Some(v) => Msg::Commit {
                    txn: self.spec.id,
                    commit_version: v,
                },
                None => {
                    return vec![Action::ViolationNote {
                        txn: self.spec.id,
                        note: "termination commit without version witness",
                    }]
                }
            },
            Decision::Abort => Msg::Abort { txn: self.spec.id },
        };
        vec![Action::Broadcast(everyone, msg)]
    }

    /// Handles a PC-ACK during phase 3 (commit direction).
    pub fn on_pc_ack(&mut self, from: SiteId, catalog: &Catalog) -> Vec<Action> {
        if self.phase != TerminationPhase::AwaitingPcAcks {
            return Vec::new();
        }
        self.acks.insert(from);
        self.try_finish(catalog)
    }

    /// Handles a PA-ACK during phase 3 (abort direction).
    pub fn on_pa_ack(&mut self, from: SiteId, catalog: &Catalog) -> Vec<Action> {
        if self.phase != TerminationPhase::AwaitingPaAcks {
            return Vec::new();
        }
        self.acks.insert(from);
        self.try_finish(catalog)
    }

    fn quorum_sites(&self) -> BTreeSet<SiteId> {
        self.base.union(&self.acks).copied().collect()
    }

    fn try_finish(&mut self, catalog: &Catalog) -> Vec<Action> {
        let Some(attempt) = self.attempt else {
            return Vec::new();
        };
        if phase3_satisfied(
            &self.kind,
            catalog,
            &self.spec,
            attempt,
            &self.quorum_sites(),
        ) {
            self.decide(attempt)
        } else {
            Vec::new()
        }
    }

    /// Phase-3 ack window expired: finish if the quorum completed,
    /// otherwise Fig. 5 says "start the election protocol" (a fresh
    /// round will re-poll states).
    pub fn on_acks_timer(&mut self, round: u64, catalog: &Catalog) -> Vec<Action> {
        if round != self.round {
            return Vec::new();
        }
        match self.phase {
            TerminationPhase::AwaitingPcAcks | TerminationPhase::AwaitingPaAcks => {
                let actions = self.try_finish(catalog);
                if actions.is_empty() {
                    self.phase = TerminationPhase::Failed;
                    vec![Action::RequestTermination { txn: self.spec.id }]
                } else {
                    actions
                }
            }
            _ => Vec::new(),
        }
    }

    /// A `Decided` relay reached the termination coordinator directly.
    pub fn on_decided(
        &mut self,
        decision: Decision,
        commit_version: Option<Version>,
    ) -> Vec<Action> {
        if matches!(self.phase, TerminationPhase::Done(_)) {
            return Vec::new();
        }
        if let Some(v) = commit_version {
            self.pc_version = Some(v);
        }
        self.decide(decision)
    }
}

/// Canonical state hash for the model checker's visited-set.
///
/// Hashes the attempt round (stale-round filtering depends on it), the
/// phase, the collected state view, the learned PC version, the quorum
/// base, the phase-3 ack set and the attempted direction — every field
/// that steers the rule evaluation. All containers are ordered, so the
/// rendering is canonical.
impl qbc_simnet::Fingerprint for Termination {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(
            format!(
                "{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
                self.round,
                self.phase,
                self.view,
                self.pc_version,
                self.base,
                self.acks,
                self.attempt
            )
            .as_bytes(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_votes::{CatalogBuilder, ItemId};

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .quorums(2, 3)
            .item(ItemId(1), "y")
            .copies_at([SiteId(5), SiteId(6), SiteId(7), SiteId(8)])
            .quorums(2, 3)
            .build()
            .unwrap()
    }

    fn spec() -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(1),
            coordinator: SiteId(1),
            writeset: WriteSet::new([(ItemId(0), 10), (ItemId(1), 20)]),
            participants: (1..=8).map(SiteId).collect(),
            protocol: ProtocolKind::QuorumCommit1,
            parent: None,
        })
    }

    fn msgs_in(actions: &[Action]) -> Vec<&Msg> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast(_, m) => Some(m),
                Action::Send(_, m) => Some(m),
                Action::Reply(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn kickoff_broadcasts_state_req_and_arms_timer() {
        let (t, actions) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            1,
            LocalState::Wait,
            None,
        );
        assert_eq!(t.round(), 1);
        match &actions[0] {
            Action::Broadcast(targets, Msg::StateReq { round: 1, .. }) => {
                assert_eq!(targets.len(), 7, "everyone but self");
                assert!(!targets.contains(&SiteId(2)));
            }
            other => panic!("expected StateReq broadcast, got {other:?}"),
        }
        assert!(matches!(
            actions[1],
            Action::SetTimer(TimerKind::StateCollection { round: 1, .. })
        ));
    }

    #[test]
    fn terminal_report_decides_immediately() {
        let (mut t, _) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            1,
            LocalState::Wait,
            None,
        );
        let actions = t.on_state_rep(
            SiteId(3),
            1,
            LocalState::Committed,
            Some(Version(4)),
            &catalog(),
        );
        assert_eq!(*t.phase(), TerminationPhase::Done(Decision::Commit));
        let msgs = msgs_in(&actions);
        assert!(matches!(
            msgs[0],
            Msg::Commit {
                commit_version: Version(4),
                ..
            }
        ));
    }

    #[test]
    fn example4_g1_runs_abort_round_and_finishes() {
        // G1 = {s2, s3}: abort quorum via r(x)=2. Only s2, s3 reply.
        let cat = catalog();
        let (mut t, _) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            1,
            LocalState::Wait,
            None,
        );
        assert!(t
            .on_state_rep(SiteId(3), 1, LocalState::Wait, None, &cat)
            .is_empty());
        let actions = t.on_state_timer(1, &cat);
        // Phase 2 → AttemptAbort: PREPARE-TO-ABORT to the W sites (s2,s3).
        match &actions[0] {
            Action::Broadcast(targets, Msg::PrepareAbort { .. }) => {
                assert_eq!(
                    targets.iter().copied().collect::<BTreeSet<_>>(),
                    [SiteId(2), SiteId(3)].into()
                );
            }
            other => panic!("expected PrepareAbort, got {other:?}"),
        }
        assert_eq!(*t.phase(), TerminationPhase::AwaitingPaAcks);
        // s2 acks: 1 vote of x < r(x)=2 → not yet.
        assert!(t.on_pa_ack(SiteId(2), &cat).is_empty());
        // s3 acks: 2 votes → abort commanded to all participants.
        let actions = t.on_pa_ack(SiteId(3), &cat);
        assert_eq!(*t.phase(), TerminationPhase::Done(Decision::Abort));
        assert!(matches!(
            actions[0],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
    }

    #[test]
    fn example1_g2_blocks() {
        let cat = catalog();
        let (mut t, _) = Termination::start(
            SiteId(4),
            spec(),
            TerminationKind::Tp1,
            1,
            LocalState::Wait,
            None,
        );
        t.on_state_rep(SiteId(5), 1, LocalState::PreCommit, Some(Version(1)), &cat);
        let actions = t.on_state_timer(1, &cat);
        assert!(matches!(actions[0], Action::DeclareBlocked { .. }));
        assert_eq!(*t.phase(), TerminationPhase::Blocked);
    }

    #[test]
    fn commit_round_uses_pc_version_from_replier() {
        // Full partition with s5 in PC: commit attempt; version must come
        // from s5's report.
        let cat = catalog();
        let (mut t, _) = Termination::start(
            SiteId(1),
            spec(),
            TerminationKind::Tp1,
            2,
            LocalState::Wait,
            None,
        );
        for s in 2..=8u32 {
            let (st, v) = if s == 5 {
                (LocalState::PreCommit, Some(Version(7)))
            } else {
                (LocalState::Wait, None)
            };
            t.on_state_rep(SiteId(s), 2, st, v, &cat);
        }
        // All 8 replied → evaluates immediately (no timer needed).
        assert_eq!(*t.phase(), TerminationPhase::AwaitingPcAcks);
        // Ack from everyone in W; completion at w(x)∀x, which needs
        // s1..s4 (x) minus... s1,s2,s3,s4 hold x (4 votes ≥ 3) and
        // s5 (base) + s6,s7 hold y (3 ≥ 3).
        let mut done = false;
        for s in [1u32, 2, 3, 4, 6, 7] {
            let actions = t.on_pc_ack(SiteId(s), &cat);
            if !actions.is_empty() {
                match &actions[0] {
                    Action::Broadcast(_, Msg::Commit { commit_version, .. }) => {
                        assert_eq!(*commit_version, Version(7));
                        done = true;
                    }
                    other => panic!("unexpected {other:?}"),
                }
                break;
            }
        }
        assert!(done, "commit quorum should have completed");
    }

    #[test]
    fn failed_ack_round_requests_new_round() {
        let cat = catalog();
        let (mut t, _) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            3,
            LocalState::Wait,
            None,
        );
        t.on_state_rep(SiteId(3), 3, LocalState::Wait, None, &cat);
        t.on_state_timer(3, &cat); // → AttemptAbort (r(x) among s2,s3)
                                   // Nobody acks (additional failures); window expires.
        let actions = t.on_acks_timer(3, &cat);
        assert!(matches!(actions[0], Action::RequestTermination { .. }));
        assert_eq!(*t.phase(), TerminationPhase::Failed);
    }

    #[test]
    fn stale_rounds_are_ignored() {
        let cat = catalog();
        let (mut t, _) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            5,
            LocalState::Wait,
            None,
        );
        assert!(t
            .on_state_rep(SiteId(3), 4, LocalState::Committed, None, &cat)
            .is_empty());
        assert!(t.on_state_timer(4, &cat).is_empty());
        assert_eq!(*t.phase(), TerminationPhase::CollectingStates);
    }

    #[test]
    fn decided_relay_short_circuits() {
        let (mut t, _) = Termination::start(
            SiteId(2),
            spec(),
            TerminationKind::Tp1,
            1,
            LocalState::Wait,
            None,
        );
        let actions = t.on_decided(Decision::Commit, Some(Version(3)));
        assert_eq!(*t.phase(), TerminationPhase::Done(Decision::Commit));
        assert!(matches!(
            actions[0],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn skeen_kind_drives_site_vote_rounds() {
        // Skeen [16]: 8 sites, Vc=5, Va=4. Partition of 5 sites with one
        // PC → commit attempt; acks complete at 5 site votes.
        let cat = catalog();
        let sv = crate::types::SiteVotes::uniform((1..=8).map(SiteId), 5, 4);
        let (mut t, _) = Termination::start(
            SiteId(1),
            spec(),
            TerminationKind::SkeenQuorum(sv),
            1,
            LocalState::Wait,
            None,
        );
        for s in 2..=5u32 {
            let (st, v) = if s == 5 {
                (LocalState::PreCommit, Some(Version(2)))
            } else {
                (LocalState::Wait, None)
            };
            t.on_state_rep(SiteId(s), 1, st, v, &cat);
        }
        let actions = t.on_state_timer(1, &cat);
        assert!(matches!(
            actions[0],
            Action::Broadcast(_, Msg::PrepareCommit { .. })
        ));
        // base = {s5}; acks needed: 4 more to reach Vc=5.
        for s in [1u32, 2, 3] {
            assert!(t.on_pc_ack(SiteId(s), &cat).is_empty());
        }
        let actions = t.on_pc_ack(SiteId(4), &cat);
        assert!(matches!(
            actions.first(),
            Some(Action::Broadcast(_, Msg::Commit { .. }))
        ));
    }
}
