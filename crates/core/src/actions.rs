//! Effects emitted by the sans-IO protocol engines.
//!
//! Engines never touch the network, the clock or the disk: they return
//! [`Action`]s which the driver (the `qbc-db` site node, or a unit test)
//! applies. This keeps every protocol rule a pure, exhaustively testable
//! function.

use crate::log::LogRecord;
use crate::messages::Msg;
use crate::types::{Decision, TxnId};
use qbc_simnet::SiteId;
use qbc_votes::Version;

/// Timers requested by engines. Spans are fixed multiples of the network
/// bound `T` (the driver owns the mapping): vote/ack/state collection use
/// `2T` (Figs. 5/8 phase 2–3), the coordinator watchdog `3T` (participant
/// event 6), blocked-retry a longer span chosen by the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// Coordinator collecting votes (`2T`).
    VoteCollection {
        /// Transaction.
        txn: TxnId,
    },
    /// Coordinator collecting PC-ACKs (`2T`).
    AckCollection {
        /// Transaction.
        txn: TxnId,
    },
    /// Participant watchdog: coordinator silent for `3T`.
    CoordinatorWatch {
        /// Transaction.
        txn: TxnId,
    },
    /// Termination coordinator collecting state reports (`2T`).
    StateCollection {
        /// Transaction.
        txn: TxnId,
        /// Termination round.
        round: u64,
    },
    /// Termination coordinator collecting prepare acks (`2T`).
    TerminationAcks {
        /// Transaction.
        txn: TxnId,
        /// Termination round.
        round: u64,
    },
    /// Re-poll a blocked transaction after topology may have changed.
    BlockedRetry {
        /// Transaction.
        txn: TxnId,
    },
    /// Cross-shard coordinator collecting branch votes (long enough for
    /// a full in-shard vote + prepare round per branch; the driver maps
    /// it to a multiple of `2T`).
    XVoteCollection {
        /// Cross-shard transaction.
        txn: TxnId,
    },
    /// Paxos Commit recovery candidate collecting Phase-1b promises
    /// (`2T`).
    Paxos1bCollection {
        /// Transaction.
        txn: TxnId,
        /// Candidate's ballot.
        bal: u64,
    },
    /// Paxos Commit leader collecting Phase-2b acceptances (`2T`).
    Paxos2bCollection {
        /// Transaction.
        txn: TxnId,
        /// Leader's ballot.
        bal: u64,
    },
}

/// An effect requested by a protocol engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Reply to the sender of the input currently being processed.
    Reply(Msg),
    /// Send to a specific site.
    Send(SiteId, Msg),
    /// Send a copy to every listed site (the driver may deliver the
    /// self-addressed copy locally).
    Broadcast(Vec<SiteId>, Msg),
    /// Force-write a log record before any subsequent send is performed.
    Log(LogRecord),
    /// The local participant reached a terminal decision: apply updates
    /// (on commit), release locks, mark the transaction done.
    ApplyAndDecide {
        /// The outcome.
        decision: Decision,
        /// Version to install on written copies (commit only).
        commit_version: Option<Version>,
    },
    /// Arm a timer.
    SetTimer(TimerKind),
    /// The engine wants the termination protocol to run (watchdog fired,
    /// commit coordinator gave up, or a termination round failed and
    /// Fig. 5 says "start the election protocol").
    RequestTermination {
        /// Transaction.
        txn: TxnId,
    },
    /// The termination protocol evaluated its rules and must block
    /// (Fig. 5 phase 2, final branch).
    DeclareBlocked {
        /// Transaction.
        txn: TxnId,
    },
    /// Diagnostic: something happened that the protocol proofs say is
    /// impossible (e.g. a commit command arriving at an aborted site).
    /// Harnesses collect these; correct runs produce none.
    ViolationNote {
        /// Transaction.
        txn: TxnId,
        /// Human-readable description.
        note: &'static str,
    },
}

impl Action {
    /// Convenience for tests: the message if this is a Reply.
    pub fn as_reply(&self) -> Option<&Msg> {
        match self {
            Action::Reply(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_reply_filters() {
        let a = Action::Reply(Msg::PcAck { txn: TxnId(1) });
        assert!(a.as_reply().is_some());
        let b = Action::DeclareBlocked { txn: TxnId(1) };
        assert!(b.as_reply().is_none());
    }
}
