//! Partition states and concurrency sets (Fig. 4, Section 2).
//!
//! When a 3PC commitment procedure is interrupted by failures, the
//! *partition state* of a transaction in a partition is the set of local
//! states of its active participants there. Fig. 4 lists the mutually
//! exclusive, collectively exhaustive cases PS1–PS6 and the paper argues
//! from their *concurrency sets* (which partition states can coexist)
//! that no termination protocol can terminate every partition holding a
//! per-item quorum — the impossibility result motivating TP1/TP2.
//!
//! This module classifies observed partitions and records the paper's
//! claimed concurrency relations; experiment E5 re-derives the relation
//! by exhaustive enumeration of interrupted runs and checks it against
//! these claims.

use crate::states::LocalState;
use std::fmt;

/// The partition states of Fig. 4 (3PC local-state vocabulary; PA does
/// not occur because the termination protocol has not yet run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Ps {
    /// PS1: at least one participant in `q`, none in `A`.
    Ps1,
    /// PS2: all participants in `W`.
    Ps2,
    /// PS3: at least one participant in `A`.
    Ps3,
    /// PS4: some participants in `PC`, some in `W`.
    Ps4,
    /// PS5: all participants in `PC`.
    Ps5,
    /// PS6: at least one participant in `C`.
    Ps6,
}

impl Ps {
    /// All partition states.
    pub const ALL: [Ps; 6] = [Ps::Ps1, Ps::Ps2, Ps::Ps3, Ps::Ps4, Ps::Ps5, Ps::Ps6];
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            Ps::Ps1 => 1,
            Ps::Ps2 => 2,
            Ps::Ps3 => 3,
            Ps::Ps4 => 4,
            Ps::Ps5 => 5,
            Ps::Ps6 => 6,
        };
        write!(f, "PS{n}")
    }
}

/// Classifies the local states of a partition's active participants into
/// Fig. 4's vocabulary.
///
/// Returns `None` when the input is empty, contains `PA` (beyond the
/// Fig. 4 vocabulary), or contains both `A` and `C` (an atomicity
/// violation, impossible in legal runs).
pub fn classify(states: impl IntoIterator<Item = LocalState>) -> Option<Ps> {
    use LocalState::*;
    let mut any = false;
    let (mut has_q, mut has_w, mut has_pc, mut has_c, mut has_a) =
        (false, false, false, false, false);
    for s in states {
        any = true;
        match s {
            Initial => has_q = true,
            Wait => has_w = true,
            PreCommit => has_pc = true,
            PreAbort => return None,
            Committed => has_c = true,
            Aborted => has_a = true,
        }
    }
    if !any || (has_a && has_c) {
        return None;
    }
    // Priority encoding of Fig. 4's definitions.
    Some(if has_a {
        Ps::Ps3
    } else if has_c {
        Ps::Ps6
    } else if has_q {
        Ps::Ps1
    } else if has_pc && has_w {
        Ps::Ps4
    } else if has_pc {
        Ps::Ps5
    } else {
        Ps::Ps2
    })
}

/// The concurrency-set relations the paper states in Section 2 (used as
/// ground truth by experiment E5):
///
/// * `PS3 ∈ C(PS1)` and `PS3 ∈ C(PS2)` — hence PS1/PS2 may only block or
///   abort;
/// * `PS6 ∈ C(PS5)` — hence PS5 may only block or commit;
/// * `PS2 ∈ C(PS5)` and `PS5 ∈ C(PS2)` — the fatal pair: one partition
///   that can only abort may coexist with one that can only commit;
/// * `PS2 ∈ C(PS4)` and `PS5 ∈ C(PS4)` — PS4 must stay consistent with
///   both.
pub fn paper_concurrency_claims() -> &'static [(Ps, Ps)] {
    &[
        (Ps::Ps1, Ps::Ps3),
        (Ps::Ps2, Ps::Ps3),
        (Ps::Ps5, Ps::Ps6),
        (Ps::Ps2, Ps::Ps5),
        (Ps::Ps5, Ps::Ps2),
        (Ps::Ps4, Ps::Ps2),
        (Ps::Ps4, Ps::Ps5),
    ]
}

/// The forced outcome of a partition state under the paper's Rule 1/2
/// analysis (Section 2): what any correct termination protocol may do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForcedOutcome {
    /// Must abort (a concurrent partition may already have aborted).
    AbortOrBlock,
    /// Must commit (a concurrent partition may already have committed).
    CommitOrBlock,
    /// Must terminate consistently with both PS2- and PS5-compatible
    /// partitions: effectively block unless a quorum rules it out.
    ConsistentWithBoth,
    /// Already decided.
    Decided(crate::types::Decision),
}

/// The paper's per-state analysis of what a correct termination protocol
/// may do (Section 2).
pub fn forced_outcome(ps: Ps) -> ForcedOutcome {
    match ps {
        Ps::Ps1 | Ps::Ps2 => ForcedOutcome::AbortOrBlock,
        Ps::Ps3 => ForcedOutcome::Decided(crate::types::Decision::Abort),
        Ps::Ps4 => ForcedOutcome::ConsistentWithBoth,
        Ps::Ps5 => ForcedOutcome::CommitOrBlock,
        Ps::Ps6 => ForcedOutcome::Decided(crate::types::Decision::Commit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LocalState::*;

    #[test]
    fn classification_matches_fig4_definitions() {
        assert_eq!(classify([Initial, Wait]), Some(Ps::Ps1));
        assert_eq!(classify([Wait, Wait, Wait]), Some(Ps::Ps2));
        assert_eq!(classify([Aborted, Wait]), Some(Ps::Ps3));
        assert_eq!(classify([Initial, Aborted]), Some(Ps::Ps3), "A beats q");
        assert_eq!(classify([PreCommit, Wait]), Some(Ps::Ps4));
        assert_eq!(classify([PreCommit, PreCommit]), Some(Ps::Ps5));
        assert_eq!(classify([Committed, Wait, PreCommit]), Some(Ps::Ps6));
    }

    #[test]
    fn singletons() {
        assert_eq!(classify([Wait]), Some(Ps::Ps2));
        assert_eq!(classify([PreCommit]), Some(Ps::Ps5));
        assert_eq!(classify([Initial]), Some(Ps::Ps1));
        assert_eq!(classify([Committed]), Some(Ps::Ps6));
        assert_eq!(classify([Aborted]), Some(Ps::Ps3));
    }

    #[test]
    fn out_of_vocabulary_inputs_rejected() {
        assert_eq!(classify([]), None);
        assert_eq!(classify([PreAbort, Wait]), None);
        assert_eq!(classify([Committed, Aborted]), None, "atomicity violation");
    }

    #[test]
    fn example1_partitions_classify_as_the_paper_says() {
        // Fig. 3: G1 = {s2:W, s3:W} (s1 crashed), G2 = {s4:W, s5:PC},
        // G3 = {s6:W, s7:W, s8:W}.
        assert_eq!(classify([Wait, Wait]), Some(Ps::Ps2));
        assert_eq!(classify([Wait, PreCommit]), Some(Ps::Ps4));
        assert_eq!(classify([Wait, Wait, Wait]), Some(Ps::Ps2));
    }

    #[test]
    fn forced_outcomes_match_section2() {
        use crate::types::Decision;
        assert_eq!(
            forced_outcome(Ps::Ps3),
            ForcedOutcome::Decided(Decision::Abort)
        );
        assert_eq!(
            forced_outcome(Ps::Ps6),
            ForcedOutcome::Decided(Decision::Commit)
        );
        assert_eq!(forced_outcome(Ps::Ps1), ForcedOutcome::AbortOrBlock);
        assert_eq!(forced_outcome(Ps::Ps2), ForcedOutcome::AbortOrBlock);
        assert_eq!(forced_outcome(Ps::Ps5), ForcedOutcome::CommitOrBlock);
        assert_eq!(forced_outcome(Ps::Ps4), ForcedOutcome::ConsistentWithBoth);
    }

    #[test]
    fn claims_are_within_vocabulary() {
        for (a, b) in paper_concurrency_claims() {
            assert!(Ps::ALL.contains(a));
            assert!(Ps::ALL.contains(b));
        }
    }
}
