//! Quorum rules of the termination protocols (Figs. 5 and 8).
//!
//! Phase 2 of a termination attempt evaluates the collected local states
//! against the rules of the configured protocol, in the paper's order:
//!
//! 1. immediate commit,
//! 2. immediate abort,
//! 3. commit quorum possible → PREPARE-TO-COMMIT round,
//! 4. abort quorum possible → PREPARE-TO-ABORT round,
//! 5. block.
//!
//! TP1 and TP2 count **per-item copy votes** over `W(TR)` against the
//! replica-control quorums `w(x)` / `r(x)` — the paper's central idea of
//! aligning termination with the partition-processing strategy. The
//! baselines count differently: Skeen `[16]` counts *site* votes against
//! `Vc`/`Va`; the 3PC termination protocol only looks for committable
//! states (safe for site failures, unsafe under partitions — Example 2);
//! 2PC cooperative termination can only adopt a known decision.

use crate::states::LocalState;
use crate::types::{Decision, SiteVotes, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::Catalog;
use std::collections::{BTreeMap, BTreeSet};

/// Which termination rule set a transaction uses.
#[derive(Clone, Debug, PartialEq)]
pub enum TerminationKind {
    /// 2PC cooperative termination: adopt any known decision; abort when
    /// someone has not voted; otherwise block.
    TwoPcCooperative,
    /// The 3PC termination protocol (site failures only): commit iff a
    /// committable state exists, else abort. Never blocks — and is
    /// therefore inconsistent under partitioning (Example 2).
    ThreePcSiteFailure,
    /// Skeen's quorum protocol `[16]`: site-vote quorums `Vc`/`Va`.
    SkeenQuorum(SiteVotes),
    /// The paper's Termination Protocol 1 (Fig. 5).
    Tp1,
    /// The paper's Termination Protocol 2 (Fig. 8).
    Tp2,
}

impl TerminationKind {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            TerminationKind::TwoPcCooperative => "2PC-coop",
            TerminationKind::ThreePcSiteFailure => "3PC-TP",
            TerminationKind::SkeenQuorum(_) => "Skeen-TP",
            TerminationKind::Tp1 => "TP1",
            TerminationKind::Tp2 => "TP2",
        }
    }
}

/// The outcome of evaluating phase-2 rules over collected states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase2Outcome {
    /// Rule 1/2: decide now, command everyone.
    Immediate(Decision),
    /// Rule 3: try to form a commit quorum (PREPARE-TO-COMMIT round).
    AttemptCommit,
    /// Rule 4: try to form an abort quorum (PREPARE-TO-ABORT round).
    AttemptAbort,
    /// Rule 5: block.
    Block,
}

/// A view of the local states collected from reachable participants
/// (including the termination coordinator's own state).
#[derive(Clone, Debug, Default)]
pub struct StateView {
    states: BTreeMap<SiteId, LocalState>,
}

impl StateView {
    /// Empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a view from `(site, state)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (SiteId, LocalState)>) -> Self {
        StateView {
            states: pairs.into_iter().collect(),
        }
    }

    /// Records a site's reported state (later reports win).
    pub fn record(&mut self, site: SiteId, state: LocalState) {
        self.states.insert(site, state);
    }

    /// Number of collected reports.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no reports were collected.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The collected state of a site.
    pub fn state_of(&self, site: SiteId) -> Option<LocalState> {
        self.states.get(&site).copied()
    }

    /// Iterate over reports.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, LocalState)> + '_ {
        self.states.iter().map(|(&s, &st)| (s, st))
    }

    /// True when any reported state satisfies the predicate.
    pub fn any(&self, f: impl Fn(LocalState) -> bool) -> bool {
        self.states.values().any(|&s| f(s))
    }

    /// Sites whose reported state satisfies the predicate.
    pub fn sites_where(&self, f: impl Fn(LocalState) -> bool) -> BTreeSet<SiteId> {
        self.states
            .iter()
            .filter(|(_, &s)| f(s))
            .map(|(&site, _)| site)
            .collect()
    }
}

/// Sum of copy votes of `item` held by `sites`.
fn item_votes(catalog: &Catalog, item: qbc_votes::ItemId, sites: &BTreeSet<SiteId>) -> u32 {
    catalog
        .item(item)
        .map(|spec| spec.votes_among(sites))
        .unwrap_or(0)
}

/// `∀x ∈ W(TR): votes(x, sites) ≥ w(x)`
fn write_quorum_every_item(catalog: &Catalog, spec: &TxnSpec, sites: &BTreeSet<SiteId>) -> bool {
    spec.writeset.items().all(|x| {
        catalog
            .item(x)
            .map(|i| item_votes(catalog, x, sites) >= i.write_quorum)
            .unwrap_or(false)
    })
}

/// `∃x ∈ W(TR): votes(x, sites) ≥ r(x)`
fn read_quorum_some_item(catalog: &Catalog, spec: &TxnSpec, sites: &BTreeSet<SiteId>) -> bool {
    spec.writeset.items().any(|x| {
        catalog
            .item(x)
            .map(|i| item_votes(catalog, x, sites) >= i.read_quorum)
            .unwrap_or(false)
    })
}

/// `∃x ∈ W(TR): votes(x, sites) ≥ w(x)` is never needed;
/// `∀x ∈ W(TR): votes(x, sites) ≥ r(x)` likewise — the four rule sets
/// only combine the two predicates above with PC/PA filters.
///
/// Evaluates phase 2 of the termination protocol (the decision table of
/// Fig. 5 / Fig. 8, or the baseline equivalents).
pub fn phase2(
    kind: &TerminationKind,
    catalog: &Catalog,
    spec: &TxnSpec,
    view: &StateView,
) -> Phase2Outcome {
    use LocalState::*;
    use Phase2Outcome::*;
    let has = |s: LocalState| view.any(|x| x == s);
    match kind {
        TerminationKind::TwoPcCooperative => {
            if has(Committed) {
                Immediate(Decision::Commit)
            } else if has(Aborted) || has(Initial) {
                // A site that has not voted can still veto: abort is safe.
                Immediate(Decision::Abort)
            } else {
                // All reachable sites voted yes and none knows the
                // decision: 2PC's classic blocking window.
                Block
            }
        }
        TerminationKind::ThreePcSiteFailure => {
            // Example 2: "if there exists a site in PC state or commit
            // state, then the transaction should be committed; else the
            // transaction should be aborted."
            if has(Committed) || has(PreCommit) {
                Immediate(Decision::Commit)
            } else {
                Immediate(Decision::Abort)
            }
        }
        TerminationKind::SkeenQuorum(site_votes) => {
            if has(Committed) {
                return Immediate(Decision::Commit);
            }
            if has(Aborted) || has(Initial) {
                return Immediate(Decision::Abort);
            }
            let non_pa = view.sites_where(|s| s != PreAbort);
            let non_pc = view.sites_where(|s| s != PreCommit);
            if has(PreCommit) && site_votes.votes_among(&non_pa) >= site_votes.commit_quorum {
                AttemptCommit
            } else if site_votes.votes_among(&non_pc) >= site_votes.abort_quorum {
                AttemptAbort
            } else {
                Block
            }
        }
        TerminationKind::Tp1 => {
            let pc = view.sites_where(|s| s == PreCommit);
            let pa = view.sites_where(|s| s == PreAbort);
            let non_pa = view.sites_where(|s| s != PreAbort);
            let non_pc = view.sites_where(|s| s != PreCommit);
            // Rule 1: ≥1 C, or w(x) votes for EVERY x from PC sites.
            if has(Committed) || write_quorum_every_item(catalog, spec, &pc) {
                Immediate(Decision::Commit)
            }
            // Rule 2: ≥1 A or initial, or r(x) votes for SOME x from PA.
            else if has(Aborted) || has(Initial) || read_quorum_some_item(catalog, spec, &pa) {
                Immediate(Decision::Abort)
            }
            // Rule 3: ∃PC and w(x) votes ∀x from non-PA sites.
            else if has(PreCommit) && write_quorum_every_item(catalog, spec, &non_pa) {
                AttemptCommit
            }
            // Rule 4: r(x) votes for some x from non-PC sites.
            else if read_quorum_some_item(catalog, spec, &non_pc) {
                AttemptAbort
            } else {
                Block
            }
        }
        TerminationKind::Tp2 => {
            let pc = view.sites_where(|s| s == PreCommit);
            let pa = view.sites_where(|s| s == PreAbort);
            let non_pa = view.sites_where(|s| s != PreAbort);
            let non_pc = view.sites_where(|s| s != PreCommit);
            // Rule 1: ≥1 C, or r(x) votes for SOME x from PC sites.
            if has(Committed) || read_quorum_some_item(catalog, spec, &pc) {
                Immediate(Decision::Commit)
            }
            // Rule 2: ≥1 A/initial, or w(x) votes for EVERY x from PA.
            else if has(Aborted) || has(Initial) || write_quorum_every_item(catalog, spec, &pa) {
                Immediate(Decision::Abort)
            }
            // Rule 3: ∃PC and r(x) votes for some x from non-PA sites.
            else if has(PreCommit) && read_quorum_some_item(catalog, spec, &non_pa) {
                AttemptCommit
            }
            // Rule 4: w(x) votes for every x from non-PC sites.
            else if write_quorum_every_item(catalog, spec, &non_pc) {
                AttemptAbort
            } else {
                Block
            }
        }
    }
}

/// Phase-3 success test: do the phase-1 repliers already in the prepared
/// state plus the prepare-round ackers constitute the required quorum?
///
/// `sites` = base (PC repliers for commit / PA repliers for abort)
/// ∪ ackers. `attempt` is the direction being driven.
pub fn phase3_satisfied(
    kind: &TerminationKind,
    catalog: &Catalog,
    spec: &TxnSpec,
    attempt: Decision,
    sites: &BTreeSet<SiteId>,
) -> bool {
    match kind {
        // These kinds never run prepare rounds.
        TerminationKind::TwoPcCooperative | TerminationKind::ThreePcSiteFailure => false,
        TerminationKind::SkeenQuorum(site_votes) => match attempt {
            Decision::Commit => site_votes.votes_among(sites) >= site_votes.commit_quorum,
            Decision::Abort => site_votes.votes_among(sites) >= site_votes.abort_quorum,
        },
        TerminationKind::Tp1 => match attempt {
            // w(x) votes for every item from {PC repliers} ∪ {PC-ackers}.
            Decision::Commit => write_quorum_every_item(catalog, spec, sites),
            // r(x) votes for some item from {PA repliers} ∪ {PA-ackers}.
            Decision::Abort => read_quorum_some_item(catalog, spec, sites),
        },
        TerminationKind::Tp2 => match attempt {
            Decision::Commit => read_quorum_some_item(catalog, spec, sites),
            Decision::Abort => write_quorum_every_item(catalog, spec, sites),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, TxnId, WriteSet};
    use qbc_votes::{CatalogBuilder, ItemId};

    /// The paper's Example 1/4 configuration: x at s1–s4, y at s5–s8,
    /// unit votes, r = 2, w = 3.
    fn example_catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .quorums(2, 3)
            .item(ItemId(1), "y")
            .copies_at([SiteId(5), SiteId(6), SiteId(7), SiteId(8)])
            .quorums(2, 3)
            .build()
            .unwrap()
    }

    fn example_spec() -> TxnSpec {
        TxnSpec {
            id: TxnId(1),
            coordinator: SiteId(1),
            writeset: WriteSet::new([(ItemId(0), 1), (ItemId(1), 2)]),
            participants: (1..=8).map(SiteId).collect(),
            protocol: ProtocolKind::QuorumCommit1,
            parent: None,
        }
    }

    fn view(pairs: &[(u32, LocalState)]) -> StateView {
        StateView::from_pairs(pairs.iter().map(|&(s, st)| (SiteId(s), st)))
    }

    use LocalState::*;

    #[test]
    fn example4_g1_forms_abort_quorum_under_tp1() {
        // G1 = {s2, s3}, both in W: 2 votes of x ≥ r(x)=2 from non-PC
        // sites → abort quorum possible (rule 4). This is the paper's
        // Example 4 claim for partition G1.
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[(2, Wait), (3, Wait)]),
        );
        assert_eq!(out, Phase2Outcome::AttemptAbort);
    }

    #[test]
    fn example4_g3_forms_abort_quorum_under_tp1() {
        // G3 = {s6, s7, s8} in W: 3 votes of y ≥ r(y)=2 → abort quorum.
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[(6, Wait), (7, Wait), (8, Wait)]),
        );
        assert_eq!(out, Phase2Outcome::AttemptAbort);
    }

    #[test]
    fn example1_g2_blocks_under_tp1() {
        // G2 = {s4, s5}: one copy of x (1 < r=2), one of y (1 < 2, and s5
        // is in PC so its vote doesn't count toward abort) → block.
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[(4, Wait), (5, PreCommit)]),
        );
        assert_eq!(out, Phase2Outcome::Block);
    }

    #[test]
    fn example1_all_partitions_block_under_skeen() {
        // Skeen [16] with Vc = 5, Va = 4 over 8 unit-vote sites: all
        // three partitions of Fig. 3 block (the paper's Example 1).
        let sv = SiteVotes::uniform((1..=8).map(SiteId), 5, 4);
        let kind = TerminationKind::SkeenQuorum(sv);
        let cat = example_catalog();
        let spec = example_spec();
        let g1 = view(&[(2, Wait), (3, Wait)]);
        let g2 = view(&[(4, Wait), (5, PreCommit)]);
        let g3 = view(&[(6, Wait), (7, Wait), (8, Wait)]);
        assert_eq!(phase2(&kind, &cat, &spec, &g1), Phase2Outcome::Block);
        assert_eq!(phase2(&kind, &cat, &spec, &g2), Phase2Outcome::Block);
        assert_eq!(phase2(&kind, &cat, &spec, &g3), Phase2Outcome::Block);
    }

    #[test]
    fn example2_three_pc_tp_terminates_inconsistently() {
        // 3PC termination: G2 (contains s5 in PC) commits, G1 and G3
        // (all W) abort — the inconsistency of Example 2.
        let kind = TerminationKind::ThreePcSiteFailure;
        let cat = example_catalog();
        let spec = example_spec();
        assert_eq!(
            phase2(&kind, &cat, &spec, &view(&[(2, Wait), (3, Wait)])),
            Phase2Outcome::Immediate(Decision::Abort)
        );
        assert_eq!(
            phase2(&kind, &cat, &spec, &view(&[(4, Wait), (5, PreCommit)])),
            Phase2Outcome::Immediate(Decision::Commit)
        );
        assert_eq!(
            phase2(
                &kind,
                &cat,
                &spec,
                &view(&[(6, Wait), (7, Wait), (8, Wait)])
            ),
            Phase2Outcome::Immediate(Decision::Abort)
        );
    }

    #[test]
    fn tp1_immediate_commit_via_pc_write_quorums() {
        // PC sites s2,s3,s4 give 3 = w(x) votes of x; s5,s6,s7 give
        // 3 = w(y) votes of y → rule 1 immediate commit.
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[
                (2, PreCommit),
                (3, PreCommit),
                (4, PreCommit),
                (5, PreCommit),
                (6, PreCommit),
                (7, PreCommit),
            ]),
        );
        assert_eq!(out, Phase2Outcome::Immediate(Decision::Commit));
    }

    #[test]
    fn tp1_immediate_abort_on_initial_state() {
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[(2, Initial), (3, Wait)]),
        );
        assert_eq!(out, Phase2Outcome::Immediate(Decision::Abort));
    }

    #[test]
    fn tp1_immediate_abort_via_pa_read_quorum() {
        // PA sites s2,s3 hold 2 = r(x) votes of x → immediate abort.
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&[(2, PreAbort), (3, PreAbort), (4, Wait)]),
        );
        assert_eq!(out, Phase2Outcome::Immediate(Decision::Abort));
    }

    #[test]
    fn tp1_commit_quorum_needs_a_pc_witness() {
        // All eight sites in W: write quorums present among non-PA sites,
        // but no PC witness → rule 3 does not fire; rule 4 (abort) does.
        let all_w: Vec<(u32, LocalState)> = (1..=8).map(|s| (s, Wait)).collect();
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&all_w),
        );
        assert_eq!(out, Phase2Outcome::AttemptAbort);
    }

    #[test]
    fn tp1_commit_quorum_with_pc_and_full_write_votes() {
        // s5 in PC plus everyone else in W: non-PA votes cover w(x) and
        // w(y) → attempt commit (rule 3 precedes rule 4).
        let mut pairs: Vec<(u32, LocalState)> = (1..=8).map(|s| (s, Wait)).collect();
        pairs[4] = (5, PreCommit);
        let out = phase2(
            &TerminationKind::Tp1,
            &example_catalog(),
            &example_spec(),
            &view(&pairs),
        );
        assert_eq!(out, Phase2Outcome::AttemptCommit);
    }

    #[test]
    fn tp2_commit_quorum_needs_only_r_votes() {
        // TP2 rule 3: ∃PC and r(x) votes for some x from non-PA sites.
        // G2 = {s4 (W), s5 (PC)}: s4 holds 1 vote of x < r(x)=2; s5 holds
        // 1 vote of y... wait s4 holds x4, s5 holds y5: votes(x,{s4,s5})=1,
        // votes(y,{s4,s5})=1, both < 2 → still blocked in TP2.
        let out = phase2(
            &TerminationKind::Tp2,
            &example_catalog(),
            &example_spec(),
            &view(&[(4, Wait), (5, PreCommit)]),
        );
        assert_eq!(out, Phase2Outcome::Block);
    }

    #[test]
    fn tp2_commit_beats_tp1_with_partial_votes() {
        // {s4 (W), s5 (PC), s6 (W)}: votes(y, non-PA) = 2 ≥ r(y) → TP2
        // attempts commit, while TP1 (needs w ∀x) attempts... votes of x
        // among non-PC = s4,s6 → 1 < r(x)=2; votes(y, non-PC)= s6 =1 <2;
        // so TP1 blocks but TP2 commits: the availability gap.
        let pairs = [(4, Wait), (5, PreCommit), (6, Wait)];
        let cat = example_catalog();
        let spec = example_spec();
        assert_eq!(
            phase2(&TerminationKind::Tp2, &cat, &spec, &view(&pairs)),
            Phase2Outcome::AttemptCommit
        );
        assert_eq!(
            phase2(&TerminationKind::Tp1, &cat, &spec, &view(&pairs)),
            Phase2Outcome::Block
        );
    }

    #[test]
    fn tp2_abort_needs_write_quorum_every_item() {
        // TP2 rule 4 requires w(x) votes ∀x from non-PC: G3 = {s6,s7,s8}
        // has 3 = w(y) votes of y but 0 votes of x → no abort; blocks.
        let out = phase2(
            &TerminationKind::Tp2,
            &example_catalog(),
            &example_spec(),
            &view(&[(6, Wait), (7, Wait), (8, Wait)]),
        );
        assert_eq!(out, Phase2Outcome::Block);
    }

    #[test]
    fn two_pc_cooperative_adopts_known_decisions() {
        let kind = TerminationKind::TwoPcCooperative;
        let cat = example_catalog();
        let spec = example_spec();
        assert_eq!(
            phase2(&kind, &cat, &spec, &view(&[(2, Committed), (3, Wait)])),
            Phase2Outcome::Immediate(Decision::Commit)
        );
        assert_eq!(
            phase2(&kind, &cat, &spec, &view(&[(2, Initial), (3, Wait)])),
            Phase2Outcome::Immediate(Decision::Abort)
        );
        assert_eq!(
            phase2(&kind, &cat, &spec, &view(&[(2, Wait), (3, Wait)])),
            Phase2Outcome::Block
        );
    }

    #[test]
    fn phase3_tp1_commit_requires_w_votes_every_item() {
        let cat = example_catalog();
        let spec = example_spec();
        // s2,s3,s4 cover w(x)=3 but y has no votes → not satisfied.
        let partial: BTreeSet<SiteId> = [SiteId(2), SiteId(3), SiteId(4)].into();
        assert!(!phase3_satisfied(
            &TerminationKind::Tp1,
            &cat,
            &spec,
            Decision::Commit,
            &partial
        ));
        let full: BTreeSet<SiteId> = [2, 3, 4, 5, 6, 7].into_iter().map(SiteId).collect();
        assert!(phase3_satisfied(
            &TerminationKind::Tp1,
            &cat,
            &spec,
            Decision::Commit,
            &full
        ));
    }

    #[test]
    fn phase3_tp1_abort_requires_r_votes_some_item() {
        let cat = example_catalog();
        let spec = example_spec();
        let g1: BTreeSet<SiteId> = [SiteId(2), SiteId(3)].into();
        assert!(phase3_satisfied(
            &TerminationKind::Tp1,
            &cat,
            &spec,
            Decision::Abort,
            &g1
        ));
        let nothing: BTreeSet<SiteId> = [SiteId(4)].into();
        assert!(!phase3_satisfied(
            &TerminationKind::Tp1,
            &cat,
            &spec,
            Decision::Abort,
            &nothing
        ));
    }

    #[test]
    fn phase3_skeen_counts_site_votes() {
        let sv = SiteVotes::uniform((1..=8).map(SiteId), 5, 4);
        let kind = TerminationKind::SkeenQuorum(sv);
        let cat = example_catalog();
        let spec = example_spec();
        let five: BTreeSet<SiteId> = (1..=5).map(SiteId).collect();
        assert!(phase3_satisfied(
            &kind,
            &cat,
            &spec,
            Decision::Commit,
            &five
        ));
        let four: BTreeSet<SiteId> = (1..=4).map(SiteId).collect();
        assert!(!phase3_satisfied(
            &kind,
            &cat,
            &spec,
            Decision::Commit,
            &four
        ));
        assert!(phase3_satisfied(&kind, &cat, &spec, Decision::Abort, &four));
    }

    #[test]
    fn commit_and_abort_quorums_cannot_coexist_tp1() {
        // Structural safety: if one partition can attempt commit, no
        // disjoint partition can attempt abort. Exhaustive over all
        // 2-partitions of the 8 sites with s5 in PC in the commit side.
        let cat = example_catalog();
        let spec = example_spec();
        let sites: Vec<u32> = (1..=8).collect();
        for mask in 0u32..(1 << 8) {
            let left: Vec<u32> = sites
                .iter()
                .copied()
                .filter(|i| mask & (1 << (i - 1)) != 0)
                .collect();
            let right: Vec<u32> = sites
                .iter()
                .copied()
                .filter(|i| mask & (1 << (i - 1)) == 0)
                .collect();
            // Left states: W except s5 in PC (if present).
            let lview = view(
                &left
                    .iter()
                    .map(|&s| (s, if s == 5 { PreCommit } else { Wait }))
                    .collect::<Vec<_>>(),
            );
            let rview = view(&right.iter().map(|&s| (s, Wait)).collect::<Vec<_>>());
            let l = phase2(&TerminationKind::Tp1, &cat, &spec, &lview);
            let r = phase2(&TerminationKind::Tp1, &cat, &spec, &rview);
            // The dangerous pair: one side can complete a commit while
            // the other completes an abort.
            let l_commit = matches!(
                l,
                Phase2Outcome::AttemptCommit | Phase2Outcome::Immediate(Decision::Commit)
            );
            let r_abort = matches!(
                r,
                Phase2Outcome::AttemptAbort | Phase2Outcome::Immediate(Decision::Abort)
            );
            if l_commit && r_abort {
                // Commit needs w(x) non-PA votes ∀x on the left; abort
                // needs r(x) non-PC votes ∃x on the right; disjointness +
                // r+w>v makes both impossible. (Immediate aborts via
                // q/A states don't arise here: all states are W/PC.)
                panic!("commit/abort quorums coexist for mask {mask:08b}");
            }
        }
    }
}
