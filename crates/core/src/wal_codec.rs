//! On-disk encoding of [`LogRecord`] for the file-backed WAL.
//!
//! The vendored `serde` is a compile-only marker (no wire format), so
//! the durable encoding is written by hand against the primitives in
//! [`qbc_storage::codec`]: little-endian fixed-width integers, a
//! one-byte variant tag per record and per enum, `u32`-count-prefixed
//! sequences, `0/1`-tagged options. `docs/wal-format.md` documents the
//! layout field by field.
//!
//! Framing, checksums and torn-tail handling live below this layer (in
//! `qbc_storage::FileWal`): [`WalCodec::decode`] only ever sees whole,
//! checksum-verified payloads, so a decode failure is treated as
//! corruption by the WAL, not repaired.

use crate::log::{LogRecord, RetiredOutcome, XRetiredOutcome};
use crate::types::{Decision, ProtocolKind, TxnId, TxnSpec, WriteSet};
use qbc_simnet::SiteId;
use qbc_storage::codec::{put_i64, put_u32, put_u64, put_u8, Dec, WalCodec};
use qbc_votes::{ItemId, Version};
use std::sync::Arc;

// Variant tags. Appending new record kinds is forwards-compatible;
// renumbering is not (old logs would mis-decode) — see wal-format.md.
const TAG_COORDINATOR_START: u8 = 0;
const TAG_VOTED: u8 = 1;
const TAG_VOTED_NO: u8 = 2;
const TAG_PRE_COMMIT: u8 = 3;
const TAG_PRE_ABORT: u8 = 4;
const TAG_DECIDED: u8 = 5;
const TAG_X_START: u8 = 6;
const TAG_X_DECISION: u8 = 7;
const TAG_CHECKPOINT: u8 = 8;
const TAG_PAXOS_PROMISE: u8 = 9;
const TAG_PAXOS_ACCEPT: u8 = 10;

/// Pre-allocation bound for a count field read from the payload: every
/// element encodes to at least one byte, so a count exceeding the bytes
/// left is already unsatisfiable — let the element reads return `None`
/// instead of trusting a skewed count with a gigabyte reservation.
fn cap(n: u32, d: &Dec<'_>) -> usize {
    (n as usize).min(d.remaining())
}

fn put_decision(buf: &mut Vec<u8>, d: Decision) {
    put_u8(buf, matches!(d, Decision::Abort) as u8);
}

fn get_decision(d: &mut Dec<'_>) -> Option<Decision> {
    match d.u8()? {
        0 => Some(Decision::Commit),
        1 => Some(Decision::Abort),
        _ => None,
    }
}

fn put_opt_version(buf: &mut Vec<u8>, v: Option<Version>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v.0);
        }
    }
}

fn get_opt_version(d: &mut Dec<'_>) -> Option<Option<Version>> {
    match d.u8()? {
        0 => Some(None),
        1 => Some(Some(Version(d.u64()?))),
        _ => None,
    }
}

fn put_protocol(buf: &mut Vec<u8>, p: ProtocolKind) {
    let tag = match p {
        ProtocolKind::TwoPhase => 0,
        ProtocolKind::ThreePhase => 1,
        ProtocolKind::SkeenQuorum => 2,
        ProtocolKind::QuorumCommit1 => 3,
        ProtocolKind::QuorumCommit2 => 4,
        ProtocolKind::PaxosCommit => 5,
    };
    put_u8(buf, tag);
}

fn get_protocol(d: &mut Dec<'_>) -> Option<ProtocolKind> {
    Some(match d.u8()? {
        0 => ProtocolKind::TwoPhase,
        1 => ProtocolKind::ThreePhase,
        2 => ProtocolKind::SkeenQuorum,
        3 => ProtocolKind::QuorumCommit1,
        4 => ProtocolKind::QuorumCommit2,
        5 => ProtocolKind::PaxosCommit,
        _ => return None,
    })
}

fn put_spec(buf: &mut Vec<u8>, spec: &TxnSpec) {
    put_u64(buf, spec.id.0);
    put_u32(buf, spec.coordinator.0);
    put_u32(buf, spec.writeset.updates.len() as u32);
    for (item, value) in &spec.writeset.updates {
        put_u32(buf, item.0);
        put_i64(buf, *value);
    }
    put_u32(buf, spec.participants.len() as u32);
    for site in &spec.participants {
        put_u32(buf, site.0);
    }
    put_protocol(buf, spec.protocol);
    match spec.parent {
        None => put_u8(buf, 0),
        Some(p) => {
            put_u8(buf, 1);
            put_u32(buf, p.0);
        }
    }
}

fn get_spec(d: &mut Dec<'_>) -> Option<Arc<TxnSpec>> {
    let id = TxnId(d.u64()?);
    let coordinator = SiteId(d.u32()?);
    let n = d.u32()?;
    let mut updates = std::collections::BTreeMap::new();
    for _ in 0..n {
        let item = ItemId(d.u32()?);
        let value = d.i64()?;
        updates.insert(item, value);
    }
    let n = d.u32()?;
    let mut participants = std::collections::BTreeSet::new();
    for _ in 0..n {
        participants.insert(SiteId(d.u32()?));
    }
    let protocol = get_protocol(d)?;
    let parent = match d.u8()? {
        0 => None,
        1 => Some(SiteId(d.u32()?)),
        _ => return None,
    };
    Some(Arc::new(TxnSpec {
        id,
        coordinator,
        writeset: WriteSet { updates },
        participants,
        protocol,
        parent,
    }))
}

fn opt_version_len(v: Option<Version>) -> usize {
    match v {
        None => 1,
        Some(_) => 9,
    }
}

fn spec_len(spec: &TxnSpec) -> usize {
    8 + 4
        + (4 + 12 * spec.writeset.updates.len())
        + (4 + 4 * spec.participants.len())
        + 1
        + match spec.parent {
            None => 1,
            Some(_) => 5,
        }
}

/// The exact on-disk size of a record's encoding, without encoding it.
/// Drives the bytes-since-checkpoint trigger: the node accumulates
/// this per appended record instead of paying an allocation + encode
/// on the logging hot path. Pinned against [`WalCodec::encode_into`] by the
/// `encoded_len_matches_encoding` test.
pub fn encoded_len(rec: &LogRecord) -> usize {
    1 + match rec {
        LogRecord::CoordinatorStart { spec } | LogRecord::Voted { spec } => spec_len(spec),
        LogRecord::VotedNo { .. } | LogRecord::PreAbort { .. } => 8,
        LogRecord::PreCommit { .. } => 16,
        LogRecord::Decided { commit_version, .. } => 9 + opt_version_len(*commit_version),
        LogRecord::XStart { branches, .. } => {
            12 + branches.iter().map(|b| spec_len(b)).sum::<usize>()
        }
        LogRecord::XDecision {
            branch_versions, ..
        } => {
            13 + branch_versions
                .iter()
                .map(|(_, v)| 4 + opt_version_len(*v))
                .sum::<usize>()
        }
        LogRecord::PaxosPromise { .. } => 16,
        LogRecord::PaxosAccept { votes, .. } => 20 + 13 * votes.len(),
        LogRecord::Checkpoint {
            retired,
            xretired,
            items,
        } => {
            (4 + retired
                .iter()
                .map(|r| 9 + opt_version_len(r.commit_version))
                .sum::<usize>())
                + (4 + xretired
                    .iter()
                    .map(|x| {
                        13 + x
                            .branches
                            .iter()
                            .map(|(_, ps, v)| 8 + 4 * ps.len() + opt_version_len(*v))
                            .sum::<usize>()
                    })
                    .sum::<usize>())
                + (4 + items
                    .iter()
                    .map(|(_, chain)| 8 + 16 * chain.len())
                    .sum::<usize>())
        }
    }
}

impl WalCodec for LogRecord {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            LogRecord::CoordinatorStart { spec } => {
                put_u8(buf, TAG_COORDINATOR_START);
                put_spec(buf, spec);
            }
            LogRecord::Voted { spec } => {
                put_u8(buf, TAG_VOTED);
                put_spec(buf, spec);
            }
            LogRecord::VotedNo { txn } => {
                put_u8(buf, TAG_VOTED_NO);
                put_u64(buf, txn.0);
            }
            LogRecord::PreCommit {
                txn,
                commit_version,
            } => {
                put_u8(buf, TAG_PRE_COMMIT);
                put_u64(buf, txn.0);
                put_u64(buf, commit_version.0);
            }
            LogRecord::PreAbort { txn } => {
                put_u8(buf, TAG_PRE_ABORT);
                put_u64(buf, txn.0);
            }
            LogRecord::Decided {
                txn,
                decision,
                commit_version,
            } => {
                put_u8(buf, TAG_DECIDED);
                put_u64(buf, txn.0);
                put_decision(buf, *decision);
                put_opt_version(buf, *commit_version);
            }
            LogRecord::XStart { txn, branches } => {
                put_u8(buf, TAG_X_START);
                put_u64(buf, txn.0);
                put_u32(buf, branches.len() as u32);
                for b in branches {
                    put_spec(buf, b);
                }
            }
            LogRecord::XDecision {
                txn,
                decision,
                branch_versions,
            } => {
                put_u8(buf, TAG_X_DECISION);
                put_u64(buf, txn.0);
                put_decision(buf, *decision);
                put_u32(buf, branch_versions.len() as u32);
                for (site, v) in branch_versions {
                    put_u32(buf, site.0);
                    put_opt_version(buf, *v);
                }
            }
            LogRecord::PaxosPromise { txn, bal } => {
                put_u8(buf, TAG_PAXOS_PROMISE);
                put_u64(buf, txn.0);
                put_u64(buf, *bal);
            }
            LogRecord::PaxosAccept { txn, bal, votes } => {
                put_u8(buf, TAG_PAXOS_ACCEPT);
                put_u64(buf, txn.0);
                put_u64(buf, *bal);
                put_u32(buf, votes.len() as u32);
                for (site, prepared, v) in votes {
                    put_u32(buf, site.0);
                    put_u8(buf, *prepared as u8);
                    put_u64(buf, v.0);
                }
            }
            LogRecord::Checkpoint {
                retired,
                xretired,
                items,
            } => {
                put_u8(buf, TAG_CHECKPOINT);
                put_u32(buf, retired.len() as u32);
                for r in retired {
                    put_u64(buf, r.txn.0);
                    put_decision(buf, r.decision);
                    put_opt_version(buf, r.commit_version);
                }
                put_u32(buf, xretired.len() as u32);
                for x in xretired {
                    put_u64(buf, x.txn.0);
                    put_decision(buf, x.decision);
                    put_u32(buf, x.branches.len() as u32);
                    for (coord, participants, v) in &x.branches {
                        put_u32(buf, coord.0);
                        put_u32(buf, participants.len() as u32);
                        for p in participants {
                            put_u32(buf, p.0);
                        }
                        put_opt_version(buf, *v);
                    }
                }
                put_u32(buf, items.len() as u32);
                for (item, chain) in items {
                    put_u32(buf, item.0);
                    put_u32(buf, chain.len() as u32);
                    for (version, value) in chain {
                        put_u64(buf, version.0);
                        put_i64(buf, *value);
                    }
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let rec = match d.u8()? {
            TAG_COORDINATOR_START => LogRecord::CoordinatorStart {
                spec: get_spec(&mut d)?,
            },
            TAG_VOTED => LogRecord::Voted {
                spec: get_spec(&mut d)?,
            },
            TAG_VOTED_NO => LogRecord::VotedNo {
                txn: TxnId(d.u64()?),
            },
            TAG_PRE_COMMIT => LogRecord::PreCommit {
                txn: TxnId(d.u64()?),
                commit_version: Version(d.u64()?),
            },
            TAG_PRE_ABORT => LogRecord::PreAbort {
                txn: TxnId(d.u64()?),
            },
            TAG_DECIDED => LogRecord::Decided {
                txn: TxnId(d.u64()?),
                decision: get_decision(&mut d)?,
                commit_version: get_opt_version(&mut d)?,
            },
            TAG_X_START => {
                let txn = TxnId(d.u64()?);
                let n = d.u32()?;
                let mut branches = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    branches.push(get_spec(&mut d)?);
                }
                LogRecord::XStart { txn, branches }
            }
            TAG_X_DECISION => {
                let txn = TxnId(d.u64()?);
                let decision = get_decision(&mut d)?;
                let n = d.u32()?;
                let mut branch_versions = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    let site = SiteId(d.u32()?);
                    let v = get_opt_version(&mut d)?;
                    branch_versions.push((site, v));
                }
                LogRecord::XDecision {
                    txn,
                    decision,
                    branch_versions,
                }
            }
            TAG_PAXOS_PROMISE => LogRecord::PaxosPromise {
                txn: TxnId(d.u64()?),
                bal: d.u64()?,
            },
            TAG_PAXOS_ACCEPT => {
                let txn = TxnId(d.u64()?);
                let bal = d.u64()?;
                let n = d.u32()?;
                let mut votes = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    let site = SiteId(d.u32()?);
                    let prepared = match d.u8()? {
                        0 => false,
                        1 => true,
                        _ => return None,
                    };
                    let v = Version(d.u64()?);
                    votes.push((site, prepared, v));
                }
                LogRecord::PaxosAccept { txn, bal, votes }
            }
            TAG_CHECKPOINT => {
                let n = d.u32()?;
                let mut retired = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    retired.push(RetiredOutcome {
                        txn: TxnId(d.u64()?),
                        decision: get_decision(&mut d)?,
                        commit_version: get_opt_version(&mut d)?,
                    });
                }
                let n = d.u32()?;
                let mut xretired = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    let txn = TxnId(d.u64()?);
                    let decision = get_decision(&mut d)?;
                    let bn = d.u32()?;
                    let mut branches = Vec::with_capacity(cap(bn, &d));
                    for _ in 0..bn {
                        let coord = SiteId(d.u32()?);
                        let pn = d.u32()?;
                        let mut participants = Vec::with_capacity(cap(pn, &d));
                        for _ in 0..pn {
                            participants.push(SiteId(d.u32()?));
                        }
                        let v = get_opt_version(&mut d)?;
                        branches.push((coord, participants, v));
                    }
                    xretired.push(XRetiredOutcome {
                        txn,
                        decision,
                        branches,
                    });
                }
                let n = d.u32()?;
                let mut items = Vec::with_capacity(cap(n, &d));
                for _ in 0..n {
                    let item = ItemId(d.u32()?);
                    let cn = d.u32()?;
                    let mut chain = Vec::with_capacity(cap(cn, &d));
                    for _ in 0..cn {
                        let version = Version(d.u64()?);
                        let value = d.i64()?;
                        chain.push((version, value));
                    }
                    items.push((item, chain));
                }
                LogRecord::Checkpoint {
                    retired,
                    xretired,
                    items,
                }
            }
            _ => return None,
        };
        d.finished().then_some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn spec(id: u64, parent: Option<SiteId>) -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(id),
            coordinator: SiteId(3),
            writeset: WriteSet::new([(ItemId(1), -7), (ItemId(9), i64::MAX)]),
            participants: BTreeSet::from([SiteId(0), SiteId(3), SiteId(5)]),
            protocol: ProtocolKind::QuorumCommit2,
            parent,
        })
    }

    fn roundtrip(rec: LogRecord) {
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let back = LogRecord::decode(&buf).expect("decodes");
        assert_eq!(back, rec);
        // The arithmetic size mirror must agree with the encoder
        // exactly (it drives the bytes-since-checkpoint trigger).
        assert_eq!(encoded_len(&rec), buf.len(), "encoded_len for {rec:?}");
        // Truncated payloads must never decode.
        for cut in 0..buf.len() {
            assert_eq!(LogRecord::decode(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(LogRecord::CoordinatorStart {
            spec: spec(1, None),
        });
        roundtrip(LogRecord::Voted {
            spec: spec(2, Some(SiteId(11))),
        });
        roundtrip(LogRecord::VotedNo { txn: TxnId(3) });
        roundtrip(LogRecord::PreCommit {
            txn: TxnId(4),
            commit_version: Version(17),
        });
        roundtrip(LogRecord::PreAbort { txn: TxnId(5) });
        roundtrip(LogRecord::Decided {
            txn: TxnId(6),
            decision: Decision::Commit,
            commit_version: Some(Version(2)),
        });
        roundtrip(LogRecord::Decided {
            txn: TxnId(7),
            decision: Decision::Abort,
            commit_version: None,
        });
        roundtrip(LogRecord::XStart {
            txn: TxnId(8),
            branches: vec![spec(8, Some(SiteId(0))), spec(8, Some(SiteId(0)))],
        });
        roundtrip(LogRecord::XDecision {
            txn: TxnId(9),
            decision: Decision::Commit,
            branch_versions: vec![(SiteId(1), Some(Version(4))), (SiteId(6), None)],
        });
        roundtrip(LogRecord::Checkpoint {
            retired: vec![
                RetiredOutcome {
                    txn: TxnId(10),
                    decision: Decision::Commit,
                    commit_version: Some(Version(3)),
                },
                RetiredOutcome {
                    txn: TxnId(11),
                    decision: Decision::Abort,
                    commit_version: None,
                },
            ],
            xretired: vec![XRetiredOutcome {
                txn: TxnId(12),
                decision: Decision::Commit,
                branches: vec![
                    (SiteId(0), vec![SiteId(0), SiteId(1)], Some(Version(5))),
                    (SiteId(4), vec![], None),
                ],
            }],
            items: vec![
                (ItemId(0), vec![(Version(0), 0)]),
                (ItemId(7), vec![(Version(10), 4), (Version(12), -3)]),
                (ItemId(9), vec![]),
            ],
        });
        roundtrip(LogRecord::Checkpoint {
            retired: vec![],
            xretired: vec![],
            items: vec![],
        });
        roundtrip(LogRecord::PaxosPromise {
            txn: TxnId(13),
            bal: u64::MAX,
        });
        roundtrip(LogRecord::PaxosAccept {
            txn: TxnId(14),
            bal: 0x10005,
            votes: vec![
                (SiteId(0), true, Version(3)),
                (SiteId(2), false, Version(0)),
            ],
        });
        roundtrip(LogRecord::PaxosAccept {
            txn: TxnId(15),
            bal: 0,
            votes: vec![],
        });
    }

    #[test]
    fn unknown_tag_and_trailing_garbage_are_rejected() {
        assert_eq!(LogRecord::decode(&[250]), None);
        let mut buf = Vec::new();
        LogRecord::VotedNo { txn: TxnId(1) }.encode_into(&mut buf);
        buf.push(0);
        assert_eq!(LogRecord::decode(&buf), None, "trailing byte");
    }

    #[test]
    fn huge_count_fields_fail_without_allocating() {
        // A skewed/crafted count (u32::MAX branches) must return None
        // when the elements run out — never reserve gigabytes first.
        let mut buf = vec![6]; // XStart tag
        buf.extend_from_slice(&7u64.to_le_bytes()); // txn
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // branch count
        assert_eq!(LogRecord::decode(&buf), None);
        let mut buf = vec![8]; // Checkpoint tag
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // retired count
        assert_eq!(LogRecord::decode(&buf), None);
    }

    #[test]
    fn wire_layout_is_pinned() {
        // A byte-level pin so accidental layout changes (which would
        // break reopening existing logs) fail loudly.
        let mut buf = Vec::new();
        LogRecord::PreCommit {
            txn: TxnId(0x0102),
            commit_version: Version(5),
        }
        .encode_into(&mut buf);
        assert_eq!(
            buf,
            vec![3, 0x02, 0x01, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0]
        );
    }
}
