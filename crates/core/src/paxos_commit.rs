//! Gray & Lamport's Paxos Commit (*Consensus on Transaction Commit*).
//!
//! One Paxos consensus instance per participant's vote, with the 2F+1
//! acceptors co-located on the participant sites and the transaction
//! coordinator acting as the initial leader (ballot 0). This engine
//! batches the instances: every Phase-2a/2b/1a/1b message carries the
//! full vote vector, so the batch behaves like single-decree Paxos over
//! the composite value — the same safety argument, one message per
//! acceptor per phase.
//!
//! The normal case (leader = coordinator, ballot 0):
//!
//! 1. `VOTE-REQ` fan-out exactly as in the other engines; participants
//!    vote with the shared [`Msg::Vote`] path.
//! 2. All yes → the leader broadcasts `PAXOS-2A` with the vote vector.
//!    Any no vote, or the vote window expiring, short-circuits to
//!    presumed abort (safe: no 2a was ever sent, so no recovery
//!    candidate can choose *prepared*).
//! 3. Each acceptor force-logs [`LogRecord::PaxosAccept`] and echoes
//!    `PAXOS-2B`. The leader never force-logs the votes itself — F+1
//!    acceptor records *are* the decision's durability.
//! 4. F+1 distinct 2b echoes at the leader's ballot → decided: commit
//!    iff every instance chose *prepared*, version = max reported + 1.
//!
//! Leader failover replaces the quorum-paper termination protocol for
//! this engine: a participant whose watchdog fires becomes a recovery
//! candidate at a ballot > 0 unique to it ([`qbc_election`]'s
//! `recovery_ballot`), runs Phase 1a/1b over the acceptors, adopts the
//! highest-ballot accepted batch any quorum member reports (presumed
//! abort when none does), and **must** drive that batch through a full
//! Phase 2 at its own ballot before deciding — deciding straight off an
//! empty Phase 1 would leave the outcome invisible to the next
//! candidate's quorum, which is exactly the split the model checker's
//! seeded `weaken_paxos` mutation demonstrates.

use crate::actions::{Action, TimerKind};
use crate::commit_engine::{CommitEngine, EngineCtx};
use crate::log::{LogRecord, RecoveredAcceptor};
use crate::messages::Msg;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::Version;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One instance's proposed/accepted value: `(participant whose vote
/// this instance decides, prepared?, reported max version)`.
pub type PaxosVotes = Vec<(SiteId, bool, Version)>;

/// Leader/candidate progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaxosPhase {
    /// Ballot-0 leader collecting participant votes.
    SolicitingVotes,
    /// Recovery candidate collecting Phase-1b promises.
    Recovering,
    /// Phase-2a broadcast out, collecting 2b acceptances.
    Proposing,
    /// Branch of a cross-shard transaction at its commit point (all
    /// votes yes): held for the parent's decision, Paxos rounds never
    /// start — the parent is the outcome authority, as for 2PC.
    Held,
    /// Decision reached and commanded.
    Decided(Decision),
}

/// The Paxos Commit leader (ballot 0) / recovery candidate (ballot > 0)
/// engine for one transaction.
#[derive(Clone, Debug)]
pub struct PaxosLeader {
    spec: Arc<TxnSpec>,
    bal: u64,
    phase: PaxosPhase,
    /// Participant votes collected at ballot 0.
    votes: BTreeMap<SiteId, (bool, Version)>,
    /// Phase-1b promises collected (candidates only): reporter →
    /// accepted `(instance, ballot, prepared, version)` entries.
    onebs: BTreeMap<SiteId, Vec<(SiteId, u64, bool, Version)>>,
    /// Acceptors that echoed 2b at this engine's ballot.
    twobs: BTreeSet<SiteId>,
    /// The Phase-2a batch this engine proposed.
    proposal: Option<PaxosVotes>,
    commit_version: Option<Version>,
    /// Seeded mutation for checker validation: accept one 2b less than
    /// the F+1 majority. Never set outside tests — it lets a decision
    /// rest on a quorum a recovery candidate's Phase-1 quorum need not
    /// intersect, and the model checker exists to prove it would
    /// notice.
    weaken: bool,
}

impl PaxosLeader {
    /// The ballot-0 leader at the transaction coordinator.
    pub fn new(spec: Arc<TxnSpec>) -> Self {
        PaxosLeader {
            spec,
            bal: 0,
            phase: PaxosPhase::SolicitingVotes,
            votes: BTreeMap::new(),
            onebs: BTreeMap::new(),
            twobs: BTreeSet::new(),
            proposal: None,
            commit_version: None,
            weaken: false,
        }
    }

    /// A recovery candidate at ballot `bal` (> 0), created at a
    /// participant site whose coordinator watchdog fired.
    pub fn recover(spec: Arc<TxnSpec>, bal: u64) -> Self {
        debug_assert!(bal > 0, "recovery ballots are positive");
        PaxosLeader {
            spec,
            bal,
            phase: PaxosPhase::Recovering,
            votes: BTreeMap::new(),
            onebs: BTreeMap::new(),
            twobs: BTreeSet::new(),
            proposal: None,
            commit_version: None,
            weaken: false,
        }
    }

    /// Installs the seeded acceptor-quorum mutation (see the field
    /// doc). Test-only by convention; the model-check suite proves it
    /// is caught.
    pub fn with_weakened_quorum(mut self) -> Self {
        self.weaken = true;
        self
    }

    /// The transaction.
    pub fn txn(&self) -> TxnId {
        self.spec.id
    }

    /// Current phase.
    pub fn phase(&self) -> PaxosPhase {
        self.phase
    }

    /// This engine's ballot.
    pub fn ballot(&self) -> u64 {
        self.bal
    }

    /// The commit version, once the decision batch is fixed.
    pub fn commit_version(&self) -> Option<Version> {
        self.commit_version
    }

    fn everyone(&self) -> Vec<SiteId> {
        self.spec.participants.iter().copied().collect()
    }

    /// F+1 of the 2F+1 co-located acceptors (`weaken` shaves one off —
    /// the seeded bug).
    fn majority(&self) -> usize {
        let m = self.spec.participants.len() / 2 + 1;
        m - usize::from(self.weaken)
    }

    /// Kicks off ballot 0 (vote solicitation) or a recovery ballot
    /// (Phase 1a). Actions are appended to the caller's scratch buffer
    /// (as everywhere on this engine: no per-event allocation in steady
    /// state).
    pub fn start(&mut self, out: &mut Vec<Action>) {
        match self.phase {
            PaxosPhase::SolicitingVotes => {
                out.push(Action::Log(LogRecord::CoordinatorStart {
                    spec: Arc::clone(&self.spec),
                }));
                out.push(Action::Broadcast(
                    self.everyone(),
                    Msg::VoteReq {
                        spec: Arc::clone(&self.spec),
                    },
                ));
                out.push(Action::SetTimer(TimerKind::VoteCollection {
                    txn: self.spec.id,
                }));
            }
            PaxosPhase::Recovering => {
                out.push(Action::Broadcast(
                    self.everyone(),
                    Msg::PaxosP1a {
                        txn: self.spec.id,
                        bal: self.bal,
                        spec: Arc::clone(&self.spec),
                    },
                ));
                out.push(Action::SetTimer(TimerKind::Paxos1bCollection {
                    txn: self.spec.id,
                    bal: self.bal,
                }));
            }
            _ => {}
        }
    }

    /// Handles a participant vote (ballot-0 leaders only).
    pub fn on_vote(
        &mut self,
        from: SiteId,
        yes: bool,
        max_version: Version,
        out: &mut Vec<Action>,
    ) {
        match self.phase {
            PaxosPhase::SolicitingVotes => {}
            PaxosPhase::Decided(d) => {
                out.push(self.decision_reply(d));
                return;
            }
            _ => return,
        }
        if !self.spec.participants.contains(&from) {
            return;
        }
        self.votes.insert(from, (yes, max_version));
        if !yes {
            // Presumed abort: no 2a has left this site, so no recovery
            // candidate can ever choose *prepared* — aborting without a
            // Paxos round is safe (a branch reports the no upward too).
            self.abort_unilaterally(out);
            return;
        }
        if self.votes.len() == self.spec.participants.len() {
            if self.spec.is_branch() {
                // All yes at a branch: durable yes votes are the
                // prepared state (hierarchical 2PC); hold for the
                // parent instead of starting Paxos rounds.
                let v = self.max_reported().next();
                self.commit_version = Some(v);
                self.hold_and_vote_yes(out);
                return;
            }
            let batch: PaxosVotes = self
                .votes
                .iter()
                .map(|(&s, &(yes, v))| (s, yes, v))
                .collect();
            self.propose(batch, out);
        }
    }

    fn max_reported(&self) -> Version {
        self.votes
            .values()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(Version::INITIAL)
    }

    /// Broadcasts the Phase-2a batch at this engine's ballot.
    fn propose(&mut self, batch: PaxosVotes, out: &mut Vec<Action>) {
        self.phase = PaxosPhase::Proposing;
        self.twobs.clear();
        self.proposal = Some(batch.clone());
        out.push(Action::Broadcast(
            self.everyone(),
            Msg::PaxosP2a {
                txn: self.spec.id,
                bal: self.bal,
                votes: batch,
            },
        ));
        out.push(Action::SetTimer(TimerKind::Paxos2bCollection {
            txn: self.spec.id,
            bal: self.bal,
        }));
    }

    /// Handles a Phase-1b promise (recovery candidates only).
    pub fn on_p1b(
        &mut self,
        from: SiteId,
        bal: u64,
        accepted: &[(SiteId, u64, bool, Version)],
        out: &mut Vec<Action>,
    ) {
        match self.phase {
            PaxosPhase::Recovering => {}
            PaxosPhase::Decided(d) => {
                out.push(self.decision_reply(d));
                return;
            }
            _ => return,
        }
        if bal != self.bal || !self.spec.participants.contains(&from) {
            return;
        }
        self.onebs.insert(from, accepted.to_vec());
        if self.onebs.len() < self.majority() {
            return;
        }
        // A promise quorum is in: per instance, adopt the value with
        // the highest accepted ballot any reporter carries; an instance
        // no quorum member reports gets presumed abort. The batch must
        // still survive Phase 2 at this ballot before the decision is
        // spoken.
        let batch: PaxosVotes = self
            .spec
            .participants
            .iter()
            .map(|&inst| {
                let best = self
                    .onebs
                    .values()
                    .flatten()
                    .filter(|&&(i, _, _, _)| i == inst)
                    .max_by_key(|&&(_, b, _, _)| b);
                match best {
                    Some(&(_, _, prepared, v)) => (inst, prepared, v),
                    None => (inst, false, Version::INITIAL),
                }
            })
            .collect();
        self.propose(batch, out);
    }

    /// Handles a Phase-2b acceptance echo.
    pub fn on_p2b(&mut self, from: SiteId, bal: u64, out: &mut Vec<Action>) {
        match self.phase {
            PaxosPhase::Proposing => {}
            PaxosPhase::Decided(d) => {
                out.push(self.decision_reply(d));
                return;
            }
            _ => return,
        }
        if bal != self.bal || !self.spec.participants.contains(&from) {
            return;
        }
        self.twobs.insert(from);
        if self.twobs.len() < self.majority() {
            return;
        }
        // Chosen: the proposed batch is durable at F+1 acceptors.
        // Commit exactly when every instance chose *prepared*.
        let batch = self.proposal.as_ref().expect("proposing implies batch");
        if batch.iter().all(|&(_, prepared, _)| prepared) {
            let v = batch
                .iter()
                .map(|&(_, _, v)| v)
                .max()
                .unwrap_or(Version::INITIAL)
                .next();
            self.commit_version = Some(v);
            self.decide(Decision::Commit, out);
        } else {
            self.decide(Decision::Abort, out);
        }
    }

    /// Vote-collection window expired (ballot-0 leaders only): missing
    /// votes are presumed aborts — safe for the same reason a no vote
    /// is (no 2a out yet).
    pub fn on_vote_timer(&mut self, out: &mut Vec<Action>) {
        if self.phase != PaxosPhase::SolicitingVotes {
            return;
        }
        self.abort_unilaterally(out);
    }

    /// Phase-1b collection window expired: re-broadcast the 1a (lost
    /// promises; the acceptors re-answer idempotently).
    pub fn on_1b_timer(&mut self, bal: u64, out: &mut Vec<Action>) {
        if self.phase != PaxosPhase::Recovering || bal != self.bal {
            return;
        }
        out.push(Action::Broadcast(
            self.everyone(),
            Msg::PaxosP1a {
                txn: self.spec.id,
                bal: self.bal,
                spec: Arc::clone(&self.spec),
            },
        ));
        out.push(Action::SetTimer(TimerKind::Paxos1bCollection {
            txn: self.spec.id,
            bal: self.bal,
        }));
    }

    /// Phase-2b collection window expired: re-broadcast the 2a.
    pub fn on_2b_timer(&mut self, bal: u64, out: &mut Vec<Action>) {
        if self.phase != PaxosPhase::Proposing || bal != self.bal {
            return;
        }
        let batch = self.proposal.clone().expect("proposing implies batch");
        out.push(Action::Broadcast(
            self.everyone(),
            Msg::PaxosP2a {
                txn: self.spec.id,
                bal: self.bal,
                votes: batch,
            },
        ));
        out.push(Action::SetTimer(TimerKind::Paxos2bCollection {
            txn: self.spec.id,
            bal: self.bal,
        }));
    }

    /// The cross-shard decision arrived (branches only).
    pub fn on_x_decide(
        &mut self,
        decision: Decision,
        commit_version: Option<Version>,
        out: &mut Vec<Action>,
    ) {
        debug_assert!(self.spec.is_branch(), "X-DECIDE at a non-branch engine");
        match self.phase {
            PaxosPhase::Decided(_) => {}
            _ => {
                if decision == Decision::Commit && commit_version.is_some() {
                    self.commit_version = commit_version;
                }
                self.decide(decision, out);
            }
        }
    }

    /// Another engine (a higher-ballot candidate, or a decided
    /// straggler's re-announcement) already terminated the transaction:
    /// adopt the outcome without re-commanding anyone.
    pub fn adopt_decision(&mut self, decision: Decision, commit_version: Option<Version>) {
        if matches!(self.phase, PaxosPhase::Decided(_)) {
            return;
        }
        if commit_version.is_some() {
            self.commit_version = commit_version;
        }
        self.phase = PaxosPhase::Decided(decision);
    }

    fn hold_and_vote_yes(&mut self, out: &mut Vec<Action>) {
        let parent = self.spec.parent.expect("held only for branches");
        self.phase = PaxosPhase::Held;
        out.push(Action::Send(
            parent,
            Msg::XVote {
                txn: self.spec.id,
                yes: true,
                commit_version: self.commit_version,
            },
        ));
    }

    fn abort_unilaterally(&mut self, out: &mut Vec<Action>) {
        self.decide(Decision::Abort, out);
        if let Some(parent) = self.spec.parent {
            out.push(Action::Send(
                parent,
                Msg::XVote {
                    txn: self.spec.id,
                    yes: false,
                    commit_version: None,
                },
            ));
        }
    }

    fn decision_reply(&self, d: Decision) -> Action {
        match d {
            Decision::Commit => Action::Reply(Msg::Commit {
                txn: self.spec.id,
                commit_version: self.commit_version.expect("decided commit has version"),
            }),
            Decision::Abort => Action::Reply(Msg::Abort { txn: self.spec.id }),
        }
    }

    /// Force-log the decision, then command every participant.
    fn decide(&mut self, decision: Decision, out: &mut Vec<Action>) {
        self.phase = PaxosPhase::Decided(decision);
        match decision {
            Decision::Commit => {
                let v = self.commit_version.expect("commit implies version");
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.spec.id,
                    decision,
                    commit_version: Some(v),
                }));
                out.push(Action::Broadcast(
                    self.everyone(),
                    Msg::Commit {
                        txn: self.spec.id,
                        commit_version: v,
                    },
                ));
            }
            Decision::Abort => {
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.spec.id,
                    decision,
                    commit_version: None,
                }));
                out.push(Action::Broadcast(
                    self.everyone(),
                    Msg::Abort { txn: self.spec.id },
                ));
            }
        }
    }
}

/// Vec-returning wrappers so protocol unit tests keep their original
/// collect-and-assert shape without threading scratch buffers through.
#[cfg(test)]
impl PaxosLeader {
    fn start_v(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.start(&mut out);
        out
    }
    fn on_vote_v(&mut self, from: SiteId, yes: bool, max_version: Version) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_vote(from, yes, max_version, &mut out);
        out
    }
    fn on_p1b_v(
        &mut self,
        from: SiteId,
        bal: u64,
        accepted: &[(SiteId, u64, bool, Version)],
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_p1b(from, bal, accepted, &mut out);
        out
    }
    fn on_p2b_v(&mut self, from: SiteId, bal: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_p2b(from, bal, &mut out);
        out
    }
    fn on_vote_timer_v(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_vote_timer(&mut out);
        out
    }
    fn on_1b_timer_v(&mut self, bal: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_1b_timer(bal, &mut out);
        out
    }
    fn on_2b_timer_v(&mut self, bal: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_2b_timer(bal, &mut out);
        out
    }
    fn on_x_decide_v(
        &mut self,
        decision: Decision,
        commit_version: Option<Version>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_x_decide(decision, commit_version, &mut out);
        out
    }
}

/// Canonical state hash for the model checker's visited-set. The spec
/// is excluded (fixed per transaction id, hashed at node level).
impl qbc_simnet::Fingerprint for PaxosLeader {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(
            format!(
                "{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
                self.phase,
                self.bal,
                self.votes,
                self.onebs,
                self.twobs,
                self.proposal,
                self.commit_version
            )
            .as_bytes(),
        );
    }
}

impl CommitEngine for PaxosLeader {
    fn txn(&self) -> TxnId {
        PaxosLeader::txn(self)
    }

    fn start(&mut self, out: &mut Vec<Action>) {
        PaxosLeader::start(self, out)
    }

    fn on_msg(&mut self, from: SiteId, msg: &Msg, _ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        match msg {
            Msg::Vote {
                yes, max_version, ..
            } => self.on_vote(from, *yes, *max_version, out),
            Msg::PaxosP1b { bal, accepted, .. } => self.on_p1b(from, *bal, accepted, out),
            Msg::PaxosP2b { bal, .. } => self.on_p2b(from, *bal, out),
            Msg::XDecide {
                decision,
                commit_version,
                ..
            } => self.on_x_decide(*decision, *commit_version, out),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: TimerKind, _ctx: &EngineCtx<'_>, out: &mut Vec<Action>) {
        match kind {
            TimerKind::VoteCollection { .. } => self.on_vote_timer(out),
            TimerKind::Paxos1bCollection { bal, .. } => self.on_1b_timer(bal, out),
            TimerKind::Paxos2bCollection { bal, .. } => self.on_2b_timer(bal, out),
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        match self.phase {
            PaxosPhase::Decided(d) => Some(d),
            _ => None,
        }
    }

    fn commit_version(&self) -> Option<Version> {
        PaxosLeader::commit_version(self)
    }

    fn log_record_kinds(&self) -> &'static [&'static str] {
        &["coordinator-start", "decided"]
    }
}

/// The Paxos Commit acceptor state for one transaction at one site —
/// spec-free (keyed by transaction id at the node), so a recovering
/// site can re-install it straight from the log without ever having
/// seen the `VOTE-REQ`.
#[derive(Clone, Debug, Default)]
pub struct PaxosAcceptor {
    /// Highest ballot promised; 1a/2a below it are ignored.
    promised: u64,
    /// The accepted batch with the highest ballot, if any.
    accepted: Option<(u64, PaxosVotes)>,
}

impl PaxosAcceptor {
    /// A fresh acceptor (promised nothing, accepted nothing).
    pub fn new() -> Self {
        PaxosAcceptor::default()
    }

    /// Re-installs the durable acceptor state after a crash.
    pub fn from_recovery(rec: &RecoveredAcceptor) -> Self {
        PaxosAcceptor {
            promised: rec.promised,
            accepted: rec.accepted.clone(),
        }
    }

    /// Highest ballot promised.
    pub fn promised(&self) -> u64 {
        self.promised
    }

    /// The highest-ballot accepted batch, if any.
    pub fn accepted(&self) -> Option<&(u64, PaxosVotes)> {
        self.accepted.as_ref()
    }

    /// Phase 1a: promise `bal` (idempotent re-answer at the promised
    /// ballot, so candidate re-broadcasts stay live), force-logging the
    /// promise before it leaves the site.
    pub fn on_p1a(&mut self, txn: TxnId, bal: u64, out: &mut Vec<Action>) {
        if bal < self.promised {
            return;
        }
        // Only a *raised* promise needs a new force-log: a re-answer at
        // the already-promised ballot is covered by the record written
        // when that promise was first made (or replayed from it), so a
        // re-broadcasting candidate cannot grow the WAL unboundedly.
        let raised = bal > self.promised;
        self.promised = bal;
        let accepted = match &self.accepted {
            Some((b, votes)) => votes.iter().map(|&(s, p, v)| (s, *b, p, v)).collect(),
            None => Vec::new(),
        };
        if raised {
            out.push(Action::Log(LogRecord::PaxosPromise { txn, bal }));
        }
        out.push(Action::Reply(Msg::PaxosP1b { txn, bal, accepted }));
    }

    /// Phase 2a: accept the batch at `bal` unless a higher ballot was
    /// promised, force-logging the acceptance before the 2b echo.
    pub fn on_p2a(
        &mut self,
        txn: TxnId,
        bal: u64,
        votes: &[(SiteId, bool, Version)],
        out: &mut Vec<Action>,
    ) {
        if bal < self.promised {
            return;
        }
        self.promised = bal;
        self.accepted = Some((bal, votes.to_vec()));
        out.push(Action::Log(LogRecord::PaxosAccept {
            txn,
            bal,
            votes: votes.to_vec(),
        }));
        out.push(Action::Reply(Msg::PaxosP2b {
            txn,
            bal,
            votes: votes.to_vec(),
        }));
    }

    /// The log record kinds this role force-writes.
    pub fn log_record_kinds() -> &'static [&'static str] {
        &["paxos-promise", "paxos-accept"]
    }
}

/// Vec-returning wrappers mirroring the leader's test shims.
#[cfg(test)]
impl PaxosAcceptor {
    fn on_p1a_v(&mut self, txn: TxnId, bal: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_p1a(txn, bal, &mut out);
        out
    }
    fn on_p2a_v(&mut self, txn: TxnId, bal: u64, votes: &[(SiteId, bool, Version)]) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_p2a(txn, bal, votes, &mut out);
        out
    }
}

/// Canonical state hash for the model checker's visited-set.
impl qbc_simnet::Fingerprint for PaxosAcceptor {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(format!("{}|{:?}", self.promised, self.accepted).as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_votes::ItemId;

    const S0: SiteId = SiteId(0);
    const S1: SiteId = SiteId(1);
    const S2: SiteId = SiteId(2);

    fn spec() -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(1),
            coordinator: S0,
            writeset: WriteSet::new([(ItemId(0), 7)]),
            participants: [S0, S1, S2].into(),
            protocol: ProtocolKind::PaxosCommit,
            parent: None,
        })
    }

    fn all_yes(l: &mut PaxosLeader) -> Vec<Action> {
        let mut last = Vec::new();
        for s in [S0, S1, S2] {
            last = l.on_vote_v(s, true, Version(0));
        }
        last
    }

    #[test]
    fn happy_path_commits_at_acceptor_majority() {
        let mut l = PaxosLeader::new(spec());
        let start = l.start_v();
        assert!(matches!(
            start[0],
            Action::Log(LogRecord::CoordinatorStart { .. })
        ));
        assert!(matches!(
            start[1],
            Action::Broadcast(_, Msg::VoteReq { .. })
        ));
        // All yes → the 2a batch goes out, nothing is decided yet.
        let actions = all_yes(&mut l);
        assert!(matches!(
            actions[0],
            Action::Broadcast(_, Msg::PaxosP2a { bal: 0, .. })
        ));
        assert_eq!(l.phase(), PaxosPhase::Proposing);
        // One 2b is short of F+1 = 2.
        assert!(l.on_p2b_v(S0, 0).is_empty());
        let actions = l.on_p2b_v(S1, 0);
        assert!(matches!(
            actions[0],
            Action::Log(LogRecord::Decided {
                decision: Decision::Commit,
                ..
            })
        ));
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
        assert_eq!(l.phase(), PaxosPhase::Decided(Decision::Commit));
        assert_eq!(l.commit_version(), Some(Version(1)));
    }

    #[test]
    fn any_no_vote_aborts_without_a_paxos_round() {
        let mut l = PaxosLeader::new(spec());
        l.start_v();
        l.on_vote_v(S0, true, Version(0));
        let actions = l.on_vote_v(S1, false, Version(0));
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
        assert_eq!(l.phase(), PaxosPhase::Decided(Decision::Abort));
    }

    #[test]
    fn vote_timeout_presumes_abort() {
        let mut l = PaxosLeader::new(spec());
        l.start_v();
        l.on_vote_v(S0, true, Version(0));
        let actions = l.on_vote_timer_v();
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
    }

    #[test]
    fn commit_version_is_max_reported_plus_one() {
        let mut l = PaxosLeader::new(spec());
        l.start_v();
        l.on_vote_v(S0, true, Version(4));
        l.on_vote_v(S1, true, Version(9));
        l.on_vote_v(S2, true, Version(2));
        l.on_p2b_v(S1, 0);
        l.on_p2b_v(S2, 0);
        assert_eq!(l.commit_version(), Some(Version(10)));
    }

    #[test]
    fn acceptor_logs_before_echoing_2b() {
        let mut a = PaxosAcceptor::new();
        let votes = vec![(S0, true, Version(0)), (S1, true, Version(3))];
        let out = a.on_p2a_v(TxnId(1), 0, &votes);
        assert!(matches!(out[0], Action::Log(LogRecord::PaxosAccept { .. })));
        assert!(matches!(
            out[1],
            Action::Reply(Msg::PaxosP2b { bal: 0, .. })
        ));
    }

    #[test]
    fn acceptor_rejects_below_promise() {
        let mut a = PaxosAcceptor::new();
        a.on_p1a_v(TxnId(1), 5);
        assert!(a.on_p2a_v(TxnId(1), 0, &[]).is_empty(), "2a below promise");
        assert!(a.on_p1a_v(TxnId(1), 4).is_empty(), "1a below promise");
        // Idempotent re-answer at the promised ballot keeps candidate
        // re-broadcasts live — but without a fresh force-log, so a
        // re-broadcast loop cannot grow the WAL.
        let again = a.on_p1a_v(TxnId(1), 5);
        assert_eq!(again.len(), 1);
        assert!(matches!(
            again[0],
            Action::Reply(Msg::PaxosP1b { bal: 5, .. })
        ));
    }

    #[test]
    fn recovery_adopts_accepted_value_and_reruns_phase2() {
        // Leader proposed all-prepared at ballot 0, S1 accepted, leader
        // crashed. Candidate at ballot 7 must adopt and re-propose.
        let mut acc = PaxosAcceptor::new();
        let votes = vec![
            (S0, true, Version(0)),
            (S1, true, Version(0)),
            (S2, true, Version(0)),
        ];
        acc.on_p2a_v(TxnId(1), 0, &votes);
        let mut c = PaxosLeader::recover(spec(), 7);
        let start = c.start_v();
        assert!(matches!(
            start[0],
            Action::Broadcast(_, Msg::PaxosP1a { bal: 7, .. })
        ));
        // S1 reports its acceptance; S2 reports nothing.
        let p1b = acc.on_p1a_v(TxnId(1), 7);
        let Action::Reply(Msg::PaxosP1b { accepted, .. }) = &p1b[1] else {
            panic!("expected 1b reply, got {p1b:?}");
        };
        assert!(c.on_p1b_v(S2, 7, &[]).is_empty(), "one promise is not F+1");
        let actions = c.on_p1b_v(S1, 7, accepted);
        // The adopted batch goes through Phase 2 at ballot 7 — no
        // direct decision off the promises.
        let Action::Broadcast(
            _,
            Msg::PaxosP2a {
                bal: 7,
                votes: batch,
                ..
            },
        ) = &actions[0]
        else {
            panic!("expected 2a re-proposal, got {actions:?}");
        };
        assert!(
            batch.iter().all(|&(_, p, _)| p),
            "adopted batch is prepared"
        );
        // Majority 2b at ballot 7 → the original outcome (commit).
        c.on_p2b_v(S1, 7);
        let done = c.on_p2b_v(S2, 7);
        assert!(matches!(
            done[0],
            Action::Log(LogRecord::Decided {
                decision: Decision::Commit,
                ..
            })
        ));
    }

    #[test]
    fn recovery_with_nothing_accepted_presumes_abort_via_phase2() {
        let mut c = PaxosLeader::recover(spec(), 3);
        c.start_v();
        c.on_p1b_v(S1, 3, &[]);
        let actions = c.on_p1b_v(S2, 3, &[]);
        let Action::Broadcast(_, Msg::PaxosP2a { votes: batch, .. }) = &actions[0] else {
            panic!("expected 2a, got {actions:?}");
        };
        assert!(
            batch.iter().all(|&(_, p, _)| !p),
            "unreported instances are presumed aborts"
        );
        // The abort still needs a chosen Phase 2 before it is spoken.
        assert_eq!(c.phase(), PaxosPhase::Proposing);
        c.on_p2b_v(S1, 3);
        let done = c.on_p2b_v(S2, 3);
        assert!(matches!(
            done[0],
            Action::Log(LogRecord::Decided {
                decision: Decision::Abort,
                ..
            })
        ));
    }

    #[test]
    fn stale_ballot_echoes_are_ignored() {
        let mut c = PaxosLeader::recover(spec(), 7);
        c.start_v();
        c.on_p1b_v(S1, 7, &[]);
        c.on_p1b_v(S2, 7, &[]);
        assert!(c.on_p2b_v(S1, 0).is_empty(), "2b from ballot 0 is stale");
        assert!(
            c.on_p1b_v(S0, 3, &[]).is_empty(),
            "1b from ballot 3 is stale"
        );
    }

    #[test]
    fn weakened_quorum_decides_on_f_acceptances() {
        let mut l = PaxosLeader::new(spec()).with_weakened_quorum();
        l.start_v();
        all_yes(&mut l);
        // F = 1 acceptance suffices under the mutation — the bug the
        // model checker must catch.
        let actions = l.on_p2b_v(S0, 0);
        assert!(matches!(actions[0], Action::Log(LogRecord::Decided { .. })));
    }

    #[test]
    fn timers_rebroadcast_current_round() {
        let mut c = PaxosLeader::recover(spec(), 2);
        c.start_v();
        let again = c.on_1b_timer_v(2);
        assert!(matches!(
            again[0],
            Action::Broadcast(_, Msg::PaxosP1a { bal: 2, .. })
        ));
        assert!(c.on_2b_timer_v(2).is_empty(), "not proposing yet");
        c.on_p1b_v(S1, 2, &[]);
        c.on_p1b_v(S2, 2, &[]);
        assert!(c.on_1b_timer_v(2).is_empty(), "past recovery");
        let again = c.on_2b_timer_v(2);
        assert!(matches!(
            again[0],
            Action::Broadcast(_, Msg::PaxosP2a { bal: 2, .. })
        ));
    }

    #[test]
    fn acceptor_recovery_reinstalls_durable_state() {
        let mut a = PaxosAcceptor::new();
        a.on_p1a_v(TxnId(1), 2);
        a.on_p2a_v(TxnId(1), 4, &[(S0, true, Version(1))]);
        let records = vec![
            LogRecord::PaxosPromise {
                txn: TxnId(1),
                bal: 2,
            },
            LogRecord::PaxosAccept {
                txn: TxnId(1),
                bal: 4,
                votes: vec![(S0, true, Version(1))],
            },
        ];
        let rec = &crate::log::recover_paxos(&records)[&TxnId(1)];
        let b = PaxosAcceptor::from_recovery(rec);
        assert_eq!(b.promised(), a.promised());
        assert_eq!(b.accepted(), a.accepted());
        // The reborn acceptor still honours the old promise.
        assert!(b.clone().on_p2a_v(TxnId(1), 3, &[]).is_empty());
    }

    #[test]
    fn branch_holds_on_all_yes_like_2pc() {
        let branch = Arc::new(TxnSpec {
            parent: Some(SiteId(42)),
            ..(*spec()).clone()
        });
        let mut l = PaxosLeader::new(branch);
        l.start_v();
        let actions = all_yes(&mut l);
        assert!(matches!(
            actions[0],
            Action::Send(SiteId(42), Msg::XVote { yes: true, .. })
        ));
        assert_eq!(l.phase(), PaxosPhase::Held);
        let done = l.on_x_decide_v(Decision::Commit, Some(Version(1)));
        assert!(matches!(done[1], Action::Broadcast(_, Msg::Commit { .. })));
    }
}
