//! The normal-case commit coordinator (Figs. 1, 2 and 9).
//!
//! One engine serves all five protocol variants; they differ only in the
//! *commit point*:
//!
//! * **2PC** — commit as soon as every participant votes yes (no prepare
//!   round; blocking under coordinator failure).
//! * **3PC** — prepare round, commit after *all* PC-ACKs (or after the
//!   ack window expires: straggling participants are presumed crashed
//!   and will be handled by recovery/termination).
//! * **Skeen `[16]`** — prepare round, commit once PC-ACKs carry `Vc`
//!   *site* votes.
//! * **QC1** (Fig. 9) — commit once PC-ACKs carry `w(x)` copy votes for
//!   **every** writeset item: from that instant no abort quorum can ever
//!   form.
//! * **QC2** — commit once PC-ACKs carry `r(x)` copy votes for **some**
//!   writeset item: likewise kills all abort quorums, and is reached
//!   sooner. This is why "commit protocol 2 runs faster than commit
//!   protocol 1" (§3.2).

use crate::actions::{Action, TimerKind};
use crate::log::LogRecord;
use crate::messages::Msg;
use crate::types::{Decision, ProtocolKind, SiteVotes, TxnId, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, Version};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Coordinator progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordPhase {
    /// Phase 1: waiting for votes.
    SolicitingVotes,
    /// Phase 2 (not in 2PC): waiting for PC-ACKs.
    Preparing,
    /// Branch of a cross-shard transaction at its in-shard commit point:
    /// prepared but undecided. The engine has voted yes to the parent
    /// and holds here — only the parent's `X-DECIDE` terminates it.
    Held,
    /// Decision reached and commanded.
    Decided(Decision),
    /// Gave up (quorum protocols): handed off to the termination path.
    HandedOff,
}

/// One writeset item's pre-resolved ack arithmetic: the copy weights
/// and quorums are fixed for the life of the transaction, so they are
/// snapshotted from the catalog once (when the prepare round starts)
/// and every PC-ACK afterwards costs a small in-cache scan instead of a
/// catalog walk per item per ack.
#[derive(Clone, Debug)]
struct ItemTally {
    /// Copy holders and their vote weights, in site order.
    copies: Vec<(SiteId, u32)>,
    /// `w(x)` — the QC1 commit point per item.
    write_quorum: u32,
    /// `r(x)` — the QC2 commit point per item.
    read_quorum: u32,
    /// Votes accumulated from distinct ackers so far.
    acked: u32,
}

/// The normal-case coordinator engine for one transaction.
#[derive(Clone, Debug)]
pub struct Coordinator {
    spec: Arc<TxnSpec>,
    /// Site-vote parameters (Skeen `[16]` only).
    site_votes: Option<SiteVotes>,
    phase: CoordPhase,
    votes: BTreeMap<SiteId, (bool, Version)>,
    pc_acks: BTreeSet<SiteId>,
    /// One tally per writeset item (QC1/QC2 only; built at prepare).
    tallies: Vec<ItemTally>,
    commit_version: Option<Version>,
    /// Seeded mutation for checker validation: accept one PC-ACK less
    /// than the write quorum at the QC1 commit point. Never set outside
    /// tests — it re-opens the abort-quorum window the paper's rule
    /// closes, and the model checker exists to prove it would notice.
    weaken_qc1: bool,
}

impl Coordinator {
    /// Creates the engine. `site_votes` is required for
    /// [`ProtocolKind::SkeenQuorum`] and ignored otherwise.
    pub fn new(spec: Arc<TxnSpec>, site_votes: Option<SiteVotes>) -> Self {
        debug_assert!(
            spec.protocol != ProtocolKind::SkeenQuorum || site_votes.is_some(),
            "Skeen quorum commit needs site votes"
        );
        Coordinator {
            spec,
            site_votes,
            phase: CoordPhase::SolicitingVotes,
            votes: BTreeMap::new(),
            pc_acks: BTreeSet::new(),
            tallies: Vec::new(),
            commit_version: None,
            weaken_qc1: false,
        }
    }

    /// Installs the seeded QC1 mutation (see the field doc). Test-only
    /// by convention; the model-check suite proves it is caught.
    pub fn with_weakened_qc1(mut self) -> Self {
        self.weaken_qc1 = true;
        self
    }

    /// Snapshots the per-item quorum arithmetic for the ack round. An
    /// item missing from the catalog gets unsatisfiable quorums, which
    /// preserves the lookup-per-ack behaviour (`None` => never commit).
    fn build_tallies(&mut self, catalog: &Catalog) {
        if !matches!(
            self.spec.protocol,
            ProtocolKind::QuorumCommit1 | ProtocolKind::QuorumCommit2
        ) {
            return;
        }
        self.tallies = self
            .spec
            .writeset
            .items()
            .map(|x| match catalog.item(x) {
                Some(i) => ItemTally {
                    copies: i.copies.iter().map(|(&s, &w)| (s, w)).collect(),
                    write_quorum: i.write_quorum,
                    read_quorum: i.read_quorum,
                    acked: 0,
                },
                None => ItemTally {
                    copies: Vec::new(),
                    write_quorum: u32::MAX,
                    read_quorum: u32::MAX,
                    acked: 0,
                },
            })
            .collect();
    }

    /// The transaction.
    pub fn txn(&self) -> TxnId {
        self.spec.id
    }

    /// Current phase.
    pub fn phase(&self) -> CoordPhase {
        self.phase
    }

    /// The commit version, once all votes arrived.
    pub fn commit_version(&self) -> Option<Version> {
        self.commit_version
    }

    /// Kicks off phase 1: durably record coordinatorship, distribute the
    /// spec (update values included) and wait `2T` for votes. Actions
    /// are appended to the caller's scratch buffer (as everywhere on
    /// this engine: no per-event allocation in steady state).
    pub fn start(&mut self, out: &mut Vec<Action>) {
        let everyone: Vec<SiteId> = self.spec.participants.iter().copied().collect();
        out.push(Action::Log(LogRecord::CoordinatorStart {
            spec: Arc::clone(&self.spec),
        }));
        out.push(Action::Broadcast(
            everyone,
            Msg::VoteReq {
                spec: Arc::clone(&self.spec),
            },
        ));
        out.push(Action::SetTimer(TimerKind::VoteCollection {
            txn: self.spec.id,
        }));
    }

    /// Handles a vote.
    pub fn on_vote(
        &mut self,
        from: SiteId,
        yes: bool,
        max_version: Version,
        catalog: &Catalog,
        out: &mut Vec<Action>,
    ) {
        match self.phase {
            CoordPhase::SolicitingVotes => {}
            // A late vote after the decision: help the laggard.
            CoordPhase::Decided(d) => {
                out.push(self.decision_reply(d));
                return;
            }
            _ => return,
        }
        if !self.spec.participants.contains(&from) {
            return;
        }
        self.votes.insert(from, (yes, max_version));
        if !yes {
            // "The transaction can be committed iff every site votes yes."
            self.abort_unilaterally(out);
            return;
        }
        if self.votes.len() == self.spec.participants.len() {
            // All yes: fix the commit version — one past the newest copy
            // any participant holds (Gifford's currency rule).
            let v = self
                .votes
                .values()
                .map(|(_, v)| *v)
                .max()
                .unwrap_or(Version::INITIAL);
            self.commit_version = Some(v.next());
            match self.spec.protocol {
                // 2PC has no prepare round: all-yes is its commit point.
                // For a branch, durable yes votes *are* the prepared
                // state (classic hierarchical 2PC), so hold there.
                ProtocolKind::TwoPhase if self.spec.is_branch() => self.hold_and_vote_yes(out),
                ProtocolKind::TwoPhase => self.decide(Decision::Commit, out),
                _ => {
                    self.phase = CoordPhase::Preparing;
                    self.build_tallies(catalog);
                    let everyone: Vec<SiteId> = self.spec.participants.iter().copied().collect();
                    out.push(Action::Broadcast(
                        everyone,
                        Msg::PrepareCommit {
                            txn: self.spec.id,
                            commit_version: self.commit_version.expect("just set"),
                        },
                    ));
                    out.push(Action::SetTimer(TimerKind::AckCollection {
                        txn: self.spec.id,
                    }));
                }
            }
        }
    }

    fn decision_reply(&self, d: Decision) -> Action {
        match d {
            Decision::Commit => Action::Reply(Msg::Commit {
                txn: self.spec.id,
                commit_version: self.commit_version.expect("decided commit has version"),
            }),
            Decision::Abort => Action::Reply(Msg::Abort { txn: self.spec.id }),
        }
    }

    /// Handles a PC-ACK; commits when the protocol's commit point is
    /// reached.
    pub fn on_pc_ack(&mut self, from: SiteId, _catalog: &Catalog, out: &mut Vec<Action>) {
        if self.phase != CoordPhase::Preparing {
            return;
        }
        if self.pc_acks.insert(from) {
            // First ack from this site: fold its copy weights into the
            // per-item tallies (duplicates must not double-count).
            for t in &mut self.tallies {
                if let Some(&(_, w)) = t.copies.iter().find(|&&(s, _)| s == from) {
                    t.acked += w;
                }
            }
        }
        if self.commit_point_reached() {
            if self.spec.is_branch() {
                self.hold_and_vote_yes(out);
            } else {
                self.decide(Decision::Commit, out);
            }
        }
    }

    /// Branch commit point: instead of committing, hold and cast this
    /// shard's yes vote to the cross-shard coordinator. From here on the
    /// branch may not decide unilaterally — no log record is needed,
    /// because recovery of a (non-2PC-parented) branch coordinator never
    /// presumes abort; it rediscovers the outcome from the parent.
    fn hold_and_vote_yes(&mut self, out: &mut Vec<Action>) {
        let parent = self.spec.parent.expect("held only for branches");
        self.phase = CoordPhase::Held;
        out.push(Action::Send(
            parent,
            Msg::XVote {
                txn: self.spec.id,
                yes: true,
                commit_version: self.commit_version,
            },
        ));
    }

    /// Aborts before this branch voted yes (no vote received, or the
    /// vote window expired) — always safe: the parent has not counted a
    /// yes from this shard. A plain transaction aborts exactly as
    /// before; a branch additionally reports the no vote upward.
    fn abort_unilaterally(&mut self, out: &mut Vec<Action>) {
        self.decide(Decision::Abort, out);
        if let Some(parent) = self.spec.parent {
            out.push(Action::Send(
                parent,
                Msg::XVote {
                    txn: self.spec.id,
                    yes: false,
                    commit_version: None,
                },
            ));
        }
    }

    /// The cross-shard decision arrived (branches only): terminate the
    /// held branch with the parent's outcome. Idempotent once decided.
    pub fn on_x_decide(
        &mut self,
        decision: Decision,
        commit_version: Option<Version>,
        out: &mut Vec<Action>,
    ) {
        debug_assert!(self.spec.is_branch(), "X-DECIDE at a non-branch engine");
        match self.phase {
            CoordPhase::Decided(_) => {}
            _ => {
                if decision == Decision::Commit && commit_version.is_some() {
                    // The parent echoes the version we reported at Held;
                    // adopt it (defensive no-op in the normal case).
                    self.commit_version = commit_version;
                }
                self.decide(decision, out);
            }
        }
    }

    /// The protocol-specific commit point over the current ack set.
    /// The quorum tallies are maintained incrementally by `on_pc_ack`
    /// (from the catalog snapshot taken at prepare), so the check needs
    /// no catalog: it scans the writeset-sized tally list.
    fn commit_point_reached(&self) -> bool {
        match self.spec.protocol {
            ProtocolKind::TwoPhase => false, // no prepare phase
            ProtocolKind::ThreePhase => self.pc_acks.len() == self.spec.participants.len(),
            ProtocolKind::SkeenQuorum => {
                let sv = self.site_votes.as_ref().expect("validated in new()");
                sv.votes_among(&self.pc_acks) >= sv.commit_quorum
            }
            // QC1: w(x) PC-ACK votes for every x — "receiving these
            // PC-ACKs ensures that an abort quorum can never be formed".
            // An empty writeset has no item below quorum, matching the
            // catalog-walk semantics (`all` over nothing is true).
            ProtocolKind::QuorumCommit1 => {
                // Seeded mutation (`weaken_qc1`): one ack short of the
                // quorum "counts" — exactly the off-by-one the paper's
                // abort-quorum argument forbids.
                let slack = u32::from(self.weaken_qc1);
                self.tallies
                    .iter()
                    .all(|t| t.acked + slack >= t.write_quorum)
            }
            // QC2: r(x) PC-ACK votes for some x.
            ProtocolKind::QuorumCommit2 => self.tallies.iter().any(|t| t.acked >= t.read_quorum),
            // Paxos Commit runs its own engine ([`crate::PaxosLeader`]);
            // this coordinator never drives it.
            ProtocolKind::PaxosCommit => {
                unreachable!("Paxos Commit transactions use PaxosLeader, not Coordinator")
            }
        }
    }

    /// Commits or aborts: force-log the decision, then command everyone.
    fn decide(&mut self, decision: Decision, out: &mut Vec<Action>) {
        self.phase = CoordPhase::Decided(decision);
        let everyone: Vec<SiteId> = self.spec.participants.iter().copied().collect();
        match decision {
            Decision::Commit => {
                let v = self.commit_version.expect("commit implies version");
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.spec.id,
                    decision,
                    commit_version: Some(v),
                }));
                out.push(Action::Broadcast(
                    everyone,
                    Msg::Commit {
                        txn: self.spec.id,
                        commit_version: v,
                    },
                ));
            }
            Decision::Abort => {
                out.push(Action::Log(LogRecord::Decided {
                    txn: self.spec.id,
                    decision,
                    commit_version: None,
                }));
                out.push(Action::Broadcast(
                    everyone,
                    Msg::Abort { txn: self.spec.id },
                ));
            }
        }
    }

    /// Vote-collection window expired.
    pub fn on_vote_timer(&mut self, out: &mut Vec<Action>) {
        if self.phase != CoordPhase::SolicitingVotes {
            return;
        }
        // Missing votes: presumed-abort (safe for branches too — the
        // yes vote to the parent has not been cast).
        self.abort_unilaterally(out);
    }

    /// Ack-collection window expired.
    pub fn on_ack_timer(&mut self, _catalog: &Catalog, out: &mut Vec<Action>) {
        if self.phase != CoordPhase::Preparing {
            return;
        }
        match self.spec.protocol {
            // 3PC proceeds: non-acking participants are presumed crashed;
            // they will learn the outcome at recovery. (Under a
            // *partition* this presumption is exactly what Example 2
            // exploits — faithful to the original protocol.) A branch
            // holds at this commit point instead of committing.
            ProtocolKind::ThreePhase if self.spec.is_branch() => self.hold_and_vote_yes(out),
            ProtocolKind::ThreePhase => self.decide(Decision::Commit, out),
            // The quorum protocols may not commit below quorum: hand off
            // to the termination protocol (the coordinator is also a
            // participant and will take part).
            ProtocolKind::SkeenQuorum
            | ProtocolKind::QuorumCommit1
            | ProtocolKind::QuorumCommit2 => {
                if self.commit_point_reached() {
                    if self.spec.is_branch() {
                        self.hold_and_vote_yes(out);
                    } else {
                        self.decide(Decision::Commit, out);
                    }
                } else if self.spec.is_branch() {
                    // Below quorum, but PREPARE-TO-COMMITs are out: some
                    // participants may durably be in PC, so a unilateral
                    // abort is no longer this engine's call and the
                    // in-shard termination path is disabled for branches.
                    // Keep collecting: either the acks complete (→ Held)
                    // or the parent's vote window expires and X-DECIDE
                    // aborts the branch.
                } else {
                    self.phase = CoordPhase::HandedOff;
                    out.push(Action::RequestTermination { txn: self.spec.id });
                }
            }
            ProtocolKind::TwoPhase => {}
            ProtocolKind::PaxosCommit => {
                unreachable!("Paxos Commit transactions use PaxosLeader, not Coordinator")
            }
        }
    }
}

/// Collecting wrappers for unit tests: same engine calls, fresh buffer
/// per call (production code passes a reused scratch buffer instead).
#[cfg(test)]
impl Coordinator {
    fn start_v(&mut self) -> Vec<Action> {
        let mut v = Vec::new();
        self.start(&mut v);
        v
    }

    fn on_vote_v(
        &mut self,
        from: SiteId,
        yes: bool,
        max_version: Version,
        catalog: &Catalog,
    ) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_vote(from, yes, max_version, catalog, &mut v);
        v
    }

    fn on_pc_ack_v(&mut self, from: SiteId, catalog: &Catalog) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_pc_ack(from, catalog, &mut v);
        v
    }

    fn on_x_decide_v(
        &mut self,
        decision: Decision,
        commit_version: Option<Version>,
    ) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_x_decide(decision, commit_version, &mut v);
        v
    }

    fn on_vote_timer_v(&mut self) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_vote_timer(&mut v);
        v
    }

    fn on_ack_timer_v(&mut self, catalog: &Catalog) -> Vec<Action> {
        let mut v = Vec::new();
        self.on_ack_timer(catalog, &mut v);
        v
    }
}

/// Canonical state hash for the model checker's visited-set.
///
/// Hashes the live protocol state — phase, recorded votes, PC-ACK set,
/// quorum tallies and the chosen commit version — all held in ordered
/// containers, so the rendering is canonical. The spec is excluded: it
/// is fixed per transaction id, which the node-level fingerprint hashes.
impl qbc_simnet::Fingerprint for Coordinator {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                self.phase, self.votes, self.pc_acks, self.tallies, self.commit_version
            )
            .as_bytes(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WriteSet;
    use qbc_votes::{CatalogBuilder, ItemId};

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .quorums(2, 3)
            .item(ItemId(1), "y")
            .copies_at([SiteId(5), SiteId(6), SiteId(7), SiteId(8)])
            .quorums(2, 3)
            .build()
            .unwrap()
    }

    fn spec(protocol: ProtocolKind) -> std::sync::Arc<TxnSpec> {
        std::sync::Arc::new(TxnSpec {
            id: TxnId(9),
            coordinator: SiteId(1),
            writeset: WriteSet::new([(ItemId(0), 10), (ItemId(1), 20)]),
            participants: (1..=8).map(SiteId).collect(),
            protocol,
            parent: None,
        })
    }

    fn all_yes(c: &mut Coordinator, cat: &Catalog, upto: u32) -> Vec<Action> {
        let mut last = Vec::new();
        for s in 1..=upto {
            last = c.on_vote_v(SiteId(s), true, Version(0), cat);
        }
        last
    }

    #[test]
    fn two_pc_commits_on_last_yes_vote() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        let start = c.start_v();
        assert!(matches!(
            start[0],
            Action::Log(LogRecord::CoordinatorStart { .. })
        ));
        assert!(matches!(
            start[1],
            Action::Broadcast(_, Msg::VoteReq { .. })
        ));
        let actions = all_yes(&mut c, &cat, 8);
        // Decision logged before the command is sent.
        assert!(matches!(actions[0], Action::Log(LogRecord::Decided { .. })));
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Commit));
        assert_eq!(c.commit_version(), Some(Version(1)));
    }

    #[test]
    fn any_no_vote_aborts() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        c.start_v();
        c.on_vote_v(SiteId(1), true, Version(0), &cat);
        let actions = c.on_vote_v(SiteId(2), false, Version(0), &cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Abort));
    }

    #[test]
    fn commit_version_is_max_reported_plus_one() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        c.start_v();
        for s in 1..=7u32 {
            c.on_vote_v(SiteId(s), true, Version(s as u64), &cat);
        }
        c.on_vote_v(SiteId(8), true, Version(3), &cat);
        assert_eq!(c.commit_version(), Some(Version(8)));
    }

    #[test]
    fn three_pc_waits_for_all_acks() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::ThreePhase), None);
        c.start_v();
        let actions = all_yes(&mut c, &cat, 8);
        assert!(matches!(
            actions[0],
            Action::Broadcast(_, Msg::PrepareCommit { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Preparing);
        for s in 1..=7u32 {
            assert!(
                c.on_pc_ack_v(SiteId(s), &cat).is_empty(),
                "must wait for all"
            );
        }
        let actions = c.on_pc_ack_v(SiteId(8), &cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn qc1_commits_at_write_quorum_of_every_item() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        // Acks from s1,s2,s3 (3 = w(x) votes of x, 0 of y): not yet.
        for s in 1..=3u32 {
            assert!(c.on_pc_ack_v(SiteId(s), &cat).is_empty());
        }
        // s5,s6: y at 2 < 3.
        assert!(c.on_pc_ack_v(SiteId(5), &cat).is_empty());
        assert!(c.on_pc_ack_v(SiteId(6), &cat).is_empty());
        // s7 completes w(y)=3 → commit with 5-of-8 acks outstanding... 6 acks.
        let actions = c.on_pc_ack_v(SiteId(7), &cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn qc2_commits_at_read_quorum_of_some_item() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::QuorumCommit2), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        assert!(
            c.on_pc_ack_v(SiteId(1), &cat).is_empty(),
            "1 vote of x < r=2"
        );
        // Second x-copy ack reaches r(x)=2 → commit after only 2 acks:
        // QC2's speed advantage over QC1.
        let actions = c.on_pc_ack_v(SiteId(2), &cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn skeen_commits_at_vc_site_votes() {
        let cat = catalog();
        let sv = SiteVotes::uniform((1..=8).map(SiteId), 5, 4);
        let mut c = Coordinator::new(spec(ProtocolKind::SkeenQuorum), Some(sv));
        c.start_v();
        all_yes(&mut c, &cat, 8);
        for s in 1..=4u32 {
            assert!(c.on_pc_ack_v(SiteId(s), &cat).is_empty());
        }
        let actions = c.on_pc_ack_v(SiteId(5), &cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn vote_timeout_aborts() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        all_yes(&mut c, &cat, 4); // half the votes
        let actions = c.on_vote_timer_v();
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Abort));
    }

    #[test]
    fn three_pc_ack_timeout_commits_anyway() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::ThreePhase), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        c.on_pc_ack_v(SiteId(1), &cat);
        let actions = c.on_ack_timer_v(&cat);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
    }

    #[test]
    fn qc1_ack_timeout_below_quorum_hands_off() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        c.on_pc_ack_v(SiteId(1), &cat);
        let actions = c.on_ack_timer_v(&cat);
        assert!(matches!(actions[0], Action::RequestTermination { .. }));
        assert_eq!(c.phase(), CoordPhase::HandedOff);
    }

    #[test]
    fn late_vote_after_decision_gets_the_command() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        let actions = c.on_vote_v(SiteId(3), true, Version(0), &cat);
        assert!(matches!(actions[0], Action::Reply(Msg::Commit { .. })));
    }

    #[test]
    fn votes_from_non_participants_ignored() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::TwoPhase), None);
        c.start_v();
        assert!(c.on_vote_v(SiteId(99), true, Version(0), &cat).is_empty());
        assert_eq!(c.phase(), CoordPhase::SolicitingVotes);
    }

    fn branch_spec(protocol: ProtocolKind) -> std::sync::Arc<TxnSpec> {
        std::sync::Arc::new(TxnSpec {
            parent: Some(SiteId(42)),
            ..(*spec(protocol)).clone()
        })
    }

    #[test]
    fn branch_holds_at_commit_point_and_votes_yes_upward() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::QuorumCommit2), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        assert!(c.on_pc_ack_v(SiteId(1), &cat).is_empty());
        let actions = c.on_pc_ack_v(SiteId(2), &cat);
        assert!(
            matches!(
                actions[0],
                Action::Send(
                    SiteId(42),
                    Msg::XVote {
                        yes: true,
                        commit_version: Some(Version(1)),
                        ..
                    }
                )
            ),
            "commit point of a branch casts the X vote instead of committing: {actions:?}"
        );
        assert_eq!(c.phase(), CoordPhase::Held);
    }

    #[test]
    fn branch_two_phase_holds_on_all_yes() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::TwoPhase), None);
        c.start_v();
        let actions = all_yes(&mut c, &cat, 8);
        assert!(matches!(
            actions[0],
            Action::Send(SiteId(42), Msg::XVote { yes: true, .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Held);
    }

    #[test]
    fn branch_no_vote_aborts_and_reports_upward() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        c.on_vote_v(SiteId(1), true, Version(0), &cat);
        let actions = c.on_vote_v(SiteId(2), false, Version(0), &cat);
        assert!(matches!(actions[0], Action::Log(LogRecord::Decided { .. })));
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
        assert!(matches!(
            actions.last(),
            Some(Action::Send(SiteId(42), Msg::XVote { yes: false, .. }))
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Abort));
    }

    #[test]
    fn branch_ack_timeout_below_quorum_keeps_waiting() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        c.on_pc_ack_v(SiteId(1), &cat);
        assert!(
            c.on_ack_timer_v(&cat).is_empty(),
            "a branch below quorum must not hand off to in-shard termination"
        );
        assert_eq!(c.phase(), CoordPhase::Preparing);
    }

    #[test]
    fn x_decide_terminates_a_held_branch() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::QuorumCommit2), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        c.on_pc_ack_v(SiteId(1), &cat);
        c.on_pc_ack_v(SiteId(2), &cat);
        assert_eq!(c.phase(), CoordPhase::Held);
        let actions = c.on_x_decide_v(Decision::Commit, Some(Version(1)));
        assert!(matches!(actions[0], Action::Log(LogRecord::Decided { .. })));
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Commit { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Commit));
        // Idempotent once decided.
        assert!(c
            .on_x_decide_v(Decision::Commit, Some(Version(1)))
            .is_empty());
    }

    #[test]
    fn x_decide_abort_terminates_a_preparing_branch() {
        let cat = catalog();
        let mut c = Coordinator::new(branch_spec(ProtocolKind::QuorumCommit1), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        let actions = c.on_x_decide_v(Decision::Abort, None);
        assert!(matches!(
            actions[1],
            Action::Broadcast(_, Msg::Abort { .. })
        ));
        assert_eq!(c.phase(), CoordPhase::Decided(Decision::Abort));
    }

    #[test]
    fn stale_ack_timer_after_decision_is_noop() {
        let cat = catalog();
        let mut c = Coordinator::new(spec(ProtocolKind::ThreePhase), None);
        c.start_v();
        all_yes(&mut c, &cat, 8);
        for s in 1..=8u32 {
            c.on_pc_ack_v(SiteId(s), &cat);
        }
        assert!(c.on_ack_timer_v(&cat).is_empty());
        assert!(c.on_vote_timer_v().is_empty());
    }
}
