//! The cross-shard transaction coordinator: a top-level two-phase
//! commit over per-shard branches.
//!
//! A cross-shard writeset is split into one *branch* per involved shard
//! (all sharing the global [`TxnId`] — shards own disjoint site sets).
//! Each branch runs the paper's quorum-based commit protocol inside its
//! shard as the "resource manager" of Gray & Lamport's *Consensus on
//! Transaction Commit*: the branch coordinator drives the in-shard vote
//! and prepare rounds, and at its commit point it *holds*
//! ([`crate::CoordPhase::Held`]) and casts this shard's yes vote upward
//! instead of committing. This engine collects those votes:
//!
//! * any no vote, or the vote window expiring, decides **abort**;
//! * all branches yes decides **commit** — the decision is force-logged
//!   ([`LogRecord::XDecision`]) *before* any `X-DECIDE` leaves the
//!   site, making the log record the cross-shard commit point;
//! * the decision is relayed to every branch coordinator, re-announced
//!   on recovery, and served to any orphaned branch site that asks via
//!   `X-OUTCOME-REQ` (the branches' replacement for the in-shard
//!   termination protocol, which may not run while a branch is held).
//!
//! Like every engine in this crate it is sans-IO: inputs are messages
//! and timer expiries, outputs are [`Action`]s applied by the driver.

use crate::actions::{Action, TimerKind};
use crate::log::{LogRecord, RecoveredXTxn};
use crate::messages::Msg;
use crate::types::{Decision, TxnId, TxnSpec};
use qbc_simnet::SiteId;
use qbc_votes::Version;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cross-shard coordinator progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XPhase {
    /// Waiting for every branch's vote.
    CollectingVotes,
    /// Top-level decision logged and relayed.
    Decided(Decision),
}

/// The top-level 2PC engine for one cross-shard transaction, hosted at
/// the parent site named in every branch spec.
#[derive(Clone, Debug)]
pub struct XTxnCoordinator {
    txn: TxnId,
    branches: Vec<Arc<TxnSpec>>,
    /// Vote per branch, keyed by the branch's coordinator site:
    /// `(yes, in-shard commit version)`.
    votes: BTreeMap<SiteId, (bool, Option<Version>)>,
    phase: XPhase,
}

impl XTxnCoordinator {
    /// Creates the engine over the branch specs (one per shard, each
    /// with `parent` set to this site).
    pub fn new(txn: TxnId, branches: Vec<Arc<TxnSpec>>) -> Self {
        debug_assert!(!branches.is_empty(), "a cross-shard txn needs branches");
        debug_assert!(
            branches.iter().all(|b| b.id == txn && b.is_branch()),
            "branches must share the txn id and carry the parent"
        );
        XTxnCoordinator {
            txn,
            branches,
            votes: BTreeMap::new(),
            phase: XPhase::CollectingVotes,
        }
    }

    /// Rebuilds the engine from recovered durable state and returns the
    /// recovery actions: a transaction recovered *undecided* is presumed
    /// aborted (no durable [`LogRecord::XDecision`] proves no commit
    /// `X-DECIDE` ever left this site); a recovered decision is
    /// re-announced to every branch coordinator.
    pub fn from_recovery(txn: TxnId, rec: &RecoveredXTxn) -> (Self, Vec<Action>) {
        let mut x = XTxnCoordinator::new(txn, rec.branches.clone());
        match &rec.decision {
            None => {
                let actions = x.decide(Decision::Abort);
                (x, actions)
            }
            Some((decision, branch_versions)) => {
                for &(coord, v) in branch_versions {
                    x.votes.insert(coord, (*decision == Decision::Commit, v));
                }
                x.phase = XPhase::Decided(*decision);
                let actions = x.relay_decision(*decision);
                (x, actions)
            }
        }
    }

    /// The cross-shard transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Current phase.
    pub fn phase(&self) -> XPhase {
        self.phase
    }

    /// The top-level decision, once reached.
    pub fn decision(&self) -> Option<Decision> {
        match self.phase {
            XPhase::Decided(d) => Some(d),
            XPhase::CollectingVotes => None,
        }
    }

    /// The branch specs, in submission order.
    pub fn branches(&self) -> &[Arc<TxnSpec>] {
        &self.branches
    }

    /// Kicks off the top-level protocol: durably record the branch set,
    /// then ask every branch coordinator to run its in-shard protocol.
    pub fn start(&mut self) -> Vec<Action> {
        let mut actions = Vec::with_capacity(self.branches.len() + 2);
        actions.push(Action::Log(LogRecord::XStart {
            txn: self.txn,
            branches: self.branches.clone(),
        }));
        for b in &self.branches {
            // Each branch learns its siblings' coordinators so an
            // orphaned branch can ask *them* for the outcome when this
            // parent is down (cooperative outcome discovery).
            let siblings = self
                .branches
                .iter()
                .map(|o| o.coordinator)
                .filter(|&c| c != b.coordinator)
                .collect();
            actions.push(Action::Send(
                b.coordinator,
                Msg::XBranchReq {
                    spec: Arc::clone(b),
                    siblings,
                },
            ));
        }
        actions.push(Action::SetTimer(TimerKind::XVoteCollection {
            txn: self.txn,
        }));
        actions
    }

    /// Handles a branch's vote. A vote from an unknown site is ignored;
    /// a vote arriving after the decision is answered with it (the
    /// sender is a held branch coordinator that needs the outcome).
    pub fn on_vote(
        &mut self,
        from: SiteId,
        yes: bool,
        commit_version: Option<Version>,
    ) -> Vec<Action> {
        if !self.branches.iter().any(|b| b.coordinator == from) {
            return Vec::new();
        }
        if let XPhase::Decided(d) = self.phase {
            return vec![Action::Send(from, self.xdecide_for(from, d))];
        }
        self.votes.insert(from, (yes, commit_version));
        if !yes {
            return self.decide(Decision::Abort);
        }
        if self.votes.len() == self.branches.len() && self.votes.values().all(|(y, _)| *y) {
            self.decide(Decision::Commit)
        } else {
            Vec::new()
        }
    }

    /// The vote-collection window expired: top-level presumed abort for
    /// whatever is still missing.
    pub fn on_vote_timer(&mut self) -> Vec<Action> {
        match self.phase {
            XPhase::CollectingVotes => self.decide(Decision::Abort),
            XPhase::Decided(_) => Vec::new(),
        }
    }

    /// An orphaned branch site asks for the outcome: answer once
    /// decided, stay silent while collecting (the asker's watchdog
    /// retries).
    pub fn on_outcome_req(&mut self, from: SiteId) -> Vec<Action> {
        match self.phase {
            XPhase::Decided(d) => vec![Action::Send(from, self.xdecide_for(from, d))],
            XPhase::CollectingVotes => Vec::new(),
        }
    }

    /// `(branch coordinator, in-shard commit version)` per branch, in
    /// branch order — the payload of [`LogRecord::XDecision`].
    pub fn branch_versions(&self) -> Vec<(SiteId, Option<Version>)> {
        self.branches
            .iter()
            .map(|b| {
                (
                    b.coordinator,
                    self.votes.get(&b.coordinator).and_then(|(_, v)| *v),
                )
            })
            .collect()
    }

    /// The in-shard commit version of the branch `site` belongs to (as
    /// its coordinator or as a participant).
    pub fn version_for_site(&self, site: SiteId) -> Option<Version> {
        self.branches
            .iter()
            .find(|b| b.coordinator == site || b.participants.contains(&site))
            .and_then(|b| self.votes.get(&b.coordinator))
            .and_then(|(_, v)| *v)
    }

    fn xdecide_for(&self, to: SiteId, decision: Decision) -> Msg {
        Msg::XDecide {
            txn: self.txn,
            decision,
            commit_version: match decision {
                Decision::Commit => self.version_for_site(to),
                Decision::Abort => None,
            },
        }
    }

    /// Reaches the top-level decision: force-log it (the cross-shard
    /// commit point), then relay it to every branch coordinator. The
    /// driver's durability barrier keeps the sends behind the force.
    fn decide(&mut self, decision: Decision) -> Vec<Action> {
        self.phase = XPhase::Decided(decision);
        let mut actions = Vec::with_capacity(self.branches.len() + 1);
        actions.push(Action::Log(LogRecord::XDecision {
            txn: self.txn,
            decision,
            branch_versions: self.branch_versions(),
        }));
        actions.extend(self.relay_decision(decision));
        actions
    }

    fn relay_decision(&self, decision: Decision) -> Vec<Action> {
        self.branches
            .iter()
            .map(|b| Action::Send(b.coordinator, self.xdecide_for(b.coordinator, decision)))
            .collect()
    }
}

/// Canonical state hash for the model checker's visited-set.
///
/// Hashes the phase and the per-branch votes (an ordered map). The
/// branch specs are excluded: they are fixed for the transaction's
/// lifetime and the node-level fingerprint covers the transaction id.
impl qbc_simnet::Fingerprint for XTxnCoordinator {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(format!("{:?}|{:?}", self.phase, self.votes).as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ProtocolKind, WriteSet};
    use qbc_votes::ItemId;

    fn branch(coord: u32, participants: &[u32], item: u32) -> Arc<TxnSpec> {
        Arc::new(TxnSpec {
            id: TxnId(7),
            coordinator: SiteId(coord),
            writeset: WriteSet::new([(ItemId(item), 1)]),
            participants: participants.iter().copied().map(SiteId).collect(),
            protocol: ProtocolKind::QuorumCommit2,
            parent: Some(SiteId(0)),
        })
    }

    fn engine() -> XTxnCoordinator {
        XTxnCoordinator::new(
            TxnId(7),
            vec![branch(0, &[0, 1, 2], 0), branch(3, &[3, 4, 5], 10)],
        )
    }

    #[test]
    fn start_logs_before_soliciting_branches() {
        let mut x = engine();
        let actions = x.start();
        assert!(matches!(actions[0], Action::Log(LogRecord::XStart { .. })));
        // Each solicitation names the *other* branch coordinators so an
        // orphaned branch can run cooperative outcome discovery.
        match &actions[1] {
            Action::Send(SiteId(0), Msg::XBranchReq { siblings, .. }) => {
                assert_eq!(siblings, &vec![SiteId(3)]);
            }
            other => panic!("expected X-BRANCH-REQ to site 0, got {other:?}"),
        }
        match &actions[2] {
            Action::Send(SiteId(3), Msg::XBranchReq { siblings, .. }) => {
                assert_eq!(siblings, &vec![SiteId(0)]);
            }
            other => panic!("expected X-BRANCH-REQ to site 3, got {other:?}"),
        }
        assert!(matches!(
            actions[3],
            Action::SetTimer(TimerKind::XVoteCollection { .. })
        ));
    }

    #[test]
    fn all_yes_commits_with_per_branch_versions() {
        let mut x = engine();
        x.start();
        assert!(x.on_vote(SiteId(0), true, Some(Version(3))).is_empty());
        let actions = x.on_vote(SiteId(3), true, Some(Version(8)));
        assert!(matches!(
            actions[0],
            Action::Log(LogRecord::XDecision {
                decision: Decision::Commit,
                ..
            })
        ));
        // Each branch coordinator gets its own shard's version.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(
                SiteId(0),
                Msg::XDecide {
                    decision: Decision::Commit,
                    commit_version: Some(Version(3)),
                    ..
                }
            )
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(
                SiteId(3),
                Msg::XDecide {
                    commit_version: Some(Version(8)),
                    ..
                }
            )
        )));
        assert_eq!(x.decision(), Some(Decision::Commit));
    }

    #[test]
    fn any_no_vote_aborts_every_branch() {
        let mut x = engine();
        x.start();
        x.on_vote(SiteId(0), true, Some(Version(3)));
        let actions = x.on_vote(SiteId(3), false, None);
        assert!(matches!(
            actions[0],
            Action::Log(LogRecord::XDecision {
                decision: Decision::Abort,
                ..
            })
        ));
        assert_eq!(
            actions.len(),
            3,
            "abort relayed to both branches: {actions:?}"
        );
        assert_eq!(x.decision(), Some(Decision::Abort));
    }

    #[test]
    fn vote_timeout_presumes_abort() {
        let mut x = engine();
        x.start();
        x.on_vote(SiteId(0), true, Some(Version(3)));
        let actions = x.on_vote_timer();
        assert_eq!(x.decision(), Some(Decision::Abort));
        assert!(matches!(
            actions[0],
            Action::Log(LogRecord::XDecision { .. })
        ));
        assert!(x.on_vote_timer().is_empty(), "timer is idempotent");
    }

    #[test]
    fn late_vote_after_decision_gets_the_outcome() {
        let mut x = engine();
        x.start();
        x.on_vote(SiteId(3), false, None);
        let actions = x.on_vote(SiteId(0), true, Some(Version(3)));
        assert!(matches!(
            actions[0],
            Action::Send(
                SiteId(0),
                Msg::XDecide {
                    decision: Decision::Abort,
                    ..
                }
            )
        ));
    }

    #[test]
    fn outcome_req_served_by_participant_branch_lookup() {
        let mut x = engine();
        x.start();
        assert!(
            x.on_outcome_req(SiteId(4)).is_empty(),
            "undecided discovery stays silent"
        );
        x.on_vote(SiteId(0), true, Some(Version(3)));
        x.on_vote(SiteId(3), true, Some(Version(8)));
        // Site 4 participates in the second branch: gets that version.
        let actions = x.on_outcome_req(SiteId(4));
        assert!(matches!(
            actions[0],
            Action::Send(
                SiteId(4),
                Msg::XDecide {
                    decision: Decision::Commit,
                    commit_version: Some(Version(8)),
                    ..
                }
            )
        ));
    }

    #[test]
    fn votes_from_unknown_sites_are_ignored() {
        let mut x = engine();
        x.start();
        assert!(x.on_vote(SiteId(9), false, None).is_empty());
        assert_eq!(x.decision(), None);
    }

    #[test]
    fn recovery_without_decision_presumes_abort() {
        let rec = RecoveredXTxn {
            branches: vec![branch(0, &[0, 1, 2], 0), branch(3, &[3, 4, 5], 10)],
            decision: None,
        };
        let (x, actions) = XTxnCoordinator::from_recovery(TxnId(7), &rec);
        assert_eq!(x.decision(), Some(Decision::Abort));
        assert!(matches!(
            actions[0],
            Action::Log(LogRecord::XDecision {
                decision: Decision::Abort,
                ..
            })
        ));
    }

    #[test]
    fn recovery_with_decision_reannounces_without_relogging() {
        let rec = RecoveredXTxn {
            branches: vec![branch(0, &[0, 1, 2], 0), branch(3, &[3, 4, 5], 10)],
            decision: Some((
                Decision::Commit,
                vec![(SiteId(0), Some(Version(3))), (SiteId(3), Some(Version(8)))],
            )),
        };
        let (x, actions) = XTxnCoordinator::from_recovery(TxnId(7), &rec);
        assert_eq!(x.decision(), Some(Decision::Commit));
        assert!(
            actions.iter().all(|a| !matches!(a, Action::Log(_))),
            "re-announce must not duplicate the decision record"
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(
                SiteId(3),
                Msg::XDecide {
                    commit_version: Some(Version(8)),
                    ..
                }
            )
        )));
        assert_eq!(x.version_for_site(SiteId(2)), Some(Version(3)));
    }
}
