//! Property tests on the termination rule tables: the vote arithmetic
//! that makes Lemmas 1 and 2 go through, checked over random catalogs
//! and random disjoint partitions.

use proptest::prelude::*;
use qbc_core::rules::{phase2, Phase2Outcome, StateView, TerminationKind};
use qbc_core::{Decision, LocalState, ProtocolKind, SiteVotes, TxnId, TxnSpec, WriteSet};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, CatalogBuilder, ItemId};
use std::collections::BTreeMap;

/// A random catalog of `n_items` items over `n_sites` sites with valid
/// quorums, plus a spec writing every item.
fn arb_world() -> impl Strategy<Value = (Catalog, TxnSpec)> {
    (2u32..=3, 4u32..=8).prop_flat_map(|(n_items, n_sites)| {
        // copies: each item at `c` consecutive sites, unit votes.
        (3u32..=n_sites.min(5)).prop_flat_map(move |c| {
            // write quorum in (c/2, c], read = c - w + 1.
            (c / 2 + 1..=c).prop_map(move |w| {
                let r = c - w + 1;
                let mut b = CatalogBuilder::new();
                for i in 0..n_items {
                    b = b.item(ItemId(i), format!("x{i}"));
                    for k in 0..c {
                        b = b.copy(SiteId((i + k) % n_sites), 1);
                    }
                    b = b.quorums(r, w);
                }
                let catalog = b.build().expect("valid random catalog");
                let ws = WriteSet::new((0..n_items).map(|i| (ItemId(i), 1)));
                let spec = TxnSpec::from_catalog(
                    TxnId(1),
                    SiteId(0),
                    ws,
                    ProtocolKind::QuorumCommit1,
                    &catalog,
                );
                (catalog, spec)
            })
        })
    })
}

/// Assigns each participant a non-terminal state: W, PC or PA.
fn arb_states(n: usize) -> impl Strategy<Value = Vec<LocalState>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(LocalState::Wait),
            1 => Just(LocalState::PreCommit),
            1 => Just(LocalState::PreAbort),
        ],
        n,
    )
}

fn commitish(o: Phase2Outcome) -> bool {
    matches!(
        o,
        Phase2Outcome::AttemptCommit | Phase2Outcome::Immediate(Decision::Commit)
    )
}

fn abortish(o: Phase2Outcome) -> bool {
    matches!(
        o,
        Phase2Outcome::AttemptAbort | Phase2Outcome::Immediate(Decision::Abort)
    )
}

proptest! {
    /// The heart of the safety proof: two *disjoint* partitions can
    /// never see a commit-capable view and an abort-capable view for
    /// the same transaction under TP1 or TP2 (with only non-terminal
    /// states, i.e. before any command has landed).
    #[test]
    fn disjoint_views_never_pull_apart(
        (catalog, spec) in arb_world(),
        states in arb_states(12),
        split_bits in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let participants: Vec<SiteId> = spec.participants.iter().copied().collect();
        let assign: BTreeMap<SiteId, LocalState> = participants
            .iter()
            .zip(states.iter())
            .map(|(&s, &st)| (s, st))
            .collect();
        let left = StateView::from_pairs(
            participants
                .iter()
                .enumerate()
                .filter(|(i, _)| split_bits.get(*i).copied().unwrap_or(false))
                .map(|(_, &s)| (s, assign[&s])),
        );
        let right = StateView::from_pairs(
            participants
                .iter()
                .enumerate()
                .filter(|(i, _)| !split_bits.get(*i).copied().unwrap_or(false))
                .map(|(_, &s)| (s, assign[&s])),
        );
        if left.is_empty() || right.is_empty() {
            return Ok(());
        }
        for kind in [TerminationKind::Tp1, TerminationKind::Tp2] {
            let l = phase2(&kind, &catalog, &spec, &left);
            let r = phase2(&kind, &catalog, &spec, &right);
            prop_assert!(
                !(commitish(l) && abortish(r)),
                "{:?}: left {l:?} vs right {r:?}\nleft={left:?}\nright={right:?}",
                kind.name()
            );
            prop_assert!(
                !(abortish(l) && commitish(r)),
                "{:?}: left {l:?} vs right {r:?}",
                kind.name()
            );
        }
    }

    /// Skeen's site-vote rules have the same pairwise-exclusion
    /// property when Vc + Va > V.
    #[test]
    fn skeen_disjoint_views_never_pull_apart(
        (catalog, spec) in arb_world(),
        states in arb_states(12),
        split_bits in proptest::collection::vec(proptest::bool::ANY, 12),
        vc_extra in 0u32..3,
    ) {
        let participants: Vec<SiteId> = spec.participants.iter().copied().collect();
        let n = participants.len() as u32;
        // Vc + Va = n + 1 (+ extra margin on Vc).
        let vc = (n / 2 + 1 + vc_extra).min(n);
        let va = n + 1 - vc;
        let sv = SiteVotes::uniform(participants.iter().copied(), vc, va);
        prop_assume!(sv.validate().is_ok());
        let kind = TerminationKind::SkeenQuorum(sv);
        let assign: BTreeMap<SiteId, LocalState> = participants
            .iter()
            .zip(states.iter())
            .map(|(&s, &st)| (s, st))
            .collect();
        let left = StateView::from_pairs(
            participants
                .iter()
                .enumerate()
                .filter(|(i, _)| split_bits.get(*i).copied().unwrap_or(false))
                .map(|(_, &s)| (s, assign[&s])),
        );
        let right = StateView::from_pairs(
            participants
                .iter()
                .enumerate()
                .filter(|(i, _)| !split_bits.get(*i).copied().unwrap_or(false))
                .map(|(_, &s)| (s, assign[&s])),
        );
        if left.is_empty() || right.is_empty() {
            return Ok(());
        }
        let l = phase2(&kind, &catalog, &spec, &left);
        let r = phase2(&kind, &catalog, &spec, &right);
        prop_assert!(!(commitish(l) && abortish(r)), "left {l:?} vs right {r:?}");
        prop_assert!(!(abortish(l) && commitish(r)), "left {l:?} vs right {r:?}");
    }

    /// Monotonicity of the immediate-commit rule: growing the PC set of
    /// a view never turns an immediate commit into anything else
    /// (TP1/TP2 rule 1 counts PC votes positively).
    #[test]
    fn immediate_commit_is_monotone_in_pc(
        (catalog, spec) in arb_world(),
        pc_bits in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let participants: Vec<SiteId> = spec.participants.iter().copied().collect();
        let base = StateView::from_pairs(participants.iter().enumerate().map(|(i, &s)| {
            (
                s,
                if pc_bits.get(i).copied().unwrap_or(false) {
                    LocalState::PreCommit
                } else {
                    LocalState::Wait
                },
            )
        }));
        let all_pc = StateView::from_pairs(
            participants.iter().map(|&s| (s, LocalState::PreCommit)),
        );
        for kind in [TerminationKind::Tp1, TerminationKind::Tp2] {
            if phase2(&kind, &catalog, &spec, &base)
                == Phase2Outcome::Immediate(Decision::Commit)
            {
                prop_assert_eq!(
                    phase2(&kind, &catalog, &spec, &all_pc),
                    Phase2Outcome::Immediate(Decision::Commit)
                );
            }
        }
    }

    /// The rule table is total and never panics for arbitrary views,
    /// including terminal and initial states.
    #[test]
    fn phase2_is_total(
        (catalog, spec) in arb_world(),
        raw_states in proptest::collection::vec(0u8..6, 12),
    ) {
        use LocalState::*;
        let participants: Vec<SiteId> = spec.participants.iter().copied().collect();
        let view = StateView::from_pairs(participants.iter().enumerate().map(|(i, &s)| {
            let st = match raw_states.get(i).copied().unwrap_or(0) {
                0 => Initial,
                1 => Wait,
                2 => PreCommit,
                3 => PreAbort,
                4 => Committed,
                _ => Aborted,
            };
            (s, st)
        }));
        for kind in [
            TerminationKind::TwoPcCooperative,
            TerminationKind::ThreePcSiteFailure,
            TerminationKind::Tp1,
            TerminationKind::Tp2,
        ] {
            let _ = phase2(&kind, &catalog, &spec, &view);
        }
    }
}
