//! Length-prefixed nonblocking socket framing with write backpressure.
//!
//! Wire format: `[len: u32 LE][payload: len bytes]`, `len` capped at
//! [`MAX_FRAME`] so a corrupt or hostile peer cannot make the reader
//! buffer unbounded garbage.
//!
//! Both halves are plain buffers around a nonblocking stream:
//!
//! * [`FrameReader`] pulls whatever the socket has (`WouldBlock` ends
//!   the slurp), then yields complete frames zero-copy via
//!   [`FrameReader::next_frame`].
//! * [`FrameWriter`] queues frames and flushes opportunistically;
//!   [`FrameWriter::queued`] is the backpressure signal — when it
//!   crosses the owner's high-water mark the owner stops *reading* from
//!   the connection's peer (stops accepting new work) until the buffer
//!   drains, so one slow consumer never wedges the reactor.

use std::io::{self, Read, Write};

/// Largest accepted frame payload (1 MiB — an order of magnitude above
/// anything the client protocol produces).
pub const MAX_FRAME: usize = 1 << 20;

/// What a read slurp observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadState {
    /// Socket open, everything currently available was buffered.
    Open,
    /// Peer closed (EOF) — drain remaining frames, then drop the
    /// connection.
    Closed,
}

/// Inbound half: buffers socket bytes, yields complete frames.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix; compacted lazily so steady streaming does not
    /// memmove per frame.
    start: usize,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads everything currently available from the nonblocking
    /// `stream` into the buffer. Returns the stream state; a real IO
    /// error propagates (the connection is unusable).
    pub fn fill(&mut self, mut stream: impl Read) -> io::Result<ReadState> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadState::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadState::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// The next complete frame, if one is buffered. An oversized length
    /// prefix is a protocol violation reported as an error; the owner
    /// drops the connection.
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        self.compact();
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME}"),
            ));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let begin = self.start + 4;
        self.start = begin + len;
        Ok(Some(&self.buf[begin..begin + len]))
    }

    /// Bytes buffered but not yet yielded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Outbound half: queues frames, flushes without blocking.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    /// Flushed prefix (same lazy compaction as the reader).
    start: usize,
}

impl FrameWriter {
    /// A writer with an empty queue.
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Queues one frame.
    pub fn push(&mut self, payload: &[u8]) {
        assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Writes as much queued data as the nonblocking `stream` accepts.
    /// Returns `true` when the queue is fully drained.
    pub fn flush(&mut self, mut stream: impl Write) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(self.buf.is_empty())
    }

    /// Bytes queued and not yet written — the backpressure signal.
    pub fn queued(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An `io::Read`/`io::Write` stub that transfers at most `cap`
    /// bytes per call and then reports `WouldBlock`, like a socket with
    /// a tiny kernel buffer.
    struct Chokepoint {
        data: Vec<u8>,
        cap: usize,
        pos: usize,
    }

    impl Read for Chokepoint {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
            }
            let n = buf.len().min(self.cap).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Chokepoint {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.pos >= self.cap {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap - self.pos);
            self.data.extend_from_slice(&buf[..n]);
            self.pos += n;
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_survive_arbitrary_fragmentation() {
        let mut w = FrameWriter::new();
        w.push(b"alpha");
        w.push(b"");
        w.push(&[7u8; 300]);
        let mut wire = Chokepoint {
            data: Vec::new(),
            cap: usize::MAX,
            pos: 0,
        };
        assert!(w.flush(&mut wire).unwrap());

        // Deliver the byte stream 3 bytes at a time.
        let mut r = FrameReader::new();
        let mut src = Chokepoint {
            data: wire.data,
            cap: 3,
            pos: 0,
        };
        assert_eq!(r.fill(&mut src).unwrap(), ReadState::Open);
        let mut got = Vec::new();
        while let Some(f) = r.next_frame().unwrap() {
            got.push(f.to_vec());
        }
        assert_eq!(got, vec![b"alpha".to_vec(), Vec::new(), vec![7u8; 300]]);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn writer_reports_backpressure_and_resumes() {
        let mut w = FrameWriter::new();
        w.push(&[1u8; 100]);
        let mut wire = Chokepoint {
            data: Vec::new(),
            cap: 10,
            pos: 0,
        };
        assert!(!w.flush(&mut wire).unwrap(), "choked after 10 bytes");
        assert_eq!(w.queued(), 104 - 10);
        // The "socket" drains; flushing finishes.
        wire.cap = usize::MAX;
        assert!(w.flush(&mut wire).unwrap());
        assert_eq!(w.queued(), 0);
        assert_eq!(wire.data.len(), 104);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut r = FrameReader::new();
        let mut src = Chokepoint {
            data: ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec(),
            cap: usize::MAX,
            pos: 0,
        };
        r.fill(&mut src).unwrap();
        assert!(r.next_frame().is_err());
    }
}
