//! Cross-thread wakeup for a blocked poller.
//!
//! Each reactor worker parks in [`crate::poller::Poller::wait`]; anyone
//! handing it work (another worker's mail, a client submission, the
//! shutdown flag) must be able to interrupt that wait. A [`WakeFd`] is
//! a descriptor registered with the worker's poller whose sole job is
//! becoming readable on demand: `eventfd` on Linux (one fd, one
//! counter), a nonblocking pipe elsewhere.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;

/// A level-triggered doorbell usable from any thread.
#[derive(Debug)]
pub struct WakeFd {
    read_fd: RawFd,
    #[cfg(not(target_os = "linux"))]
    write_fd: RawFd,
}

// The fds are used raw and never reborrowed as Rust IO objects;
// concurrent `write(2)` (wake) and `read(2)` (drain) are exactly what
// eventfd/pipes are specified for.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

impl WakeFd {
    /// Opens the doorbell.
    pub fn new() -> io::Result<WakeFd> {
        #[cfg(target_os = "linux")]
        {
            Ok(WakeFd {
                read_fd: sys::sys_eventfd()?,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            compile_error!("WakeFd: add a pipe-based fallback for this platform");
        }
    }

    /// The descriptor to register for read interest.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Rings the doorbell. Safe from any thread; a full counter/pipe
    /// (EAGAIN) already guarantees the sleeper will wake, so it is not
    /// an error.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        #[cfg(target_os = "linux")]
        let fd = self.read_fd;
        #[cfg(not(target_os = "linux"))]
        let fd = self.write_fd;
        let _ = sys::sys_write(fd, &one);
    }

    /// Drains pending wakeups so the fd stops polling readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while let Ok(n) = sys::sys_read(self.read_fd, &mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        sys::sys_close(self.read_fd);
        #[cfg(not(target_os = "linux"))]
        sys::sys_close(self.write_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Interest, Poller, PollerKind, Token};

    #[test]
    fn wakes_a_parked_poller_from_another_thread() {
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        let mut p = Poller::new(PollerKind::default()).unwrap();
        p.register(wake.fd(), Token(0), Interest::READ).unwrap();

        let remote = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            remote.wake();
        });

        let mut events = Vec::new();
        // Generous timeout: the wake must arrive long before it.
        let n = p.wait(&mut events, Some(5_000)).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);
        wake.drain();
        assert_eq!(p.wait(&mut events, Some(0)).unwrap(), 0, "drained");
        t.join().unwrap();
    }
}
