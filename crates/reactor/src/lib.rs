//! qbc-reactor — an event-driven front door for the quorum-commit
//! cluster: 10k+ concurrent client sessions multiplexed onto a small
//! fixed pool of nonblocking event-loop workers.
//!
//! The threaded runtime (`qbc-cluster`'s `ThreadedCluster`) spends one
//! OS thread per site and drives client work by polling; it is the
//! conformance baseline, not a serving architecture. This crate is the
//! serving architecture:
//!
//! * [`Poller`] — readiness behind one interface: `epoll` on Linux,
//!   portable `poll(2)` everywhere, both hand-rolled over raw syscalls
//!   (no external crates).
//! * [`WakeFd`] — the cross-thread doorbell that interrupts a parked
//!   worker.
//! * [`FrameReader`]/[`FrameWriter`] — length-prefixed nonblocking
//!   framing with an explicit write-backpressure signal.
//! * [`Request`]/[`Reply`] — the client wire protocol (sessions are
//!   logical; one connection carries thousands).
//! * [`ReactorServer`] — every site of a cluster plus the client front
//!   door on a fixed worker pool; routing decisions delegated to a
//!   [`Planner`] implemented by the cluster layer.
//! * [`ReactorClient`] — sessions as [`Handle`] futures with automatic
//!   resubmission and reconnect; no thread parks per transaction.
//!
//! See `docs/async-runtime.md` for the design discussion.

#![warn(missing_docs)]

mod sys;

pub mod client;
pub mod frame;
pub mod poller;
pub mod server;
pub mod wake;
pub mod wire;

pub use client::{ClientConfig, ClientStats, Handle, Outcome, ReactorClient};
pub use frame::{FrameReader, FrameWriter, ReadState, MAX_FRAME};
pub use poller::{Event, Interest, Poller, PollerKind, Token};
pub use server::{Planner, ReactorServer, ServerConfig, ServerStats};
pub use wake::WakeFd;
pub use wire::{Reply, Request};
