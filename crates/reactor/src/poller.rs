//! Readiness polling behind one interface: `epoll` where available,
//! portable `poll(2)` everywhere.
//!
//! The reactor's workers are written against [`Poller`] alone; which
//! backend runs is a [`PollerKind`] configuration choice. On Linux the
//! default is `epoll` (O(ready) wakeups — the thing that makes 10k+
//! sessions cheap); the `poll(2)` backend is the portability fallback
//! and is exercised by the test suite on every platform, so the two
//! stay behaviourally interchangeable.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;

/// Caller-chosen identity echoed back on every event for a registered
/// descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// Readable now (also set on hangup so the owner reads the EOF).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the owner should read to
    /// completion and drop the connection.
    pub hangup: bool,
}

/// Which backend a [`Poller`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux `epoll` (the default there).
    #[cfg(target_os = "linux")]
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

impl Default for PollerKind {
    #[cfg(target_os = "linux")]
    fn default() -> Self {
        PollerKind::Epoll
    }
    #[cfg(not(target_os = "linux"))]
    fn default() -> Self {
        PollerKind::Poll
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    /// `poll(2)` keeps the registered set in user space: a dense
    /// `pollfd` array plus a parallel token array, deregistration by
    /// swap-remove.
    Poll {
        fds: Vec<sys::pollfd>,
        tokens: Vec<u64>,
    },
}

/// A readiness poller over a set of registered descriptors.
pub struct Poller {
    backend: Backend,
    #[cfg(target_os = "linux")]
    scratch: Vec<sys::epoll_event>,
}

impl Poller {
    /// Opens a poller of the given kind.
    pub fn new(kind: PollerKind) -> io::Result<Poller> {
        let backend = match kind {
            #[cfg(target_os = "linux")]
            PollerKind::Epoll => Backend::Epoll {
                epfd: sys::sys_epoll_create()?,
            },
            PollerKind::Poll => Backend::Poll {
                fds: Vec::new(),
                tokens: Vec::new(),
            },
        };
        Ok(Poller {
            backend,
            #[cfg(target_os = "linux")]
            scratch: vec![sys::epoll_event { events: 0, u64: 0 }; 1024],
        })
    }

    /// Registers `fd` with the given interest. One registration per
    /// descriptor; use [`Poller::modify`] to change interest.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, epoll_mask(interest), token.0)
            }
            Backend::Poll { fds, tokens } => {
                fds.push(sys::pollfd {
                    fd,
                    events: poll_mask(interest),
                    revents: 0,
                });
                tokens.push(token.0);
                Ok(())
            }
        }
    }

    /// Changes the interest of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, epoll_mask(interest), token.0)
            }
            Backend::Poll { fds, tokens } => {
                for (p, t) in fds.iter_mut().zip(tokens.iter_mut()) {
                    if p.fd == fd {
                        p.events = poll_mask(interest);
                        *t = token.0;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Removes a descriptor from the set (idempotent enough for the
    /// close path: an unknown fd is reported, not fatal).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Poll { fds, tokens } => {
                if let Some(i) = fds.iter().position(|p| p.fd == fd) {
                    fds.swap_remove(i);
                    tokens.swap_remove(i);
                    Ok(())
                } else {
                    Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
                }
            }
        }
    }

    /// Waits up to `timeout_ms` (`None` blocks) for readiness, clearing
    /// and refilling `events`. Returns the number of ready descriptors.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        events.clear();
        let timeout = timeout_ms.unwrap_or(-1);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let n = sys::sys_epoll_wait(*epfd, &mut self.scratch, timeout)?;
                for ev in &self.scratch[..n] {
                    let mask = ev.events;
                    events.push(Event {
                        token: Token(ev.u64),
                        readable: mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                        writable: mask & sys::EPOLLOUT != 0,
                        hangup: mask & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    });
                }
                Ok(n)
            }
            Backend::Poll { fds, tokens } => {
                let n = sys::sys_poll(fds, timeout)?;
                if n > 0 {
                    for (p, &t) in fds.iter().zip(tokens.iter()) {
                        if p.revents == 0 {
                            continue;
                        }
                        events.push(Event {
                            token: Token(t),
                            readable: p.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                            writable: p.revents & sys::POLLOUT != 0,
                            hangup: p.revents & (sys::POLLHUP | sys::POLLERR) != 0,
                        });
                    }
                }
                Ok(n)
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            sys::sys_close(epfd);
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut m = 0;
    if interest.readable {
        m |= sys::EPOLLIN;
    }
    if interest.writable {
        m |= sys::EPOLLOUT;
    }
    m
}

fn poll_mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.readable {
        m |= sys::POLLIN;
    }
    if interest.writable {
        m |= sys::POLLOUT;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn kinds() -> Vec<PollerKind> {
        #[cfg(target_os = "linux")]
        {
            vec![PollerKind::Epoll, PollerKind::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![PollerKind::Poll]
        }
    }

    #[test]
    fn reports_readability_on_both_backends() {
        for kind in kinds() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            let mut p = Poller::new(kind).unwrap();
            p.register(b.as_raw_fd(), Token(7), Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing ready yet: a zero-timeout wait returns empty.
            assert_eq!(p.wait(&mut events, Some(0)).unwrap(), 0, "{kind:?}");

            a.write_all(b"x").unwrap();
            assert_eq!(p.wait(&mut events, Some(1000)).unwrap(), 1, "{kind:?}");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable && !events[0].writable);

            // Modify to write interest: a socket with buffer space is
            // writable immediately.
            p.modify(b.as_raw_fd(), Token(8), Interest::WRITE).unwrap();
            assert_eq!(p.wait(&mut events, Some(1000)).unwrap(), 1, "{kind:?}");
            assert_eq!(events[0].token, Token(8));
            assert!(events[0].writable);

            p.deregister(b.as_raw_fd()).unwrap();
            assert_eq!(p.wait(&mut events, Some(0)).unwrap(), 0, "{kind:?}");
        }
    }

    #[test]
    fn reports_hangup_when_peer_closes() {
        for kind in kinds() {
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            let mut p = Poller::new(kind).unwrap();
            p.register(b.as_raw_fd(), Token(1), Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            assert_eq!(p.wait(&mut events, Some(1000)).unwrap(), 1, "{kind:?}");
            assert!(events[0].hangup, "{kind:?}: {:?}", events[0]);
            assert!(events[0].readable, "owner must read the EOF");
        }
    }
}
