//! The reactor client: many logical sessions, a handful of
//! connections, zero parked threads per transaction.
//!
//! [`ReactorClient`] owns one background IO thread running its own
//! [`Poller`] over a small pool of connections to the server's front
//! door. Submitting work creates a *session slot* and returns a
//! [`Handle`] — a `Future` that is also blockingly awaitable — while
//! the IO thread multiplexes every outstanding session over the pool.
//! Ten thousand concurrent sessions cost ten thousand map entries, not
//! ten thousand threads or descriptors.
//!
//! Fault handling is built in:
//!
//! * **Rejection → resubmit.** A [`Reply::Rejected`] (no live
//!   coordinator yet, or the one picked died before starting the
//!   transaction) silently re-enqueues the session; the server's
//!   planner re-routes it to a survivor under a fresh transaction id.
//!   Attempts are capped; exhaustion surfaces [`Outcome::Failed`].
//! * **Connection loss → reconnect + replay.** When a connection drops,
//!   the IO thread reconnects and re-enqueues every session that was
//!   riding on it. A transaction whose decision reply was lost is
//!   submitted again — at-least-once from the client's point of view,
//!   which the workload generators account for by using
//!   per-session-unique writes.

use crate::frame::{FrameReader, FrameWriter, ReadState};
use crate::poller::{Event, Interest, Poller, PollerKind, Token};
use crate::wake::WakeFd;
use crate::wire::{Reply, Request};
use qbc_core::{Decision, TxnId};
use qbc_obs::LatencyHistogram;
use qbc_simnet::Duration as VDuration;
use qbc_votes::{ItemId, Version};
use std::collections::HashMap;
use std::future::Future;
use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// Client tuning.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Connections in the pool (sessions spread round-robin).
    pub conns: usize,
    /// Poller backend for the IO thread.
    pub poller: PollerKind,
    /// Resubmission attempts before a session fails.
    pub max_attempts: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            conns: 4,
            poller: PollerKind::default(),
            max_attempts: 64,
        }
    }
}

/// Terminal state of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The transaction committed.
    Committed {
        /// Transaction id of the successful attempt.
        txn: TxnId,
        /// Commit version when the answering site knew it.
        commit_version: Option<Version>,
    },
    /// The transaction aborted.
    Aborted {
        /// Transaction id of the deciding attempt.
        txn: TxnId,
    },
    /// A snapshot read succeeded.
    ReadOk {
        /// Version the read observed.
        version: Version,
        /// Value the read observed.
        value: i64,
    },
    /// Every copy site of the read item was unreachable.
    ReadUnavailable,
    /// Attempts exhausted or the client shut down first.
    Failed,
}

/// Aggregate client counters (see [`ReactorClient::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Sessions started.
    pub submitted: u64,
    /// Sessions ending [`Outcome::Committed`].
    pub committed: u64,
    /// Sessions ending [`Outcome::Aborted`].
    pub aborted: u64,
    /// Sessions ending [`Outcome::ReadOk`].
    pub reads_ok: u64,
    /// Sessions ending [`Outcome::ReadUnavailable`].
    pub reads_unavailable: u64,
    /// Sessions ending [`Outcome::Failed`].
    pub failed: u64,
    /// Rejected attempts that were resubmitted.
    pub resubmits: u64,
    /// Connections re-established after a drop.
    pub reconnects: u64,
}

enum Kind {
    Submit(Vec<(ItemId, i64)>),
    Read(ItemId),
}

enum SlotState {
    Pending,
    Done(Outcome),
}

struct Slot {
    kind: Kind,
    state: SlotState,
    /// Pool index the last attempt rode on.
    conn: usize,
    attempts: u32,
    started: Instant,
    waker: Option<Waker>,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    /// Sessions awaiting (re)send by the IO thread.
    queue: Vec<u64>,
    next_session: u64,
    pending: usize,
    stats: ClientStats,
    /// End-to-end session latency, recorded in microseconds.
    latency: LatencyHistogram,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    waker: WakeFd,
    shutdown: AtomicBool,
}

impl Shared {
    /// Marks `session` finished and wakes every style of waiter.
    fn resolve(&self, inner: &mut Inner, session: u64, outcome: Outcome) {
        let Some(slot) = inner.slots.get_mut(&session) else {
            return;
        };
        if !matches!(slot.state, SlotState::Pending) {
            return;
        }
        slot.state = SlotState::Done(outcome);
        inner.pending -= 1;
        let micros = slot.started.elapsed().as_micros() as u64;
        if let Some(w) = slot.waker.take() {
            w.wake();
        }
        inner.latency.record(VDuration(micros));
        match outcome {
            Outcome::Committed { .. } => inner.stats.committed += 1,
            Outcome::Aborted { .. } => inner.stats.aborted += 1,
            Outcome::ReadOk { .. } => inner.stats.reads_ok += 1,
            Outcome::ReadUnavailable => inner.stats.reads_unavailable += 1,
            Outcome::Failed => inner.stats.failed += 1,
        }
        self.cv.notify_all();
    }
}

/// A pooled connection on the IO thread.
struct Conn {
    stream: UnixStream,
    fd: RawFd,
    reader: FrameReader,
    writer: FrameWriter,
    interest: Interest,
}

const TOKEN_WAKER: u64 = u64::MAX;

struct IoThread {
    shared: Arc<Shared>,
    path: PathBuf,
    cfg: ClientConfig,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    events: Vec<Event>,
    next_conn: usize,
}

impl IoThread {
    fn connect_one(&mut self, idx: usize) -> io::Result<()> {
        let stream = UnixStream::connect(&self.path)?;
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        self.poller
            .register(fd, Token(idx as u64), Interest::READ)?;
        self.conns[idx] = Some(Conn {
            stream,
            fd,
            reader: FrameReader::new(),
            writer: FrameWriter::new(),
            interest: Interest::READ,
        });
        Ok(())
    }

    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.heal_conns();
            self.send_queued();
            self.flush_all();
            let _ = self.poller.wait(&mut self.events, Some(50));
            let events = std::mem::take(&mut self.events);
            let mut drop_conns = Vec::new();
            for ev in &events {
                if ev.token.0 == TOKEN_WAKER {
                    self.shared.waker.drain();
                    continue;
                }
                let idx = ev.token.0 as usize;
                if ev.readable && self.read_conn(idx) {
                    drop_conns.push(idx);
                }
            }
            self.events = events;
            for idx in drop_conns {
                self.drop_conn(idx);
            }
        }
        // Fail whatever is still pending so waiters unblock.
        let mut inner = self.shared.inner.lock().expect("client state");
        let pending: Vec<u64> = inner
            .slots
            .iter()
            .filter(|(_, s)| matches!(s.state, SlotState::Pending))
            .map(|(&k, _)| k)
            .collect();
        for session in pending {
            self.shared.resolve(&mut inner, session, Outcome::Failed);
        }
    }

    /// (Re)connects any missing pool slot; on failure the slot stays
    /// empty and is retried next loop (sessions meanwhile queue).
    fn heal_conns(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_none() {
                let _ = self.connect_one(idx);
            }
        }
    }

    /// Encodes every queued session onto a live connection.
    fn send_queued(&mut self) {
        let mut inner = self.shared.inner.lock().expect("client state");
        if inner.queue.is_empty() {
            return;
        }
        let live: Vec<usize> = (0..self.conns.len())
            .filter(|&i| self.conns[i].is_some())
            .collect();
        if live.is_empty() {
            return; // keep the queue; heal_conns retries
        }
        let queue = std::mem::take(&mut inner.queue);
        let mut buf = Vec::new();
        for session in queue {
            let Some(slot) = inner.slots.get_mut(&session) else {
                continue;
            };
            if !matches!(slot.state, SlotState::Pending) {
                continue;
            }
            let idx = live[self.next_conn % live.len()];
            self.next_conn = self.next_conn.wrapping_add(1);
            slot.conn = idx;
            let req = match &slot.kind {
                Kind::Submit(writes) => Request::Submit {
                    session,
                    writes: writes.clone(),
                },
                Kind::Read(item) => Request::SnapRead {
                    session,
                    item: *item,
                },
            };
            buf.clear();
            req.encode_into(&mut buf);
            self.conns[idx].as_mut().expect("live").writer.push(&buf);
        }
    }

    fn flush_all(&mut self) {
        let mut dead = Vec::new();
        for (idx, slot) in self.conns.iter_mut().enumerate() {
            let Some(conn) = slot else { continue };
            if conn.writer.queued() > 0 {
                match conn.writer.flush(&conn.stream) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        dead.push(idx);
                        continue;
                    }
                }
            }
            let want = Interest {
                readable: true,
                writable: conn.writer.queued() > 0,
            };
            if want != conn.interest {
                conn.interest = want;
                let _ = self.poller.modify(conn.fd, Token(idx as u64), want);
            }
        }
        for idx in dead {
            self.drop_conn(idx);
        }
    }

    /// Slurps and serves replies on `idx`; `true` means the connection
    /// died.
    fn read_conn(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        let closed = match conn.reader.fill(&conn.stream) {
            Ok(ReadState::Open) => false,
            Ok(ReadState::Closed) => true,
            Err(_) => true,
        };
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return false;
            };
            let reply = match conn.reader.next_frame() {
                Ok(Some(frame)) => match Reply::decode(frame) {
                    Some(r) => r,
                    None => return true,
                },
                Ok(None) => break,
                Err(_) => return true,
            };
            self.handle_reply(reply);
        }
        closed
    }

    fn handle_reply(&mut self, reply: Reply) {
        let shared = Arc::clone(&self.shared);
        let mut inner = shared.inner.lock().expect("client state");
        match reply {
            Reply::Decided {
                session,
                txn,
                decision,
                commit_version,
            } => {
                let outcome = match decision {
                    Decision::Commit => Outcome::Committed {
                        txn,
                        commit_version,
                    },
                    Decision::Abort => Outcome::Aborted { txn },
                };
                shared.resolve(&mut inner, session, outcome);
            }
            Reply::Rejected { session } => {
                let Some(slot) = inner.slots.get_mut(&session) else {
                    return;
                };
                if !matches!(slot.state, SlotState::Pending) {
                    return;
                }
                slot.attempts += 1;
                if slot.attempts >= self.cfg.max_attempts {
                    shared.resolve(&mut inner, session, Outcome::Failed);
                } else {
                    inner.stats.resubmits += 1;
                    inner.queue.push(session);
                }
            }
            Reply::SnapRead { session, value } => {
                let outcome = match value {
                    Some((version, value)) => Outcome::ReadOk { version, value },
                    None => Outcome::ReadUnavailable,
                };
                shared.resolve(&mut inner, session, outcome);
            }
        }
    }

    /// Tears down a dead connection and re-enqueues its in-flight
    /// sessions for replay after reconnect.
    fn drop_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.deregister(conn.fd);
        }
        let mut inner = self.shared.inner.lock().expect("client state");
        inner.stats.reconnects += 1;
        let replay: Vec<u64> = inner
            .slots
            .iter()
            .filter(|(_, s)| s.conn == idx && matches!(s.state, SlotState::Pending))
            .map(|(&k, _)| k)
            .collect();
        inner.queue.extend(replay);
    }
}

/// A client of a [`crate::ReactorServer`] front door.
pub struct ReactorClient {
    shared: Arc<Shared>,
    io: Option<std::thread::JoinHandle<()>>,
}

impl ReactorClient {
    /// Connects the pool to the server socket at `path` and starts the
    /// IO thread.
    pub fn connect(path: &Path, cfg: ClientConfig) -> io::Result<ReactorClient> {
        assert!(cfg.conns >= 1, "need at least one connection");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                queue: Vec::new(),
                next_session: 1,
                pending: 0,
                stats: ClientStats::default(),
                latency: LatencyHistogram::new(),
            }),
            cv: Condvar::new(),
            waker: WakeFd::new()?,
            shutdown: AtomicBool::new(false),
        });
        let mut poller = Poller::new(cfg.poller)?;
        poller.register(shared.waker.fd(), Token(TOKEN_WAKER), Interest::READ)?;
        let mut io = IoThread {
            shared: Arc::clone(&shared),
            path: path.to_path_buf(),
            cfg,
            poller,
            conns: Vec::new(),
            events: Vec::with_capacity(64),
            next_conn: 0,
        };
        io.conns.resize_with(io.cfg.conns, || None);
        // Fail fast if the server is not there at all.
        io.connect_one(0)?;
        let handle = std::thread::Builder::new()
            .name("qbc-reactor-client".into())
            .spawn(move || io.run())
            .expect("spawn client io thread");
        Ok(ReactorClient {
            shared,
            io: Some(handle),
        })
    }

    fn start(&self, kind: Kind) -> Handle {
        let mut inner = self.shared.inner.lock().expect("client state");
        let session = inner.next_session;
        inner.next_session += 1;
        inner.slots.insert(
            session,
            Slot {
                kind,
                state: SlotState::Pending,
                conn: usize::MAX,
                attempts: 0,
                started: Instant::now(),
                waker: None,
            },
        );
        inner.pending += 1;
        inner.stats.submitted += 1;
        inner.queue.push(session);
        drop(inner);
        self.shared.waker.wake();
        Handle {
            shared: Arc::clone(&self.shared),
            session,
        }
    }

    /// Starts a write transaction session.
    pub fn submit(&self, writes: Vec<(ItemId, i64)>) -> Handle {
        self.start(Kind::Submit(writes))
    }

    /// Starts a snapshot-read session.
    pub fn snap_read(&self, item: ItemId) -> Handle {
        self.start(Kind::Read(item))
    }

    /// Sessions not yet resolved.
    pub fn in_flight(&self) -> usize {
        self.shared.inner.lock().expect("client state").pending
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> ClientStats {
        self.shared.inner.lock().expect("client state").stats
    }

    /// Snapshot of the end-to-end session latency distribution
    /// (recorded in microseconds).
    pub fn latency(&self) -> LatencyHistogram {
        self.shared
            .inner
            .lock()
            .expect("client state")
            .latency
            .clone()
    }

    /// Stops the IO thread; unresolved sessions fail.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.waker.wake();
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorClient {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One session's future outcome: `await` it in an async context or
/// [`Handle::wait`] on a thread. Dropping it unwaited abandons the
/// session (its slot is reclaimed on resolution or drop).
pub struct Handle {
    shared: Arc<Shared>,
    session: u64,
}

impl Handle {
    /// Blocks until the session resolves.
    pub fn wait(self) -> Outcome {
        let mut inner = self.shared.inner.lock().expect("client state");
        loop {
            match inner.slots.get(&self.session).map(|s| &s.state) {
                Some(SlotState::Done(o)) => {
                    let o = *o;
                    // Reclaim the slot here; Drop's removal then finds
                    // nothing and the gauges stay honest.
                    inner.slots.remove(&self.session);
                    return o;
                }
                Some(SlotState::Pending) => {
                    inner = self.shared.cv.wait(inner).expect("client state");
                }
                None => return Outcome::Failed,
            }
        }
    }

    /// The outcome if the session already resolved (does not consume
    /// the slot).
    pub fn try_outcome(&self) -> Option<Outcome> {
        let inner = self.shared.inner.lock().expect("client state");
        match inner.slots.get(&self.session).map(|s| &s.state) {
            Some(SlotState::Done(o)) => Some(*o),
            _ => None,
        }
    }
}

impl Future for Handle {
    type Output = Outcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Outcome> {
        let mut inner = self.shared.inner.lock().expect("client state");
        match inner.slots.get_mut(&self.session) {
            Some(slot) => match slot.state {
                SlotState::Done(o) => {
                    inner.slots.remove(&self.session);
                    Poll::Ready(o)
                }
                SlotState::Pending => {
                    slot.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            },
            None => Poll::Ready(Outcome::Failed),
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("client state");
        if let Some(slot) = inner.slots.remove(&self.session) {
            if matches!(slot.state, SlotState::Pending) {
                // Abandoned in flight: the IO thread's eventual reply
                // finds no slot and is dropped; keep the gauge honest.
                inner.pending -= 1;
            }
        }
    }
}
