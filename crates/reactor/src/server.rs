//! The reactor server: every site of a cluster plus the client front
//! door, multiplexed onto a small fixed pool of event-loop workers.
//!
//! ## Shape
//!
//! * **Sites as state machines.** Each [`SiteNode`] is hosted in a
//!   [`NodeDriver`] — the same sans-IO contract the simulator drives —
//!   and assigned round-robin to one worker. Inter-site messages move
//!   *in-process*: within a worker by queue push, across workers by a
//!   mutex-guarded mailbox plus an eventfd doorbell. No thread ever
//!   parks waiting on a peer site.
//! * **Worker 0 is the front door.** It owns the Unix listener, every
//!   client connection, the session table and the [`Planner`]. Client
//!   sessions are logical: one framed connection carries any number,
//!   so 30k concurrent sessions need a handful of descriptors.
//! * **Decisions are push, not poll.** Sites run with
//!   [`qbc_db::NodeConfig::decision_events`] on; after every delivery
//!   the hosting worker drains the events and forwards them to the
//!   front door, which answers the waiting session immediately.
//! * **Backpressure per connection.** Replies queue in a
//!   [`FrameWriter`]; once its backlog crosses the high-water mark the
//!   front door stops *reading* that connection (new requests wait in
//!   the kernel buffer and eventually push back on the client) until
//!   the backlog drains below half the mark. Other connections are
//!   untouched — a slow reader stalls only itself.
//! * **Kill = silence.** [`ReactorServer::kill_site`] freezes a site:
//!   its driver is retired, traffic to it is dropped, and requests the
//!   planner routes elsewhere keep flowing. In-flight transactions it
//!   coordinated are decided by the survivors' termination protocol,
//!   whose decision events still answer the client.

use crate::frame::{FrameReader, FrameWriter, ReadState};
use crate::poller::{Event, Interest, Poller, PollerKind, Token};
use crate::wake::WakeFd;
use crate::wire::{Reply, Request};
use qbc_core::{Decision, TxnId};
use qbc_db::{DecisionEvent, NetMsg, ReadResult, SiteNode};
use qbc_simnet::{NodeDriver, SiteId, Time};
use qbc_votes::{ItemId, Version};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Routing oracle the front door consults per request. Implemented by
/// the cluster layer (only it holds the shard map and catalogs); the
/// reactor itself stays topology-agnostic.
pub trait Planner: Send {
    /// Plans a write submission: picks a live coordinator (skipping
    /// `down`) and builds the fully-formed begin message
    /// ([`NetMsg::BeginTxn`] or, for a writeset spanning shards,
    /// [`NetMsg::BeginXTxn`]). `None` rejects the request (no live
    /// coordinator). Implementations record per-transaction handle
    /// metadata here.
    fn plan_submit(
        &mut self,
        now: Time,
        txn: TxnId,
        writes: &[(ItemId, i64)],
        down: &BTreeSet<SiteId>,
    ) -> Option<(SiteId, NetMsg)>;

    /// Picks a live site to coordinate a snapshot read of `item`.
    fn plan_read(&mut self, item: ItemId, down: &BTreeSet<SiteId>) -> Option<SiteId>;
}

/// Reactor server tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Event-loop workers (≥ 1). Worker 0 runs the front door; sites
    /// spread round-robin over all workers.
    pub workers: usize,
    /// Poller backend for every worker.
    pub poller: PollerKind,
    /// Per-connection queued-reply bytes above which the front door
    /// stops reading that connection.
    pub write_hwm: usize,
    /// Seed mixed into each driver's RNG.
    pub seed: u64,
    /// First transaction id the front door assigns.
    pub first_txn: u64,
    /// In-flight transaction age (ms) after which the front door gives
    /// up waiting and answers `Rejected` so the client resubmits.
    /// Covers the one silent case — a begin swallowed whole by a
    /// coordinator killed before it told any participant. A transaction
    /// that is merely slow (blocked on an unreachable quorum) can
    /// outlive this and still decide later; the resubmission makes the
    /// client contract at-least-once, which the generators account for.
    pub txn_timeout_ms: u64,
    /// Pseudo site id client-originated begins are stamped with (any
    /// id no real site uses).
    pub client_site: SiteId,
    /// When set, `SO_SNDBUF` for accepted connections — tests shrink it
    /// to hit the write high-water mark without megabytes of replies.
    pub sockbuf: Option<i32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            poller: PollerKind::default(),
            write_hwm: 256 * 1024,
            seed: 0,
            first_txn: 1,
            txn_timeout_ms: 30_000,
            client_site: SiteId(u32::MAX),
            sockbuf: None,
        }
    }
}

/// Point-in-time reactor counters (see [`ReactorServer::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted_conns: u64,
    /// Times a connection crossed the write high-water mark and had its
    /// read side paused.
    pub backpressure_stalls: u64,
    /// Client sessions currently awaiting an answer.
    pub sessions_in_flight: u64,
    /// Peak of `sessions_in_flight`.
    pub peak_sessions_in_flight: u64,
    /// Largest single poller wait batch (ready-queue depth peak).
    pub ready_queue_peak: u64,
    /// Requests answered `Rejected` (client resubmits).
    pub rejected: u64,
    /// Transactions answered with a decision.
    pub decided: u64,
}

#[derive(Default)]
struct SharedStats {
    accepted_conns: AtomicU64,
    backpressure_stalls: AtomicU64,
    sessions_in_flight: AtomicU64,
    peak_sessions_in_flight: AtomicU64,
    ready_queue_peak: AtomicU64,
    rejected: AtomicU64,
    decided: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted_conns: self.accepted_conns.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            sessions_in_flight: self.sessions_in_flight.load(Ordering::Relaxed),
            peak_sessions_in_flight: self.peak_sessions_in_flight.load(Ordering::Relaxed),
            ready_queue_peak: self.ready_queue_peak.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            decided: self.decided.load(Ordering::Relaxed),
        }
    }

    fn raise(cell: &AtomicU64, v: u64) {
        cell.fetch_max(v, Ordering::Relaxed);
    }
}

impl ServerStats {
    /// Renders the reactor gauges into a metrics registry
    /// (`qbc_reactor_*` namespace).
    pub fn registry(&self) -> qbc_obs::Registry {
        let mut r = qbc_obs::Registry::new();
        self.fill_registry(&mut r);
        r
    }

    /// Adds the reactor gauges to an existing registry (so front-ends
    /// can merge them with cluster metrics).
    pub fn fill_registry(&self, r: &mut qbc_obs::Registry) {
        r.counter(
            "qbc_reactor_conns_accepted_total",
            &[],
            "client connections accepted",
            self.accepted_conns,
        );
        r.counter(
            "qbc_reactor_backpressure_stalls_total",
            &[],
            "connections paused at the write high-water mark",
            self.backpressure_stalls,
        );
        r.gauge(
            "qbc_reactor_sessions_in_flight",
            &[],
            "client sessions awaiting an answer",
            self.sessions_in_flight as f64,
        );
        r.gauge(
            "qbc_reactor_sessions_in_flight_peak",
            &[],
            "peak concurrent sessions",
            self.peak_sessions_in_flight as f64,
        );
        r.gauge(
            "qbc_reactor_ready_queue_peak",
            &[],
            "largest single poller ready batch",
            self.ready_queue_peak as f64,
        );
        r.counter(
            "qbc_reactor_rejected_total",
            &[],
            "requests rejected for resubmission",
            self.rejected,
        );
        r.counter(
            "qbc_reactor_decided_total",
            &[],
            "transactions answered with a decision",
            self.decided,
        );
    }
}

enum Mail {
    /// An inter-site protocol message crossing a worker boundary.
    Deliver {
        from: SiteId,
        to: SiteId,
        msg: NetMsg,
    },
    /// The front door asks the worker hosting `site` to watch a
    /// snapshot read until it resolves.
    WatchRead { site: SiteId, req_id: u64 },
    /// An event for the front door (worker 0).
    Front(FrontEvent),
}

enum FrontEvent {
    /// A hosted site recorded a decision.
    Decision {
        txn: TxnId,
        decision: Decision,
        commit_version: Option<Version>,
    },
    /// A begin was addressed at a site that is gone; the client should
    /// resubmit.
    BeginLost { txn: TxnId },
    /// A watched snapshot read resolved (`None` = unavailable).
    ReadDone {
        req_id: u64,
        value: Option<(Version, i64)>,
    },
}

struct Mailbox {
    queue: Mutex<Vec<Mail>>,
    waker: WakeFd,
}

struct Shared {
    shutdown: AtomicBool,
    down: Mutex<BTreeSet<SiteId>>,
    mailboxes: Vec<Mailbox>,
    stats: SharedStats,
    start: Instant,
}

impl Shared {
    fn post(&self, worker: usize, mail: Mail) {
        self.mailboxes[worker]
            .queue
            .lock()
            .expect("mailbox")
            .push(mail);
        self.mailboxes[worker].waker.wake();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 16;

struct Conn {
    stream: UnixStream,
    fd: RawFd,
    reader: FrameReader,
    writer: FrameWriter,
    /// Read side paused at the write high-water mark.
    paused: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

/// Front-door state, present on worker 0 only.
struct FrontDoor {
    listener: UnixListener,
    planner: Box<dyn Planner>,
    conns: HashMap<u64, Conn>,
    next_conn_token: u64,
    /// In-flight transaction → (conn token, client session, started).
    by_txn: HashMap<u64, (u64, u64, Time)>,
    txn_timeout_ms: u64,
    last_sweep: Time,
    /// In-flight snapshot read → (conn token, client session).
    pending_reads: HashMap<u64, (u64, u64)>,
    next_txn: u64,
    next_req: u64,
    write_hwm: usize,
    client_site: SiteId,
    sockbuf: Option<i32>,
}

struct Worker {
    index: usize,
    shared: Arc<Shared>,
    poller: Poller,
    events: Vec<Event>,
    drivers: BTreeMap<SiteId, NodeDriver<SiteNode>>,
    /// Retired (killed) sites, kept for harvest.
    dead: Vec<(SiteId, SiteNode)>,
    /// (from, to, msg) queue of local deliveries.
    inbox: VecDeque<(SiteId, SiteId, NetMsg)>,
    /// Scratch for driver output.
    out: Vec<(SiteId, NetMsg)>,
    /// Scratch for decision events.
    decisions: Vec<DecisionEvent>,
    /// Snapshot reads this worker polls to completion.
    watched_reads: Vec<(SiteId, u64)>,
    /// Site → hosting worker, for routing.
    site_worker: Arc<BTreeMap<SiteId, usize>>,
    front: Option<FrontDoor>,
    /// Front events generated locally on worker 0 (skip the mailbox).
    local_front: Vec<FrontEvent>,
}

impl Worker {
    fn now(&self) -> Time {
        Time(self.shared.start.elapsed().as_millis() as u64)
    }

    fn run(mut self) -> Vec<(SiteId, SiteNode)> {
        loop {
            let now = self.now();
            self.retire_down_sites();
            self.pump(now);
            self.poll_watched_reads();
            self.serve_front(now);
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let timeout = self.poll_timeout(now);
            let n = match self.poller.wait(&mut self.events, Some(timeout)) {
                Ok(n) => n,
                Err(e) => panic!("reactor worker {}: poller failed: {e}", self.index),
            };
            SharedStats::raise(&self.shared.stats.ready_queue_peak, n as u64);
            let events = std::mem::take(&mut self.events);
            for ev in &events {
                self.dispatch(*ev);
            }
            self.events = events;
            self.drain_mailbox();
        }
        // Shutdown: unwind the drivers into plain nodes for harvest.
        let mut nodes: Vec<(SiteId, SiteNode)> = self.dead;
        for (site, driver) in self.drivers {
            nodes.push((site, driver.into_node()));
        }
        nodes
    }

    /// Sleep no longer than the earliest site timer (clamped so
    /// control-plane changes are still noticed promptly even if a wake
    /// is lost).
    fn poll_timeout(&mut self, now: Time) -> i32 {
        let mut earliest: Option<Time> = None;
        for d in self.drivers.values_mut() {
            if let Some(t) = d.next_deadline() {
                earliest = Some(earliest.map_or(t, |e: Time| e.min(t)));
            }
        }
        match earliest {
            Some(t) => (t.0.saturating_sub(now.0)).min(50) as i32,
            None => 50,
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.token.0 {
            TOKEN_WAKER => self.shared.mailboxes[self.index].waker.drain(),
            TOKEN_LISTENER => self.accept_all(),
            t => self.conn_event(t, ev),
        }
    }

    fn drain_mailbox(&mut self) {
        let mut mail = {
            let mut q = self.shared.mailboxes[self.index]
                .queue
                .lock()
                .expect("mailbox");
            std::mem::take(&mut *q)
        };
        for m in mail.drain(..) {
            match m {
                Mail::Deliver { from, to, msg } => self.inbox.push_back((from, to, msg)),
                Mail::WatchRead { site, req_id } => self.watched_reads.push((site, req_id)),
                Mail::Front(ev) => self.local_front.push(ev),
            }
        }
    }

    /// Moves freshly-killed sites out of the active driver set.
    fn retire_down_sites(&mut self) {
        let down = self.shared.down.lock().expect("down set");
        if down.is_empty() {
            return;
        }
        let doomed: Vec<SiteId> = self
            .drivers
            .keys()
            .copied()
            .filter(|s| down.contains(s))
            .collect();
        drop(down);
        for site in doomed {
            let driver = self.drivers.remove(&site).expect("listed");
            self.dead.push((site, driver.into_node()));
        }
    }

    /// Drives hosted sites to local quiescence: due timers fire,
    /// queued messages deliver, decision events flow to the front door.
    fn pump(&mut self, now: Time) {
        let mut rounds = 0;
        loop {
            let mut progress = false;
            let sites: Vec<SiteId> = self.drivers.keys().copied().collect();
            for site in sites {
                let d = self.drivers.get_mut(&site).expect("listed");
                d.tick(now, &mut self.out);
                if !self.out.is_empty() {
                    progress = true;
                    self.route(site);
                }
                self.forward_decisions(site);
            }
            while let Some((from, to, msg)) = self.inbox.pop_front() {
                progress = true;
                match self.drivers.get_mut(&to) {
                    Some(d) => {
                        d.deliver(now, from, msg, &mut self.out);
                        self.route(to);
                        self.forward_decisions(to);
                    }
                    None => self.begin_lost(msg),
                }
            }
            rounds += 1;
            if !progress || rounds > 10_000 {
                break;
            }
        }
    }

    /// Routes everything a driver emitted: local sites by queue push,
    /// remote sites via their worker's mailbox, anything else dropped
    /// (the client pseudo-site gets answers via decision events and
    /// watched reads, not protocol messages).
    fn route(&mut self, from: SiteId) {
        for (to, msg) in self.out.drain(..) {
            match self.site_worker.get(&to) {
                Some(&w) if w == self.index => self.inbox.push_back((from, to, msg)),
                Some(&w) => self.shared.post(w, Mail::Deliver { from, to, msg }),
                None => {}
            }
        }
    }

    fn forward_decisions(&mut self, site: SiteId) {
        let d = self.drivers.get_mut(&site).expect("listed");
        d.node_mut().drain_decision_events(&mut self.decisions);
        if self.decisions.is_empty() {
            return;
        }
        for ev in self.decisions.drain(..) {
            let fe = FrontEvent::Decision {
                txn: ev.txn,
                decision: ev.decision,
                commit_version: ev.commit_version,
            };
            if self.front.is_some() {
                self.local_front.push(fe);
            } else {
                self.shared.post(0, Mail::Front(fe));
            }
        }
    }

    /// A message addressed at a site this worker no longer hosts. A
    /// begin must be bounced back to the client (resubmission); plain
    /// protocol traffic to a dead site is dropped, exactly like a
    /// crashed site ignoring its inbox.
    fn begin_lost(&mut self, msg: NetMsg) {
        let fe = match msg {
            NetMsg::BeginTxn { txn, .. } | NetMsg::BeginXTxn { txn, .. } => {
                FrontEvent::BeginLost { txn }
            }
            NetMsg::BeginSnapRead { req_id, .. } => FrontEvent::ReadDone {
                req_id,
                value: None,
            },
            _ => return,
        };
        if self.front.is_some() {
            self.local_front.push(fe);
        } else {
            self.shared.post(0, Mail::Front(fe));
        }
    }

    /// Checks watched snapshot reads for resolution (the read collector
    /// resolves node-side; nothing is pushed for it).
    fn poll_watched_reads(&mut self) {
        if self.watched_reads.is_empty() {
            return;
        }
        let mut done: Vec<FrontEvent> = Vec::new();
        self.watched_reads.retain(|&(site, req_id)| {
            let result = match self.drivers.get(&site) {
                Some(d) => d.node().snap_read_result(req_id),
                // Site killed mid-read: unavailable.
                None => Some(ReadResult::Unavailable),
            };
            match result {
                Some(ReadResult::Pending) | None => true,
                Some(ReadResult::Success { version, value }) => {
                    done.push(FrontEvent::ReadDone {
                        req_id,
                        value: Some((version, value)),
                    });
                    false
                }
                Some(ReadResult::Unavailable) => {
                    done.push(FrontEvent::ReadDone {
                        req_id,
                        value: None,
                    });
                    false
                }
            }
        });
        for fe in done {
            if self.front.is_some() {
                self.local_front.push(fe);
            } else {
                self.shared.post(0, Mail::Front(fe));
            }
        }
    }

    // ---- front door (worker 0 only) -----------------------------------

    fn serve_front(&mut self, now: Time) {
        if self.front.is_none() {
            return;
        }
        let events = std::mem::take(&mut self.local_front);
        for fe in events {
            self.handle_front_event(fe);
        }
        self.sweep_stale_txns(now);
        self.flush_conns();
        self.update_session_gauge();
    }

    /// Times out sessions whose transaction has been silent for
    /// `txn_timeout_ms` (see [`ServerConfig::txn_timeout_ms`]).
    fn sweep_stale_txns(&mut self, now: Time) {
        let front = self.front.as_mut().expect("front door");
        if front.txn_timeout_ms == 0 {
            return;
        }
        let sweep_every = (front.txn_timeout_ms / 4).clamp(50, 1000);
        if now.0.saturating_sub(front.last_sweep.0) < sweep_every {
            return;
        }
        front.last_sweep = now;
        let timeout = front.txn_timeout_ms;
        let stale: Vec<u64> = front
            .by_txn
            .iter()
            .filter(|(_, &(_, _, started))| now.0.saturating_sub(started.0) >= timeout)
            .map(|(&txn, _)| txn)
            .collect();
        for txn in stale {
            self.handle_front_event(FrontEvent::BeginLost { txn: TxnId(txn) });
        }
    }

    fn update_session_gauge(&mut self) {
        let Some(front) = &self.front else { return };
        let in_flight = (front.by_txn.len() + front.pending_reads.len()) as u64;
        self.shared
            .stats
            .sessions_in_flight
            .store(in_flight, Ordering::Relaxed);
        SharedStats::raise(&self.shared.stats.peak_sessions_in_flight, in_flight);
    }

    fn handle_front_event(&mut self, fe: FrontEvent) {
        let front = self.front.as_mut().expect("front door");
        match fe {
            FrontEvent::Decision {
                txn,
                decision,
                commit_version,
            } => {
                // First event wins; later sites' echoes find the
                // session already answered.
                if let Some((conn, session, _)) = front.by_txn.remove(&txn.0) {
                    self.shared.stats.decided.fetch_add(1, Ordering::Relaxed);
                    Self::queue_reply(
                        front,
                        &self.shared,
                        conn,
                        &Reply::Decided {
                            session,
                            txn,
                            decision,
                            commit_version,
                        },
                    );
                }
            }
            FrontEvent::BeginLost { txn } => {
                if let Some((conn, session, _)) = front.by_txn.remove(&txn.0) {
                    self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    Self::queue_reply(front, &self.shared, conn, &Reply::Rejected { session });
                }
            }
            FrontEvent::ReadDone { req_id, value } => {
                if let Some((conn, session)) = front.pending_reads.remove(&req_id) {
                    Self::queue_reply(
                        front,
                        &self.shared,
                        conn,
                        &Reply::SnapRead { session, value },
                    );
                }
            }
        }
    }

    fn queue_reply(front: &mut FrontDoor, shared: &Shared, conn: u64, reply: &Reply) {
        // The connection may have died while the answer was in flight;
        // the reconnected client resubmits under a fresh session.
        if let Some(c) = front.conns.get_mut(&conn) {
            let mut buf = Vec::new();
            reply.encode_into(&mut buf);
            c.writer.push(&buf);
            if !c.paused && c.writer.queued() > front.write_hwm {
                c.paused = true;
                shared
                    .stats
                    .backpressure_stalls
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            let front = self.front.as_mut().expect("listener on front worker");
            match front.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true).expect("nonblocking conn");
                    if let Some(b) = front.sockbuf {
                        let _ = crate::sys::sys_setsockopt_int(
                            stream.as_raw_fd(),
                            crate::sys::SOL_SOCKET,
                            crate::sys::SO_SNDBUF,
                            b,
                        );
                    }
                    let token = front.next_conn_token;
                    front.next_conn_token += 1;
                    let fd = stream.as_raw_fd();
                    front.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            reader: FrameReader::new(),
                            writer: FrameWriter::new(),
                            paused: false,
                            interest: Interest::READ,
                        },
                    );
                    self.shared
                        .stats
                        .accepted_conns
                        .fetch_add(1, Ordering::Relaxed);
                    self.poller
                        .register(fd, Token(token), Interest::READ)
                        .expect("register conn");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        let front = self.front.as_mut().expect("conns on front worker");
        let Some(conn) = front.conns.get_mut(&token) else {
            return;
        };
        let mut close = ev.hangup;
        if ev.readable && !close {
            match conn.reader.fill(&conn.stream) {
                Ok(ReadState::Open) => {}
                Ok(ReadState::Closed) => close = true,
                Err(_) => close = true,
            }
            if !close {
                close = self.handle_requests(token);
            }
        }
        if close {
            self.close_conn(token);
        }
        // Writability is handled by the flush pass below; nothing to do
        // here beyond having woken up.
    }

    /// Parses and serves every complete request buffered on `token`.
    /// Returns `true` when the connection must close (protocol error).
    fn handle_requests(&mut self, token: u64) -> bool {
        loop {
            let front = self.front.as_mut().expect("front door");
            let conn = match front.conns.get_mut(&token) {
                Some(c) => c,
                None => return false,
            };
            if conn.paused {
                // Leave remaining requests in the buffer: backpressure
                // means this connection's work is deferred, not dropped.
                return false;
            }
            let req = match conn.reader.next_frame() {
                Ok(Some(frame)) => match Request::decode(frame) {
                    Some(r) => r,
                    None => return true,
                },
                Ok(None) => return false,
                Err(_) => return true,
            };
            self.serve_request(token, req);
        }
    }

    fn serve_request(&mut self, token: u64, req: Request) {
        let now = self.now();
        let down = self.shared.down.lock().expect("down set").clone();
        let front = self.front.as_mut().expect("front door");
        match req {
            Request::Submit { session, writes } => {
                let txn = TxnId(front.next_txn);
                front.next_txn += 1;
                match front.planner.plan_submit(now, txn, &writes, &down) {
                    Some((coordinator, msg)) => {
                        front.by_txn.insert(txn.0, (token, session, now));
                        let from = front.client_site;
                        self.inject(from, coordinator, msg);
                    }
                    None => {
                        self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        Self::queue_reply(front, &self.shared, token, &Reply::Rejected { session });
                    }
                }
            }
            Request::SnapRead { session, item } => match front.planner.plan_read(item, &down) {
                Some(site) => {
                    let req_id = front.next_req;
                    front.next_req += 1;
                    front.pending_reads.insert(req_id, (token, session));
                    let from = front.client_site;
                    let worker = self.site_worker.get(&site).copied();
                    match worker {
                        Some(w) if w == self.index => {
                            self.watched_reads.push((site, req_id));
                            self.inbox.push_back((
                                from,
                                site,
                                NetMsg::BeginSnapRead { req_id, item },
                            ));
                        }
                        Some(w) => {
                            self.shared.post(w, Mail::WatchRead { site, req_id });
                            self.shared.post(
                                w,
                                Mail::Deliver {
                                    from,
                                    to: site,
                                    msg: NetMsg::BeginSnapRead { req_id, item },
                                },
                            );
                        }
                        None => {
                            self.local_front.push(FrontEvent::ReadDone {
                                req_id,
                                value: None,
                            });
                        }
                    }
                }
                None => {
                    Self::queue_reply(
                        front,
                        &self.shared,
                        token,
                        &Reply::SnapRead {
                            session,
                            value: None,
                        },
                    );
                }
            },
        }
    }

    /// Queues a begin at its coordinator, local or remote.
    fn inject(&mut self, from: SiteId, to: SiteId, msg: NetMsg) {
        match self.site_worker.get(&to).copied() {
            Some(w) if w == self.index => self.inbox.push_back((from, to, msg)),
            Some(w) => self.shared.post(w, Mail::Deliver { from, to, msg }),
            None => self.begin_lost(msg),
        }
    }

    /// Flushes every connection with queued replies, maintaining
    /// poller interest and the backpressure pause state.
    fn flush_conns(&mut self) {
        let Some(front) = self.front.as_mut() else {
            return;
        };
        let hwm = front.write_hwm;
        let mut dead: Vec<u64> = Vec::new();
        let mut resumed: Vec<u64> = Vec::new();
        for (&token, conn) in front.conns.iter_mut() {
            if conn.writer.queued() > 0 {
                match conn.writer.flush(&conn.stream) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        dead.push(token);
                        continue;
                    }
                }
            }
            if conn.paused && conn.writer.queued() < hwm / 2 {
                conn.paused = false;
                resumed.push(token);
            }
            let want = Interest {
                readable: !conn.paused,
                writable: conn.writer.queued() > 0,
            };
            if want != conn.interest {
                conn.interest = want;
                self.poller
                    .modify(conn.fd, Token(token), want)
                    .expect("modify conn interest");
            }
        }
        for token in dead {
            self.close_conn(token);
        }
        // A resumed connection may have whole requests already
        // buffered; serve them now rather than waiting for new bytes.
        for token in resumed {
            if self.handle_requests(token) {
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        let front = self.front.as_mut().expect("front door");
        if let Some(conn) = front.conns.remove(&token) {
            let _ = self.poller.deregister(conn.fd);
        }
        // Sessions bound to this connection stay in the tables; their
        // eventual answers find the connection gone and are dropped
        // (the reconnected client resubmitted under fresh sessions).
    }
}

/// Handle to a running reactor server.
pub struct ReactorServer {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<Vec<(SiteId, SiteNode)>>>,
    path: PathBuf,
}

impl ReactorServer {
    /// Boots the server: binds `listen` (any stale socket file is
    /// replaced), partitions `nodes` round-robin over the workers and
    /// starts the event loops.
    pub fn spawn(
        cfg: ServerConfig,
        nodes: Vec<(SiteId, SiteNode)>,
        planner: Box<dyn Planner>,
        listen: &Path,
    ) -> io::Result<ReactorServer> {
        assert!(cfg.workers >= 1, "need at least one worker");
        let _ = std::fs::remove_file(listen);
        let listener = UnixListener::bind(listen)?;
        listener.set_nonblocking(true)?;

        let mut mailboxes = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            mailboxes.push(Mailbox {
                queue: Mutex::new(Vec::new()),
                waker: WakeFd::new()?,
            });
        }
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            down: Mutex::new(BTreeSet::new()),
            mailboxes,
            stats: SharedStats::default(),
            start: Instant::now(),
        });

        let mut site_worker = BTreeMap::new();
        for (i, (site, _)) in nodes.iter().enumerate() {
            site_worker.insert(*site, i % cfg.workers);
        }
        let site_worker = Arc::new(site_worker);

        let mut per_worker: Vec<Vec<(SiteId, SiteNode)>> =
            (0..cfg.workers).map(|_| Vec::new()).collect();
        for (i, pair) in nodes.into_iter().enumerate() {
            per_worker[i % cfg.workers].push(pair);
        }

        let mut handles = Vec::with_capacity(cfg.workers);
        let mut planner = Some(planner);
        let mut listener = Some(listener);
        for (index, assigned) in per_worker.into_iter().enumerate() {
            let shared_w = Arc::clone(&shared);
            let site_worker_w = Arc::clone(&site_worker);
            let mut poller = Poller::new(cfg.poller)?;
            poller.register(
                shared_w.mailboxes[index].waker.fd(),
                Token(TOKEN_WAKER),
                Interest::READ,
            )?;
            let front = if index == 0 {
                let listener = listener.take().expect("one listener");
                poller.register(listener.as_raw_fd(), Token(TOKEN_LISTENER), Interest::READ)?;
                Some(FrontDoor {
                    listener,
                    planner: planner.take().expect("one planner"),
                    conns: HashMap::new(),
                    next_conn_token: FIRST_CONN_TOKEN,
                    by_txn: HashMap::new(),
                    txn_timeout_ms: cfg.txn_timeout_ms,
                    last_sweep: Time(0),
                    pending_reads: HashMap::new(),
                    next_txn: cfg.first_txn,
                    next_req: 1,
                    write_hwm: cfg.write_hwm,
                    client_site: cfg.client_site,
                    sockbuf: cfg.sockbuf,
                })
            } else {
                None
            };
            // Boot the drivers inside the worker thread so on_start
            // effects (recovery, announcements) route like any others.
            let seed = cfg.seed;
            let handle = std::thread::Builder::new()
                .name(format!("qbc-reactor-{index}"))
                .spawn(move || {
                    let mut worker = Worker {
                        index,
                        shared: shared_w,
                        poller,
                        events: Vec::with_capacity(256),
                        drivers: BTreeMap::new(),
                        dead: Vec::new(),
                        inbox: VecDeque::new(),
                        out: Vec::new(),
                        decisions: Vec::new(),
                        watched_reads: Vec::new(),
                        site_worker: site_worker_w,
                        front,
                        local_front: Vec::new(),
                    };
                    let now = worker.now();
                    for (site, node) in assigned {
                        let mix = seed ^ (site.0 as u64).wrapping_mul(0x9E37_79B9);
                        let driver = NodeDriver::new(site, node, mix, now, &mut worker.out);
                        worker.drivers.insert(site, driver);
                        worker.route(site);
                    }
                    worker.run()
                })
                .expect("spawn reactor worker");
            handles.push(handle);
        }
        Ok(ReactorServer {
            shared,
            handles,
            path: listen.to_path_buf(),
        })
    }

    /// Freezes a site (see the module docs): its driver is retired and
    /// all its traffic dropped, modelling a crash that never recovers.
    pub fn kill_site(&self, site: SiteId) {
        self.shared.down.lock().expect("down set").insert(site);
        for mb in &self.shared.mailboxes {
            mb.waker.wake();
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// The Unix socket the front door listens on.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Stops the workers and returns every site node (killed sites
    /// included, frozen at their kill state) for harvesting.
    pub fn shutdown(self) -> (Vec<(SiteId, SiteNode)>, ServerStats) {
        self.shared.shutdown.store(true, Ordering::Release);
        for mb in &self.shared.mailboxes {
            mb.waker.wake();
        }
        let mut nodes = Vec::new();
        for h in self.handles {
            nodes.extend(h.join().expect("reactor worker panicked"));
        }
        nodes.sort_by_key(|(s, _)| *s);
        let _ = std::fs::remove_file(&self.path);
        (nodes, self.shared.stats.snapshot())
    }
}
