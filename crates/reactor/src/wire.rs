//! The client↔server wire protocol riding inside [`crate::frame`]
//! frames.
//!
//! Only the *front door* needs a wire format: inter-site protocol
//! traffic stays in-process (the reactor routes [`qbc_db::NetMsg`]
//! values between site inboxes by move, exactly like the threaded
//! transport). Client sessions, in contrast, live on the far side of a
//! socket, so their requests and replies are encoded with the same
//! hand-rolled primitive codec the file WAL uses
//! ([`qbc_storage::codec`]) — the vendored `serde` is compile-only and
//! provides no format.
//!
//! Sessions are *logical*: one connection multiplexes any number of
//! them, each identified by a client-chosen `session` id echoed on
//! every reply. That is what lets 30k concurrent sessions ride on a
//! handful of descriptors.

use qbc_core::{Decision, TxnId};
use qbc_storage::codec::{put_i64, put_u32, put_u64, put_u8, Dec};
use qbc_votes::{ItemId, Version};

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Begin a write transaction; the server picks a live coordinator
    /// (re-picking on retry) and assigns the transaction id.
    Submit {
        /// Client-chosen session id, echoed on the reply.
        session: u64,
        /// Items and values to write.
        writes: Vec<(ItemId, i64)>,
    },
    /// Begin a snapshot read of one item.
    SnapRead {
        /// Client-chosen session id, echoed on the reply.
        session: u64,
        /// Item to read.
        item: ItemId,
    },
}

/// A server reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The session's transaction decided.
    Decided {
        /// Echoed session id.
        session: u64,
        /// The transaction id the server assigned to this attempt.
        txn: TxnId,
        /// The outcome.
        decision: Decision,
        /// Commit version when known at the answering site.
        commit_version: Option<Version>,
    },
    /// The server could not place the request (no live coordinator for
    /// its home shard, or it was routed at a site that died before
    /// starting it). The client resubmits — its handle never surfaces
    /// this.
    Rejected {
        /// Echoed session id.
        session: u64,
    },
    /// A snapshot read resolved.
    SnapRead {
        /// Echoed session id.
        session: u64,
        /// `(version, value)` on success; `None` when every copy site
        /// was unreachable (`Unavailable`).
        value: Option<(Version, i64)>,
    },
}

const REQ_SUBMIT: u8 = 1;
const REQ_SNAP_READ: u8 = 2;
const REP_DECIDED: u8 = 1;
const REP_REJECTED: u8 = 2;
const REP_SNAP_READ: u8 = 3;

impl Request {
    /// Appends this request's encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Submit { session, writes } => {
                put_u8(buf, REQ_SUBMIT);
                put_u64(buf, *session);
                put_u32(buf, writes.len() as u32);
                for (item, value) in writes {
                    put_u32(buf, item.0);
                    put_i64(buf, *value);
                }
            }
            Request::SnapRead { session, item } => {
                put_u8(buf, REQ_SNAP_READ);
                put_u64(buf, *session);
                put_u32(buf, item.0);
            }
        }
    }

    /// Decodes one request from a whole frame payload.
    pub fn decode(bytes: &[u8]) -> Option<Request> {
        let mut d = Dec::new(bytes);
        let req = match d.u8()? {
            REQ_SUBMIT => {
                let session = d.u64()?;
                let n = d.u32()? as usize;
                if n > d.remaining() / 12 + 1 {
                    return None;
                }
                let mut writes = Vec::with_capacity(n);
                for _ in 0..n {
                    writes.push((ItemId(d.u32()?), d.i64()?));
                }
                Request::Submit { session, writes }
            }
            REQ_SNAP_READ => Request::SnapRead {
                session: d.u64()?,
                item: ItemId(d.u32()?),
            },
            _ => return None,
        };
        d.finished().then_some(req)
    }
}

impl Reply {
    /// Appends this reply's encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Decided {
                session,
                txn,
                decision,
                commit_version,
            } => {
                put_u8(buf, REP_DECIDED);
                put_u64(buf, *session);
                put_u64(buf, txn.0);
                put_u8(buf, matches!(decision, Decision::Commit) as u8);
                match commit_version {
                    Some(v) => {
                        put_u8(buf, 1);
                        put_u64(buf, v.0);
                    }
                    None => put_u8(buf, 0),
                }
            }
            Reply::Rejected { session } => {
                put_u8(buf, REP_REJECTED);
                put_u64(buf, *session);
            }
            Reply::SnapRead { session, value } => {
                put_u8(buf, REP_SNAP_READ);
                put_u64(buf, *session);
                match value {
                    Some((v, x)) => {
                        put_u8(buf, 1);
                        put_u64(buf, v.0);
                        put_i64(buf, *x);
                    }
                    None => put_u8(buf, 0),
                }
            }
        }
    }

    /// Decodes one reply from a whole frame payload.
    pub fn decode(bytes: &[u8]) -> Option<Reply> {
        let mut d = Dec::new(bytes);
        let rep = match d.u8()? {
            REP_DECIDED => {
                let session = d.u64()?;
                let txn = TxnId(d.u64()?);
                let decision = if d.u8()? == 1 {
                    Decision::Commit
                } else {
                    Decision::Abort
                };
                let commit_version = match d.u8()? {
                    0 => None,
                    1 => Some(Version(d.u64()?)),
                    _ => return None,
                };
                Reply::Decided {
                    session,
                    txn,
                    decision,
                    commit_version,
                }
            }
            REP_REJECTED => Reply::Rejected { session: d.u64()? },
            REP_SNAP_READ => {
                let session = d.u64()?;
                let value = match d.u8()? {
                    0 => None,
                    1 => Some((Version(d.u64()?), d.i64()?)),
                    _ => return None,
                };
                Reply::SnapRead { session, value }
            }
            _ => return None,
        };
        d.finished().then_some(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Submit {
                session: 9,
                writes: vec![(ItemId(3), -5), (ItemId(11), i64::MAX)],
            },
            Request::Submit {
                session: 0,
                writes: vec![],
            },
            Request::SnapRead {
                session: u64::MAX,
                item: ItemId(2),
            },
        ];
        for req in cases {
            let mut buf = Vec::new();
            req.encode_into(&mut buf);
            assert_eq!(Request::decode(&buf), Some(req.clone()), "{req:?}");
            // Truncations never parse.
            for cut in 0..buf.len() {
                assert_eq!(Request::decode(&buf[..cut]), None, "{req:?} cut {cut}");
            }
        }
    }

    #[test]
    fn replies_roundtrip() {
        let cases = [
            Reply::Decided {
                session: 4,
                txn: TxnId(77),
                decision: Decision::Commit,
                commit_version: Some(Version(12)),
            },
            Reply::Decided {
                session: 5,
                txn: TxnId(78),
                decision: Decision::Abort,
                commit_version: None,
            },
            Reply::Rejected { session: 6 },
            Reply::SnapRead {
                session: 7,
                value: Some((Version(3), -9)),
            },
            Reply::SnapRead {
                session: 8,
                value: None,
            },
        ];
        for rep in cases {
            let mut buf = Vec::new();
            rep.encode_into(&mut buf);
            assert_eq!(Reply::decode(&buf), Some(rep.clone()), "{rep:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        Reply::Rejected { session: 1 }.encode_into(&mut buf);
        buf.push(0);
        assert_eq!(Reply::decode(&buf), None);
        assert_eq!(Request::decode(&[99]), None, "unknown tag");
    }
}
