//! Raw syscall surface of the reactor: `epoll`, `poll`, `eventfd`.
//!
//! The build container has no crates.io access, so there is no `libc`
//! crate to lean on; the reactor declares the handful of C functions it
//! needs directly. Everything here is a thin `unsafe extern` shim plus
//! the constants the two pollers use — all policy lives in
//! [`crate::poller`].

#![allow(non_camel_case_types)]

use std::io;
use std::os::unix::io::RawFd;

/// `struct pollfd` from `<poll.h>` (identical layout on every POSIX
/// platform the workspace targets).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct pollfd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

/// `POLLIN`.
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR` (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP` (always reported, never requested).
pub const POLLHUP: i16 = 0x010;

/// `struct epoll_event`. On x86-64 Linux the kernel ABI packs it; the
/// attribute is correct (and harmless) on the other Linux targets too.
#[cfg(target_os = "linux")]
#[repr(C, packed)]
#[derive(Clone, Copy, Debug)]
pub struct epoll_event {
    /// Event mask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// User data echoed back verbatim (the reactor stores its token).
    pub u64: u64,
}

/// `EPOLLIN`.
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`.
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`.
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`.
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLL_CTL_ADD`.
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: i32 = 1;
/// `EPOLL_CTL_DEL`.
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: i32 = 2;
/// `EPOLL_CTL_MOD`.
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: i32 = 3;
/// `EPOLL_CLOEXEC`.
#[cfg(target_os = "linux")]
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `EFD_CLOEXEC | EFD_NONBLOCK` for [`eventfd`].
#[cfg(target_os = "linux")]
pub const EFD_CLOEXEC_NONBLOCK: i32 = 0o2000000 | 0o4000;

extern "C" {
    #[cfg(target_os = "linux")]
    fn epoll_create1(flags: i32) -> i32;
    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    #[cfg(target_os = "linux")]
    fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    #[cfg(target_os = "linux")]
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn poll(fds: *mut pollfd, nfds: u64, timeout: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
}

/// `SOL_SOCKET`.
pub const SOL_SOCKET: i32 = 1;
/// `SO_SNDBUF`.
pub const SO_SNDBUF: i32 = 7;

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
#[cfg(target_os = "linux")]
pub fn sys_epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// `epoll_ctl`. `event` is ignored by the kernel for `EPOLL_CTL_DEL`.
#[cfg(target_os = "linux")]
pub fn sys_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, u64: token };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// `epoll_wait`, retried on `EINTR`. `timeout_ms` of `-1` blocks.
#[cfg(target_os = "linux")]
pub fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [epoll_event],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `poll(2)`, retried on `EINTR`. `timeout_ms` of `-1` blocks.
pub fn sys_poll(fds: &mut [pollfd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
#[cfg(target_os = "linux")]
pub fn sys_eventfd() -> io::Result<RawFd> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC_NONBLOCK) })
}

/// Raw nonblocking `read`; `Ok(0)` is end-of-stream.
pub fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Raw `write`.
pub fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// `setsockopt` with an `int` value (the kernel doubles buffer-size
/// requests and clamps them to its configured minimum).
pub fn sys_setsockopt_int(fd: RawFd, level: i32, optname: i32, value: i32) -> io::Result<()> {
    let bytes = value.to_ne_bytes();
    cvt(unsafe { setsockopt(fd, level, optname, bytes.as_ptr(), bytes.len() as u32) }).map(|_| ())
}

/// `close`, errors ignored (nothing sane to do with them at drop time).
pub fn sys_close(fd: RawFd) {
    unsafe {
        close(fd);
    }
}
