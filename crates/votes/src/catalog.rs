//! The replicated-data catalog: every item's placement and quorums.

use crate::item::{ItemId, ItemSpec, VoteError};
use qbc_simnet::SiteId;
use std::collections::{BTreeMap, BTreeSet};

/// The full replication catalog of the database: one [`ItemSpec`] per
/// logical data item. Immutable once built; shared by every site.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Catalog {
    items: BTreeMap<ItemId, ItemSpec>,
}

impl Catalog {
    /// Builds a catalog from specs, validating each and rejecting
    /// duplicate item ids.
    pub fn new(specs: impl IntoIterator<Item = ItemSpec>) -> Result<Self, VoteError> {
        let mut items = BTreeMap::new();
        for spec in specs {
            spec.validate()?;
            let id = spec.id;
            if items.insert(id, spec).is_some() {
                return Err(VoteError::DuplicateItem(id));
            }
        }
        Ok(Catalog { items })
    }

    /// Looks up an item's spec.
    pub fn item(&self, id: ItemId) -> Option<&ItemSpec> {
        self.items.get(&id)
    }

    /// Looks up an item's spec, panicking on unknown id (for internal use
    /// where the id is known to exist).
    pub fn expect_item(&self, id: ItemId) -> &ItemSpec {
        self.items
            .get(&id)
            .unwrap_or_else(|| panic!("unknown item {id}"))
    }

    /// Looks an item up by name.
    pub fn item_by_name(&self, name: &str) -> Option<&ItemSpec> {
        self.items.values().find(|s| s.name == name)
    }

    /// Iterates over all items.
    pub fn items(&self) -> impl Iterator<Item = &ItemSpec> {
        self.items.values()
    }

    /// All item ids.
    pub fn item_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.keys().copied()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items stored (replicated) at a given site.
    pub fn items_at(&self, site: SiteId) -> BTreeSet<ItemId> {
        self.items
            .values()
            .filter(|s| s.copies.contains_key(&site))
            .map(|s| s.id)
            .collect()
    }

    /// The participant set of a transaction: every site holding a copy of
    /// any item in its writeset. (The paper's commit protocol distributes
    /// update values "to all sites which contain data items to be
    /// updated".)
    pub fn participants(&self, writeset: impl IntoIterator<Item = ItemId>) -> BTreeSet<SiteId> {
        let mut out = BTreeSet::new();
        for id in writeset {
            if let Some(spec) = self.items.get(&id) {
                out.extend(spec.sites());
            }
        }
        out
    }

    /// Every site that stores at least one copy of anything.
    pub fn all_sites(&self) -> BTreeSet<SiteId> {
        let mut out = BTreeSet::new();
        for spec in self.items.values() {
            out.extend(spec.sites());
        }
        out
    }
}

/// Fluent builder for [`Catalog`].
///
/// ```
/// use qbc_votes::{CatalogBuilder, ItemId};
/// use qbc_simnet::SiteId;
///
/// let catalog = CatalogBuilder::new()
///     .item(ItemId(0), "x")
///     .copy(SiteId(1), 1)
///     .copy(SiteId(2), 1)
///     .copy(SiteId(3), 1)
///     .quorums(2, 2)
///     .build()
///     .unwrap();
/// assert_eq!(catalog.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    done: Vec<ItemSpec>,
    current: Option<ItemSpec>,
}

impl CatalogBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn flush(&mut self) {
        if let Some(spec) = self.current.take() {
            self.done.push(spec);
        }
    }

    /// Starts a new item with the given id and name.
    pub fn item(mut self, id: ItemId, name: impl Into<String>) -> Self {
        self.flush();
        self.current = Some(ItemSpec {
            id,
            name: name.into(),
            copies: BTreeMap::new(),
            read_quorum: 1,
            write_quorum: 1,
        });
        self
    }

    /// Places a copy of the current item at `site` with `weight` votes.
    ///
    /// # Panics
    /// Panics if no item was started.
    pub fn copy(mut self, site: SiteId, weight: u32) -> Self {
        self.current
            .as_mut()
            .expect("call .item() before .copy()")
            .copies
            .insert(site, weight);
        self
    }

    /// Places unit-weight copies of the current item at every given site.
    pub fn copies_at(mut self, sites: impl IntoIterator<Item = SiteId>) -> Self {
        let cur = self
            .current
            .as_mut()
            .expect("call .item() before .copies_at()");
        for s in sites {
            cur.copies.insert(s, 1);
        }
        self
    }

    /// Sets `r(x)` and `w(x)` of the current item.
    ///
    /// # Panics
    /// Panics if no item was started.
    pub fn quorums(mut self, read: u32, write: u32) -> Self {
        let cur = self
            .current
            .as_mut()
            .expect("call .item() before .quorums()");
        cur.read_quorum = read;
        cur.write_quorum = write;
        self
    }

    /// Uses majority quorums for the current item:
    /// `w = floor(v/2)+1`, `r = v - w + 1` (minimal read quorum).
    pub fn majority(mut self) -> Self {
        let cur = self
            .current
            .as_mut()
            .expect("call .item() before .majority()");
        let v: u32 = cur.copies.values().sum();
        let w = v / 2 + 1;
        let r = v - w + 1;
        cur.read_quorum = r;
        cur.write_quorum = w;
        self
    }

    /// Uses read-one/write-all quorums for the current item.
    pub fn read_one_write_all(mut self) -> Self {
        let cur = self
            .current
            .as_mut()
            .expect("call .item() before .read_one_write_all()");
        let v: u32 = cur.copies.values().sum();
        cur.read_quorum = 1;
        cur.write_quorum = v;
        self
    }

    /// Finishes, validating every item.
    pub fn build(mut self) -> Result<Catalog, VoteError> {
        self.flush();
        Catalog::new(self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 1 configuration of the paper: items x and y, four
    /// unit-vote copies each, r = 2, w = 3.
    pub fn example1_catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .quorums(2, 3)
            .item(ItemId(1), "y")
            .copies_at([SiteId(5), SiteId(6), SiteId(7), SiteId(8)])
            .quorums(2, 3)
            .build()
            .expect("valid catalog")
    }

    #[test]
    fn example1_catalog_builds() {
        let c = example1_catalog();
        assert_eq!(c.len(), 2);
        let x = c.item_by_name("x").unwrap();
        assert_eq!(x.total_votes(), 4);
        assert_eq!(x.read_quorum, 2);
        assert_eq!(x.write_quorum, 3);
    }

    #[test]
    fn participants_unions_copy_sites() {
        let c = example1_catalog();
        let p = c.participants([ItemId(0), ItemId(1)]);
        assert_eq!(p.len(), 8);
        let px = c.participants([ItemId(0)]);
        assert_eq!(
            px,
            [SiteId(1), SiteId(2), SiteId(3), SiteId(4)]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn items_at_reports_placement() {
        let c = example1_catalog();
        assert_eq!(c.items_at(SiteId(2)), [ItemId(0)].into());
        assert_eq!(c.items_at(SiteId(7)), [ItemId(1)].into());
        assert!(c.items_at(SiteId(99)).is_empty());
    }

    #[test]
    fn duplicate_item_rejected() {
        let r = CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copy(SiteId(1), 1)
            .quorums(1, 1)
            .item(ItemId(0), "x2")
            .copy(SiteId(2), 1)
            .quorums(1, 1)
            .build();
        assert!(matches!(r, Err(VoteError::DuplicateItem(_))));
    }

    #[test]
    fn majority_quorums_satisfy_constraints() {
        let c = CatalogBuilder::new()
            .item(ItemId(0), "m")
            .copies_at([SiteId(0), SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .majority()
            .build()
            .unwrap();
        let m = c.expect_item(ItemId(0));
        assert_eq!(m.write_quorum, 3);
        assert_eq!(m.read_quorum, 3);
    }

    #[test]
    fn read_one_write_all_satisfies_constraints() {
        let c = CatalogBuilder::new()
            .item(ItemId(0), "rowa")
            .copies_at([SiteId(0), SiteId(1), SiteId(2)])
            .read_one_write_all()
            .build()
            .unwrap();
        let m = c.expect_item(ItemId(0));
        assert_eq!(m.read_quorum, 1);
        assert_eq!(m.write_quorum, 3);
    }

    #[test]
    fn invalid_quorums_rejected_at_build() {
        let r = CatalogBuilder::new()
            .item(ItemId(0), "bad")
            .copies_at([SiteId(0), SiteId(1)])
            .quorums(1, 1)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn item_lookup_by_name_and_id() {
        let c = example1_catalog();
        assert_eq!(c.item_by_name("y").unwrap().id, ItemId(1));
        assert!(c.item(ItemId(5)).is_none());
        assert!(c.item_by_name("zz").is_none());
    }
}
