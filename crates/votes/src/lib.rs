//! # qbc-votes — Gifford weighted-voting replica control
//!
//! The partition-processing strategy the paper designs its termination
//! protocols around (ref. \[8\], Gifford 1979): every copy of every data item
//! carries votes; reading item `x` requires collecting `r(x)` votes,
//! writing requires `w(x)`, with `r(x)+w(x) > v(x)` and `w(x) > v(x)/2`.
//! Version numbers identify the most recent copy inside any read quorum.
//!
//! This crate provides:
//!
//! * [`ItemSpec`]/[`Catalog`] — per-item copy placement, vote weights and
//!   quorum parameters, with constraint validation;
//! * [`CatalogBuilder`] — fluent construction (including `majority()` and
//!   `read_one_write_all()` presets);
//! * quorum arithmetic over arbitrary site sets (the primitive queried by
//!   the TP1/TP2 termination rules);
//! * [`availability::analyze`] — the accessibility metric of the paper's
//!   Examples 1 and 4: which items can each partition component read or
//!   write, given vote placement and lock-blocked copies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod availability;
mod catalog;
mod item;

pub use availability::{analyze, AccessReport, ItemAccess};
pub use catalog::{Catalog, CatalogBuilder};
pub use item::{ItemId, ItemSpec, Version, VoteError};
// Re-export so downstream crates keyed on item/txn ids can reach the
// deterministic hasher without an extra dependency edge.
pub use qbc_simnet::{FastBuildHasher, FastHasher, FastMap};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbc_simnet::SiteId;
    use std::collections::BTreeSet;

    /// Strategy: a valid item spec over up to 8 sites with weights 1..=3,
    /// majority-style quorums.
    fn arb_valid_spec() -> impl Strategy<Value = ItemSpec> {
        (2usize..=8).prop_flat_map(|n| {
            proptest::collection::vec(1u32..=3, n).prop_map(move |weights| {
                let copies: std::collections::BTreeMap<SiteId, u32> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (SiteId(i as u32), w))
                    .collect();
                let total: u32 = copies.values().sum();
                let write = total / 2 + 1;
                let read = total - write + 1;
                ItemSpec {
                    id: ItemId(0),
                    name: "p".into(),
                    copies,
                    read_quorum: read,
                    write_quorum: write,
                }
            })
        })
    }

    proptest! {
        /// Majority-style assignments always satisfy Gifford's constraints.
        #[test]
        fn generated_specs_validate(spec in arb_valid_spec()) {
            prop_assert_eq!(spec.validate(), Ok(()));
        }

        /// Core safety of weighted voting: a read quorum and a write
        /// quorum can never exist in two disjoint site sets.
        #[test]
        fn read_and_write_quorums_always_intersect(
            spec in arb_valid_spec(),
            split in proptest::collection::vec(proptest::bool::ANY, 8),
        ) {
            let left: BTreeSet<SiteId> = spec
                .sites()
                .enumerate()
                .filter(|(i, _)| split.get(*i).copied().unwrap_or(false))
                .map(|(_, s)| s)
                .collect();
            let right: BTreeSet<SiteId> =
                spec.sites().filter(|s| !left.contains(s)).collect();
            // Disjoint halves cannot both hold quorums that must intersect.
            prop_assert!(!(spec.read_quorum_among(&left) && spec.write_quorum_among(&right)));
            prop_assert!(!(spec.write_quorum_among(&left) && spec.write_quorum_among(&right)));
        }

        /// Votes are monotone: adding sites never removes a quorum.
        #[test]
        fn quorums_are_monotone(
            spec in arb_valid_spec(),
            subset_bits in proptest::collection::vec(proptest::bool::ANY, 8),
        ) {
            let subset: BTreeSet<SiteId> = spec
                .sites()
                .enumerate()
                .filter(|(i, _)| subset_bits.get(*i).copied().unwrap_or(false))
                .map(|(_, s)| s)
                .collect();
            let all: BTreeSet<SiteId> = spec.sites().collect();
            if spec.read_quorum_among(&subset) {
                prop_assert!(spec.read_quorum_among(&all));
            }
            if spec.write_quorum_among(&subset) {
                prop_assert!(spec.write_quorum_among(&all));
            }
            // The full copy set always satisfies both quorums.
            prop_assert!(spec.read_quorum_among(&all));
            prop_assert!(spec.write_quorum_among(&all));
        }
    }
}
