//! Data items, copies and vote assignments.
//!
//! Following Gifford's weighted voting scheme ([8] in the paper): every
//! copy of each data item is assigned some number of votes. A transaction
//! must collect `r(x)` votes to read item `x` and `w(x)` votes to write
//! it, subject to two constraints:
//!
//! 1. `r(x) + w(x) > v(x)` — any read quorum intersects any write quorum,
//!    so reads always see the most recent copy (identified by version
//!    number) and an item cannot be read in one partition while written
//!    in another;
//! 2. `w(x) > v(x)/2` — two write quorums always intersect, so writes
//!    cannot proceed in two partitions at once.

use qbc_simnet::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a logical data item.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Version number identifying the most recent copy of an item.
///
/// Gifford's currency rule: a read quorum always contains at least one
/// copy carrying the maximum version, which is the current value.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The version of a never-written item.
    pub const INITIAL: Version = Version(0);

    /// The next version after this one.
    #[inline]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

/// Errors arising from invalid vote assignments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VoteError {
    /// The item has no copies.
    NoCopies(ItemId),
    /// A copy was assigned zero votes.
    ZeroWeight(ItemId, SiteId),
    /// `r + w > v` violated.
    ReadWriteOverlap {
        /// The offending item.
        item: ItemId,
        /// Configured read quorum.
        read: u32,
        /// Configured write quorum.
        write: u32,
        /// Total votes of the item.
        total: u32,
    },
    /// `w > v/2` violated.
    WriteMajority {
        /// The offending item.
        item: ItemId,
        /// Configured write quorum.
        write: u32,
        /// Total votes of the item.
        total: u32,
    },
    /// A quorum exceeds the total number of votes (unsatisfiable).
    QuorumTooLarge {
        /// The offending item.
        item: ItemId,
        /// The unsatisfiable quorum value.
        quorum: u32,
        /// Total votes of the item.
        total: u32,
    },
    /// A quorum of zero was configured.
    ZeroQuorum(ItemId),
    /// Two items share an id in one catalog.
    DuplicateItem(ItemId),
}

impl fmt::Display for VoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteError::NoCopies(i) => write!(f, "item {i} has no copies"),
            VoteError::ZeroWeight(i, s) => write!(f, "copy of {i} at {s} has zero votes"),
            VoteError::ReadWriteOverlap {
                item,
                read,
                write,
                total,
            } => write!(
                f,
                "item {item}: r({read}) + w({write}) must exceed v({total})"
            ),
            VoteError::WriteMajority { item, write, total } => {
                write!(f, "item {item}: w({write}) must exceed v({total})/2")
            }
            VoteError::QuorumTooLarge {
                item,
                quorum,
                total,
            } => {
                write!(
                    f,
                    "item {item}: quorum {quorum} exceeds total votes {total}"
                )
            }
            VoteError::ZeroQuorum(i) => write!(f, "item {i} has a zero quorum"),
            VoteError::DuplicateItem(i) => write!(f, "duplicate item id {i}"),
        }
    }
}

impl std::error::Error for VoteError {}

/// The replication specification of one data item: where its copies live,
/// how many votes each copy carries, and its read/write quorums.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemSpec {
    /// Item identifier.
    pub id: ItemId,
    /// Human-readable name (the paper's `x`, `y`, ...).
    pub name: String,
    /// Vote weight of the copy stored at each site.
    pub copies: BTreeMap<SiteId, u32>,
    /// Read quorum `r(x)`.
    pub read_quorum: u32,
    /// Write quorum `w(x)`.
    pub write_quorum: u32,
}

impl ItemSpec {
    /// Total votes `v(x)` of the item.
    pub fn total_votes(&self) -> u32 {
        self.copies.values().sum()
    }

    /// The sites storing a copy of this item.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.copies.keys().copied()
    }

    /// Vote weight of the copy at `site` (zero when no copy there).
    pub fn weight_at(&self, site: SiteId) -> u32 {
        self.copies.get(&site).copied().unwrap_or(0)
    }

    /// Sum of vote weights of copies stored at the given sites.
    pub fn votes_among<'a>(&self, sites: impl IntoIterator<Item = &'a SiteId>) -> u32 {
        sites.into_iter().map(|s| self.weight_at(*s)).sum()
    }

    /// True when the given sites muster a read quorum for this item.
    pub fn read_quorum_among(&self, sites: &BTreeSet<SiteId>) -> bool {
        self.votes_among(sites) >= self.read_quorum
    }

    /// True when the given sites muster a write quorum for this item.
    pub fn write_quorum_among(&self, sites: &BTreeSet<SiteId>) -> bool {
        self.votes_among(sites) >= self.write_quorum
    }

    /// Validates Gifford's two constraints plus basic sanity.
    pub fn validate(&self) -> Result<(), VoteError> {
        if self.copies.is_empty() {
            return Err(VoteError::NoCopies(self.id));
        }
        for (&s, &w) in &self.copies {
            if w == 0 {
                return Err(VoteError::ZeroWeight(self.id, s));
            }
        }
        if self.read_quorum == 0 || self.write_quorum == 0 {
            return Err(VoteError::ZeroQuorum(self.id));
        }
        let total = self.total_votes();
        for q in [self.read_quorum, self.write_quorum] {
            if q > total {
                return Err(VoteError::QuorumTooLarge {
                    item: self.id,
                    quorum: q,
                    total,
                });
            }
        }
        if self.read_quorum + self.write_quorum <= total {
            return Err(VoteError::ReadWriteOverlap {
                item: self.id,
                read: self.read_quorum,
                write: self.write_quorum,
                total,
            });
        }
        if 2 * self.write_quorum <= total {
            return Err(VoteError::WriteMajority {
                item: self.id,
                write: self.write_quorum,
                total,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(weights: &[(u32, u32)], r: u32, w: u32) -> ItemSpec {
        ItemSpec {
            id: ItemId(1),
            name: "x".into(),
            copies: weights.iter().map(|&(s, v)| (SiteId(s), v)).collect(),
            read_quorum: r,
            write_quorum: w,
        }
    }

    #[test]
    fn paper_example_assignment_is_valid() {
        // Example 1: each copy has 1 vote, r = 2, w = 3, 4 copies.
        let s = spec(&[(1, 1), (2, 1), (3, 1), (4, 1)], 2, 3);
        assert_eq!(s.validate(), Ok(()));
        assert_eq!(s.total_votes(), 4);
    }

    #[test]
    fn read_write_overlap_enforced() {
        let s = spec(&[(1, 1), (2, 1), (3, 1), (4, 1)], 1, 3);
        assert!(matches!(
            s.validate(),
            Err(VoteError::ReadWriteOverlap { .. })
        ));
    }

    #[test]
    fn write_majority_enforced() {
        let s = spec(&[(1, 1), (2, 1), (3, 1), (4, 1)], 3, 2);
        assert!(matches!(s.validate(), Err(VoteError::WriteMajority { .. })));
    }

    #[test]
    fn zero_weight_rejected() {
        let s = spec(&[(1, 0), (2, 2), (3, 2)], 2, 3);
        assert!(matches!(s.validate(), Err(VoteError::ZeroWeight(_, _))));
    }

    #[test]
    fn quorum_larger_than_total_rejected() {
        let s = spec(&[(1, 1), (2, 1)], 3, 2);
        assert!(matches!(
            s.validate(),
            Err(VoteError::QuorumTooLarge { .. })
        ));
    }

    #[test]
    fn no_copies_rejected() {
        let s = spec(&[], 1, 1);
        assert!(matches!(s.validate(), Err(VoteError::NoCopies(_))));
    }

    #[test]
    fn weighted_copies_count_correctly() {
        let s = spec(&[(1, 3), (2, 1), (3, 1)], 2, 4);
        assert_eq!(s.validate(), Ok(()));
        let g: BTreeSet<SiteId> = [SiteId(1)].into();
        assert!(s.read_quorum_among(&g), "3 votes at s1 beat r=2");
        assert!(!s.write_quorum_among(&g), "3 votes at s1 miss w=4");
        let g2: BTreeSet<SiteId> = [SiteId(1), SiteId(2)].into();
        assert!(s.write_quorum_among(&g2));
    }

    #[test]
    fn version_ordering() {
        assert!(Version(2) > Version::INITIAL);
        assert_eq!(Version(1).next(), Version(2));
    }
}
