//! Partition accessibility analysis.
//!
//! Section 2 of the paper observes that data availability is reduced
//! *twice* under failures: once by the commit/termination protocol
//! (blocked transactions hold locks) and once by the partition-processing
//! strategy (a partition lacking `r(x)`/`w(x)` votes cannot touch `x`).
//! This module computes, for a given partition of the network and a given
//! set of lock-blocked copies, exactly which items each component may
//! read or write — the metric behind Examples 1 and 4 and experiment E8.

use crate::catalog::Catalog;
use crate::item::ItemId;
use qbc_simnet::SiteId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Accessibility of one item inside one partition component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItemAccess {
    /// The component can collect `r(x)` votes from unblocked copies.
    pub readable: bool,
    /// The component can collect `w(x)` votes from unblocked copies.
    pub writable: bool,
}

/// Accessibility report for an entire partitioned network.
#[derive(Clone, Debug, Default)]
pub struct AccessReport {
    /// `per_component[i][item]` = accessibility of `item` in component `i`.
    pub per_component: Vec<BTreeMap<ItemId, ItemAccess>>,
    /// The components analysed (parallel to `per_component`).
    pub components: Vec<BTreeSet<SiteId>>,
}

impl AccessReport {
    /// Number of `(component, item)` pairs where the item is readable.
    pub fn readable_pairs(&self) -> usize {
        self.per_component
            .iter()
            .flat_map(|m| m.values())
            .filter(|a| a.readable)
            .count()
    }

    /// Number of `(component, item)` pairs where the item is writable.
    pub fn writable_pairs(&self) -> usize {
        self.per_component
            .iter()
            .flat_map(|m| m.values())
            .filter(|a| a.writable)
            .count()
    }

    /// True when the item is readable in at least one component.
    pub fn readable_somewhere(&self, item: ItemId) -> bool {
        self.per_component
            .iter()
            .any(|m| m.get(&item).map(|a| a.readable).unwrap_or(false))
    }

    /// True when the item is writable in at least one component.
    pub fn writable_somewhere(&self, item: ItemId) -> bool {
        self.per_component
            .iter()
            .any(|m| m.get(&item).map(|a| a.writable).unwrap_or(false))
    }

    /// Accessibility of `item` in the component containing `site`.
    pub fn at_site(&self, site: SiteId, item: ItemId) -> Option<ItemAccess> {
        self.components
            .iter()
            .position(|c| c.contains(&site))
            .and_then(|i| self.per_component[i].get(&item).copied())
    }
}

impl fmt::Display for AccessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (comp, access)) in self
            .components
            .iter()
            .zip(self.per_component.iter())
            .enumerate()
        {
            let members: Vec<String> = comp.iter().map(|s| s.to_string()).collect();
            writeln!(f, "G{} = {{{}}}", i + 1, members.join(", "))?;
            for (item, a) in access {
                writeln!(
                    f,
                    "  {item}: read={} write={}",
                    if a.readable { "yes" } else { "no" },
                    if a.writable { "yes" } else { "no" },
                )?;
            }
        }
        Ok(())
    }
}

/// Computes accessibility of every item in every component.
///
/// * `components` — the current partition (only up sites should be listed;
///   crashed sites contribute no votes).
/// * `blocked` — predicate: is the copy of `item` at `site` held by a
///   blocked (undecided) transaction? Blocked copies contribute no votes,
///   reflecting that their locks make them inaccessible.
pub fn analyze(
    catalog: &Catalog,
    components: &[BTreeSet<SiteId>],
    mut blocked: impl FnMut(SiteId, ItemId) -> bool,
) -> AccessReport {
    let mut report = AccessReport {
        per_component: Vec::with_capacity(components.len()),
        components: components.to_vec(),
    };
    for comp in components {
        let mut access = BTreeMap::new();
        for spec in catalog.items() {
            let votes: u32 = spec
                .copies
                .iter()
                .filter(|(s, _)| comp.contains(s) && !blocked(**s, spec.id))
                .map(|(_, &w)| w)
                .sum();
            access.insert(
                spec.id,
                ItemAccess {
                    readable: votes >= spec.read_quorum,
                    writable: votes >= spec.write_quorum,
                },
            );
        }
        report.per_component.push(access);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;

    fn example1_catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at([SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
            .quorums(2, 3)
            .item(ItemId(1), "y")
            .copies_at([SiteId(5), SiteId(6), SiteId(7), SiteId(8)])
            .quorums(2, 3)
            .build()
            .unwrap()
    }

    /// The Example 1/4 partition: G1 = {s1,s2,s3}, G2 = {s4,s5},
    /// G3 = {s6,s7,s8} (s1 is crashed in the paper's scenario, so we list
    /// G1 without it to model "contributes no votes").
    fn example_components(include_s1: bool) -> Vec<BTreeSet<SiteId>> {
        let mut g1: BTreeSet<SiteId> = [SiteId(2), SiteId(3)].into();
        if include_s1 {
            g1.insert(SiteId(1));
        }
        vec![
            g1,
            [SiteId(4), SiteId(5)].into(),
            [SiteId(6), SiteId(7), SiteId(8)].into(),
        ]
    }

    #[test]
    fn example4_availability_when_no_locks_held() {
        // After TP1 aborts TR in G1 and G3, no locks are held: the paper
        // says x can be read in G1 and y can be written in G3.
        let cat = example1_catalog();
        let report = analyze(&cat, &example_components(false), |_, _| false);
        let x = ItemId(0);
        let y = ItemId(1);
        // G1 = {s2,s3}: 2 votes of x => readable (r=2), not writable (w=3).
        assert_eq!(
            report.per_component[0][&x],
            ItemAccess {
                readable: true,
                writable: false
            }
        );
        // G3 = {s6,s7,s8}: 3 votes of y => readable and writable.
        assert_eq!(
            report.per_component[2][&y],
            ItemAccess {
                readable: true,
                writable: true
            }
        );
        // G2 = {s4,s5}: 1 vote of x, 1 of y => nothing accessible.
        assert_eq!(
            report.per_component[1][&x],
            ItemAccess {
                readable: false,
                writable: false
            }
        );
        assert_eq!(
            report.per_component[1][&y],
            ItemAccess {
                readable: false,
                writable: false
            }
        );
    }

    #[test]
    fn example1_blocked_locks_destroy_availability() {
        // While TR is blocked everywhere (Skeen [16] termination), its
        // X-locks on x and y copies make both items inaccessible even in
        // components with enough votes.
        let cat = example1_catalog();
        let report = analyze(&cat, &example_components(false), |_, _| true);
        assert_eq!(report.readable_pairs(), 0);
        assert_eq!(report.writable_pairs(), 0);
        assert!(!report.readable_somewhere(ItemId(0)));
    }

    #[test]
    fn partial_blocking_counts_only_free_copies() {
        let cat = example1_catalog();
        // Only s2's copy of x is blocked: G1 keeps 1 free vote => below r=2.
        let report = analyze(&cat, &example_components(false), |s, i| {
            s == SiteId(2) && i == ItemId(0)
        });
        assert!(!report.per_component[0][&ItemId(0)].readable);
        // y in G3 untouched.
        assert!(report.per_component[2][&ItemId(1)].writable);
    }

    #[test]
    fn at_site_resolves_component() {
        let cat = example1_catalog();
        let report = analyze(&cat, &example_components(false), |_, _| false);
        let a = report.at_site(SiteId(7), ItemId(1)).unwrap();
        assert!(a.writable);
        assert!(report.at_site(SiteId(99), ItemId(1)).is_none());
    }

    #[test]
    fn display_renders_components() {
        let cat = example1_catalog();
        let report = analyze(&cat, &example_components(false), |_, _| false);
        let text = report.to_string();
        assert!(text.contains("G1 = {s2, s3}"));
        assert!(text.contains("x0: read=yes write=no"));
    }
}
