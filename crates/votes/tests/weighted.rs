//! Weighted-vote configurations: non-uniform copy weights change which
//! partitions hold quorums — the expressiveness Gifford's scheme adds
//! over copy counting.

use qbc_simnet::SiteId;
use qbc_votes::{analyze, CatalogBuilder, ItemAccess, ItemId};
use std::collections::BTreeSet;

/// A "primary-biased" assignment: the primary site holds 3 of 6 votes,
/// so the primary plus any other copy forms a write quorum (w=4), while
/// the three replicas together cannot write but can read (r=3).
#[test]
fn primary_biased_weights_shift_quorums() {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copy(SiteId(0), 3) // primary
        .copy(SiteId(1), 1)
        .copy(SiteId(2), 1)
        .copy(SiteId(3), 1)
        .quorums(3, 4)
        .build()
        .unwrap();

    let with_primary: Vec<BTreeSet<SiteId>> =
        vec![[SiteId(0), SiteId(1)].into(), [SiteId(2), SiteId(3)].into()];
    let report = analyze(&catalog, &with_primary, |_, _| false);
    assert_eq!(
        report.per_component[0][&ItemId(0)],
        ItemAccess {
            readable: true,
            writable: true
        },
        "primary + one replica: 4 votes"
    );
    assert_eq!(
        report.per_component[1][&ItemId(0)],
        ItemAccess {
            readable: false,
            writable: false
        },
        "two replicas: 2 votes < r=3"
    );

    let replicas_united: Vec<BTreeSet<SiteId>> =
        vec![[SiteId(0)].into(), [SiteId(1), SiteId(2), SiteId(3)].into()];
    let report = analyze(&catalog, &replicas_united, |_, _| false);
    assert_eq!(
        report.per_component[0][&ItemId(0)],
        ItemAccess {
            readable: true,
            writable: false
        },
        "primary alone: 3 votes = r, < w"
    );
    assert_eq!(
        report.per_component[1][&ItemId(0)],
        ItemAccess {
            readable: true,
            writable: false
        },
        "replicas together: 3 votes = r, < w"
    );
}

/// Gifford's constraints still bind with weights: the builder rejects a
/// weighted assignment whose write quorum is not a majority of votes.
#[test]
fn weighted_constraint_violations_rejected() {
    let r = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copy(SiteId(0), 5)
        .copy(SiteId(1), 1)
        .quorums(4, 3) // w=3 ≤ v/2=3: two writes could run in parallel
        .build();
    assert!(r.is_err());
}

/// Blocked copies subtract exactly their weight: pinning the heavy copy
/// kills the write quorum, pinning a light one does not.
#[test]
fn blocking_subtracts_weight() {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copy(SiteId(0), 3)
        .copy(SiteId(1), 1)
        .copy(SiteId(2), 1)
        .copy(SiteId(3), 1)
        .quorums(3, 4)
        .build()
        .unwrap();
    let all: Vec<BTreeSet<SiteId>> = vec![(0..4).map(SiteId).collect::<BTreeSet<_>>()];

    let heavy_pinned = analyze(&catalog, &all, |s, _| s == SiteId(0));
    assert_eq!(
        heavy_pinned.per_component[0][&ItemId(0)],
        ItemAccess {
            readable: true,
            writable: false
        },
        "3 light votes: read yes (r=3), write no (w=4)"
    );

    let light_pinned = analyze(&catalog, &all, |s, _| s == SiteId(3));
    assert_eq!(
        light_pinned.per_component[0][&ItemId(0)],
        ItemAccess {
            readable: true,
            writable: true
        },
        "5 remaining votes keep both quorums"
    );
}
