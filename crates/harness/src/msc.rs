//! Message-sequence-chart rendering from simulation traces.
//!
//! The paper presents its protocols as message diagrams (Fig. 1 for
//! 2PC, Fig. 2 for 3PC, Fig. 9 for the quorum commit protocol). This
//! module regenerates those diagrams from *executed runs*: every
//! delivered message of a trace becomes one row of an ASCII chart with
//! one column per site.

use qbc_simnet::{SiteId, Time, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rendered chart row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Delivery time.
    pub at: Time,
    /// Sender.
    pub from: SiteId,
    /// Receiver.
    pub to: SiteId,
    /// Message label.
    pub label: &'static str,
}

/// Extracts the delivered-message hops of a trace, in delivery order.
pub fn hops(trace: &[TraceEvent]) -> Vec<Hop> {
    trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Delivered {
                at,
                from,
                to,
                label,
            } => Some(Hop {
                at: *at,
                from: *from,
                to: *to,
                label,
            }),
            _ => None,
        })
        .collect()
}

/// Renders an ASCII message sequence chart: one column per site, one
/// row per delivered message, arrows pointing from sender to receiver.
///
/// `sites` fixes the column order (pass every site of the run).
pub fn render(trace: &[TraceEvent], sites: &[SiteId]) -> String {
    const COL: usize = 12;
    let index: BTreeMap<SiteId, usize> = sites.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>6} ", "t");
    for s in sites {
        let _ = write!(out, "{:^COL$}", s.to_string());
    }
    out.push('\n');
    for hop in hops(trace) {
        let (Some(&a), Some(&b)) = (index.get(&hop.from), index.get(&hop.to)) else {
            continue;
        };
        let _ = write!(out, "{:>6} ", hop.at.0);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi {
            // Self-delivery: mark in place.
            for i in 0..sites.len() {
                if i == lo {
                    let _ = write!(out, "{:^COL$}", format!("({})", hop.label));
                } else {
                    let _ = write!(out, "{:^COL$}", "|");
                }
            }
        } else {
            // Lay the label across the span between the two columns.
            let span_cols = hi - lo + 1;
            let width = span_cols * COL;
            let arrow = if a < b {
                format!("{}>", hop.label)
            } else {
                format!("<{}", hop.label)
            };
            let body = format!("{arrow:-^w$}", w = width.saturating_sub(2));
            for i in 0..sites.len() {
                if i == lo {
                    let _ = write!(out, "{body}");
                } else if i > lo && i <= hi {
                    // consumed by the span
                } else {
                    let _ = write!(out, "{:^COL$}", "|");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders only hops with one of the given labels (e.g. just the
/// commit-protocol messages, skipping elections).
pub fn render_filtered(trace: &[TraceEvent], sites: &[SiteId], labels: &[&str]) -> String {
    let filtered: Vec<TraceEvent> = trace
        .iter()
        .filter(|e| match e {
            TraceEvent::Delivered { label, .. } => labels.contains(label),
            _ => false,
        })
        .cloned()
        .collect();
    render(&filtered, sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, from: u32, to: u32, label: &'static str) -> TraceEvent {
        TraceEvent::Delivered {
            at: Time(at),
            from: SiteId(from),
            to: SiteId(to),
            label,
        }
    }

    #[test]
    fn hops_extracts_only_deliveries() {
        let trace = vec![
            ev(1, 0, 1, "VOTE-REQ"),
            TraceEvent::Crashed {
                at: Time(2),
                site: SiteId(0),
            },
            ev(3, 1, 0, "VOTE-YES"),
        ];
        let h = hops(&trace);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].label, "VOTE-REQ");
        assert_eq!(h[1].from, SiteId(1));
    }

    #[test]
    fn render_produces_one_row_per_hop_plus_header() {
        let trace = vec![ev(1, 0, 2, "VOTE-REQ"), ev(2, 2, 0, "VOTE-YES")];
        let sites = [SiteId(0), SiteId(1), SiteId(2)];
        let chart = render(&trace, &sites);
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains("VOTE-REQ>"));
        assert!(chart.contains("<VOTE-YES"));
    }

    #[test]
    fn self_delivery_renders_in_place() {
        let trace = vec![ev(1, 1, 1, "COMMIT")];
        let chart = render(&trace, &[SiteId(0), SiteId(1)]);
        assert!(chart.contains("(COMMIT)"));
    }

    #[test]
    fn filter_keeps_only_requested_labels() {
        let trace = vec![ev(1, 0, 1, "VOTE-REQ"), ev(2, 0, 1, "ELECTION")];
        let chart = render_filtered(&trace, &[SiteId(0), SiteId(1)], &["VOTE-REQ"]);
        assert!(chart.contains("VOTE-REQ"));
        assert!(!chart.contains("ELECTION"));
    }
}
