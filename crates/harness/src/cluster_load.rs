//! Cluster load generator: many concurrent client sessions driving a
//! [`SimCluster`] through its submit/await API, with periodic metric
//! sampling (supports experiment E13, the group-commit throughput
//! claim).

use qbc_cluster::{ClusterConfig, ClusterMetrics, SimCluster};
use qbc_core::WriteSet;
use qbc_simnet::Time;
use qbc_votes::ItemId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shape of a cluster load run.
#[derive(Clone, Debug)]
pub struct ClusterLoadConfig {
    /// The cluster under load.
    pub cluster: ClusterConfig,
    /// Concurrent client sessions.
    pub clients: u32,
    /// Transactions each client submits.
    pub txns_per_client: u32,
    /// Items written per transaction (within one shard, or split across
    /// two when the cross-shard coin lands).
    pub items_per_txn: u32,
    /// Fraction of transactions whose writeset spans *two* shards
    /// (routed through the cross-shard two-layer commit). Zero keeps
    /// the single-shard-only workload.
    pub xshard_fraction: f64,
    /// Fraction of submission slots that *also* fire a read of a random
    /// item alongside the write transaction. Reads go through the
    /// quorum path ([`SimCluster::read_at`]) unless the cluster has
    /// [`ClusterConfig::snapshot_reads`] on, in which case they use the
    /// watermark snapshot path. Zero keeps the write-only workload and
    /// leaves the RNG stream — and so every pre-existing seeded
    /// workload — bit-identical.
    pub read_fraction: f64,
    /// Ticks between one client's consecutive submissions.
    pub think_time: u64,
    /// RNG seed for writesets and shard choice.
    pub seed: u64,
}

impl Default for ClusterLoadConfig {
    fn default() -> Self {
        ClusterLoadConfig {
            cluster: ClusterConfig {
                // A wider item space than the cluster default: load runs
                // measure throughput, and 8 items per shard under no-wait
                // 2PL turns most of the stream into lock-conflict aborts.
                items_per_shard: 24,
                ..ClusterConfig::default()
            },
            clients: 8,
            txns_per_client: 4,
            items_per_txn: 2,
            xshard_fraction: 0.0,
            read_fraction: 0.0,
            think_time: 60,
            seed: 0,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Clone, Debug)]
pub struct ClusterLoadReport {
    /// Final harvested metrics (peak queue depths sampled during the
    /// run).
    pub metrics: ClusterMetrics,
    /// Transactions submitted.
    pub submitted: u64,
    /// Of those, writesets spanning two shards.
    pub cross_shard: u64,
    /// Reads fired alongside the write stream (zero unless
    /// [`ClusterLoadConfig::read_fraction`] is set).
    pub reads_issued: u64,
    /// Of those, reads that resolved with a committed value.
    pub reads_success: u64,
    /// Of those, reads that resolved `Unavailable` (pinned copies under
    /// the quorum path, or no reachable copy under the snapshot path).
    pub reads_unavailable: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions still undecided when the run settled.
    pub undecided: u64,
    /// No transaction terminated inconsistently and no engine recorded
    /// a violation.
    pub consistent: bool,
    /// Virtual time when the cluster settled.
    pub elapsed: Time,
    /// Committed transactions per 1 000 virtual ticks.
    pub committed_per_kilotick: f64,
    /// Total WAL forces paid.
    pub wal_forces: u64,
    /// Mean client-observed decision latency.
    pub mean_latency: f64,
    /// Median client-observed decision latency (bucket upper bound),
    /// over all shards merged.
    pub p50_latency: u64,
    /// 99th-percentile client-observed decision latency (bucket upper
    /// bound), over all shards merged.
    pub p99_latency: u64,
}

/// Runs the load: `clients` sessions submit on a staggered schedule,
/// the cluster runs to quiescence (bounded), and metrics are sampled
/// along the way so peak queue depths are meaningful.
pub fn run_cluster_load(cfg: &ClusterLoadConfig) -> ClusterLoadReport {
    let mut cluster = SimCluster::new(cfg.cluster.clone());
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xE13));
    let shards: Vec<_> = (0..cluster.map().shards())
        .map(qbc_cluster::ShardId)
        .collect();

    let mut sessions: Vec<_> = (0..cfg.clients).map(|_| cluster.open_session()).collect();
    let mut last_submission = Time::ZERO;
    let mut cross_shard = 0u64;
    let mut pending_reads: Vec<qbc_cluster::ReadHandle> = Vec::new();
    for j in 0..cfg.txns_per_client {
        for (c, session) in sessions.iter_mut().enumerate() {
            // Stagger clients inside one think window so submissions
            // spread instead of arriving in lockstep.
            let jitter = (c as u64).wrapping_mul(7) % cfg.think_time.max(1);
            let at = Time(j as u64 * cfg.think_time + jitter);
            // Short-circuit before drawing: a zero fraction must leave
            // the RNG stream — and so every pre-existing seeded
            // workload — bit-identical.
            let go_wide = cfg.xshard_fraction > 0.0
                && shards.len() > 1
                && rng.gen_bool(cfg.xshard_fraction.clamp(0.0, 1.0));
            let mut items: Vec<ItemId>;
            if go_wide {
                // Split the writeset across two distinct shards.
                cross_shard += 1;
                let a = *shards.choose(&mut rng).expect("at least one shard");
                let b = loop {
                    let s = *shards.choose(&mut rng).expect("at least one shard");
                    if s != a {
                        break s;
                    }
                };
                // Preserve the configured writeset size: ceil(n/2) items
                // from the first shard, floor(n/2) from the second.
                let n = (cfg.items_per_txn as usize).max(2);
                items = Vec::new();
                for (shard, take) in [(a, n.div_ceil(2)), (b, n / 2)] {
                    let mut side = cluster.map().items_of(shard);
                    side.shuffle(&mut rng);
                    items.extend(side.into_iter().take(take));
                }
            } else {
                let shard = *shards.choose(&mut rng).expect("at least one shard");
                items = cluster.map().items_of(shard);
                items.shuffle(&mut rng);
                items.truncate((cfg.items_per_txn as usize).max(1));
            }
            let ws = WriteSet::new(
                items
                    .into_iter()
                    .map(|i: ItemId| (i, rng.gen_range(0..1_000_000i64))),
            );
            cluster.submit(session, at, ws);
            // Same short-circuit discipline as `go_wide`: a zero read
            // fraction must not draw from the RNG at all.
            if cfg.read_fraction > 0.0 && rng.gen_bool(cfg.read_fraction.clamp(0.0, 1.0)) {
                let shard = *shards.choose(&mut rng).expect("at least one shard");
                let item = *cluster
                    .map()
                    .items_of(shard)
                    .choose(&mut rng)
                    .expect("shards are non-empty");
                let h = if cfg.cluster.snapshot_reads {
                    cluster.snapshot_read_at(at, item)
                } else {
                    cluster.read_at(at, item)
                };
                pending_reads.push(h);
            }
            if at > last_submission {
                last_submission = at;
            }
        }
    }

    // Drive in slices, harvesting between them so peak queue depth and
    // device backlog are observed live rather than only at the end.
    // With reads in flight the slices shrink and extend past the last
    // submission: read collectors retire a couple of collection windows
    // after resolving (the read tables are bounded), so results must be
    // polled while the entries are still present.
    let reads_issued = pending_reads.len() as u64;
    let mut reads_success = 0u64;
    let mut reads_unavailable = 0u64;
    let snap = cfg.cluster.snapshot_reads;
    let (slice, drive_end) = if pending_reads.is_empty() {
        ((cfg.think_time.max(1)) * 4, last_submission)
    } else {
        (25, Time(last_submission.0 + 200))
    };
    let mut t = Time::ZERO;
    while t < drive_end {
        t = Time(t.0 + slice);
        cluster.run_until(t);
        let _ = cluster.metrics();
        pending_reads.retain(|h| {
            let r = if snap {
                cluster.snap_read_result(h)
            } else {
                cluster.read_result(h)
            };
            match r {
                Some(qbc_db::ReadResult::Success { .. }) => {
                    reads_success += 1;
                    false
                }
                Some(qbc_db::ReadResult::Unavailable) => {
                    reads_unavailable += 1;
                    false
                }
                // Still collecting (or already retired unobserved:
                // counted in neither bucket).
                _ => true,
            }
        });
    }
    let mut settled = false;
    for _ in 0..200 {
        let q = cluster.run_to_quiescence(5_000_000);
        let _ = cluster.metrics();
        if q.drained() {
            settled = true;
            break;
        }
    }
    let _ = settled; // undecided count reports any residue

    let (metrics, violations) = cluster.metrics_and_violations();
    let merged_latency = metrics.merged_latency();
    let consistent = violations.is_empty() && cluster.engine_violations().is_empty();
    let submitted: u64 = metrics.shards.iter().map(|s| s.submitted).sum();
    let committed = metrics.total_committed();
    let aborted = metrics.total_aborted();
    let undecided = metrics.total_undecided();
    let elapsed = cluster.now();
    ClusterLoadReport {
        submitted,
        cross_shard,
        reads_issued,
        reads_success,
        reads_unavailable,
        committed,
        aborted,
        undecided,
        consistent,
        elapsed,
        committed_per_kilotick: if elapsed.0 > 0 {
            committed as f64 * 1_000.0 / elapsed.0 as f64
        } else {
            0.0
        },
        wal_forces: metrics.total_wal_forces(),
        mean_latency: metrics.mean_latency(),
        p50_latency: merged_latency.p50().0,
        p99_latency: merged_latency.p99().0,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_simnet::Duration;

    #[test]
    fn light_load_commits_nearly_everything() {
        let cfg = ClusterLoadConfig::default();
        let r = run_cluster_load(&cfg);
        assert!(r.consistent);
        assert_eq!(r.undecided, 0);
        assert_eq!(r.submitted, 32);
        assert!(
            r.committed >= r.submitted * 7 / 10,
            "committed {}/{}",
            r.committed,
            r.submitted
        );
        assert!(r.wal_forces > 0);
        // Quantiles of the merged latency distribution are populated
        // and ordered.
        assert!(r.p50_latency > 0);
        assert!(r.p50_latency <= r.p99_latency);
    }

    #[test]
    fn mixed_cross_shard_load_commits_and_stays_consistent() {
        let cfg = ClusterLoadConfig {
            xshard_fraction: 0.4,
            clients: 8,
            txns_per_client: 5,
            seed: 5,
            ..Default::default()
        };
        let r = run_cluster_load(&cfg);
        assert!(r.consistent);
        assert_eq!(r.undecided, 0);
        assert_eq!(r.submitted, 40);
        assert!(
            r.cross_shard >= 8,
            "expected a real cross-shard share, got {}",
            r.cross_shard
        );
        assert!(
            r.committed >= r.submitted * 6 / 10,
            "committed {}/{} (cross-shard {})",
            r.committed,
            r.submitted,
            r.cross_shard
        );
    }

    #[test]
    fn adaptive_window_collapses_when_idle_and_still_batches_under_load() {
        // Light load over a costly device with a wide static window:
        // the static batcher always waits the window out, the adaptive
        // one sizes it from the live `wal_backlog` gauge and collapses
        // to one tick while the device idles.
        let light = ClusterLoadConfig {
            clients: 4,
            txns_per_client: 3,
            think_time: 300,
            seed: 9,
            cluster: ClusterConfig {
                force_latency: Duration(3),
                group_commit_window: Some(Duration(12)),
                ..ClusterConfig::default()
            }
            .with_group_commit(),
            ..Default::default()
        };
        let static_run = run_cluster_load(&light);
        let adaptive_run = run_cluster_load(&ClusterLoadConfig {
            cluster: light.cluster.clone().with_adaptive_commit_window(),
            ..light.clone()
        });
        assert!(static_run.consistent && adaptive_run.consistent);
        assert_eq!(adaptive_run.undecided, 0);
        assert!(
            adaptive_run.mean_latency < static_run.mean_latency,
            "idle-device adaptive latency {} should beat static-window {}",
            adaptive_run.mean_latency,
            static_run.mean_latency
        );

        // Heavy load on the same device: backlog stretches the adaptive
        // window back out, so forces are still amortized over many
        // records compared with per-record forcing.
        let heavy = ClusterLoadConfig {
            clients: 24,
            txns_per_client: 4,
            think_time: 30,
            seed: 9,
            cluster: ClusterConfig {
                force_latency: Duration(6),
                ..ClusterConfig::default()
            },
            ..Default::default()
        };
        let heavy_plain = run_cluster_load(&heavy);
        let heavy_adaptive = run_cluster_load(&ClusterLoadConfig {
            cluster: heavy
                .cluster
                .clone()
                .with_group_commit()
                .with_adaptive_commit_window(),
            ..heavy.clone()
        });
        assert!(heavy_plain.consistent && heavy_adaptive.consistent);
        assert!(
            heavy_adaptive.wal_forces < heavy_plain.wal_forces,
            "adaptive batching {} should amortize vs per-record {}",
            heavy_adaptive.wal_forces,
            heavy_plain.wal_forces
        );
    }

    #[test]
    fn read_heavy_snapshot_load_observes_every_read() {
        // Snapshot reads under a concurrent write stream: every issued
        // read resolves while its collector is still alive, and the
        // watermark path never reports Unavailable while all sites are
        // up (copies pinned by in-flight commits are read *under* the
        // pins).
        let cfg = ClusterLoadConfig {
            read_fraction: 0.5,
            seed: 21,
            cluster: ClusterConfig::default().with_snapshot_reads(4),
            ..Default::default()
        };
        let r = run_cluster_load(&cfg);
        assert!(r.consistent);
        assert!(r.reads_issued > 0, "the read coin never landed");
        assert_eq!(
            r.reads_success + r.reads_unavailable,
            r.reads_issued,
            "every read must be observed before its collector retires"
        );
        assert_eq!(
            r.reads_unavailable, 0,
            "snapshot reads must not be blocked by pinned copies"
        );
    }

    #[test]
    fn read_heavy_quorum_load_observes_every_read() {
        // Same workload over the quorum read path: everything still
        // resolves in-window; availability is not asserted (pinned
        // copies can legitimately return Unavailable here).
        let cfg = ClusterLoadConfig {
            read_fraction: 0.5,
            seed: 21,
            ..Default::default()
        };
        let r = run_cluster_load(&cfg);
        assert!(r.consistent);
        assert!(r.reads_issued > 0);
        assert_eq!(r.reads_success + r.reads_unavailable, r.reads_issued);
    }

    #[test]
    fn group_commit_load_is_consistent_and_cheaper_in_forces() {
        let base = ClusterLoadConfig {
            clients: 16,
            txns_per_client: 3,
            seed: 2,
            ..Default::default()
        };
        let plain = run_cluster_load(&base);
        let batched = run_cluster_load(&ClusterLoadConfig {
            cluster: ClusterConfig {
                force_latency: Duration(3),
                ..base.cluster.clone()
            }
            .with_group_commit(),
            ..base
        });
        assert!(plain.consistent && batched.consistent);
        assert!(
            batched.wal_forces < plain.wal_forces,
            "batched {} vs plain {}",
            batched.wal_forces,
            plain.wal_forces
        );
    }
}
