//! # qbc-harness — scenarios, failure injection, checkers, sweeps
//!
//! The experiment layer: everything needed to regenerate the paper's
//! examples, figures and comparative claims.
//!
//! * [`scenario`] — declarative cluster + workload + failure schedules,
//!   with per-transaction consistency verdicts, latency and availability
//!   reports.
//! * [`paper`] — the exact Fig. 3 (Examples 1/2/4) and Fig. 7
//!   (Example 3) choreographies.
//! * [`latency`] — failure-free commit latency and message counts per
//!   protocol (experiment E7).
//! * [`montecarlo`] — randomized crash/partition sweeps measuring
//!   blocking probability, availability and violation rates (E8–E10).
//! * [`concurrency`] — empirical re-derivation of Fig. 4's concurrency
//!   sets (E5).
//! * [`audit`] — Fig. 6 transition-conformance audits (E6).
//! * [`workload`] — multi-transaction streams: contention, throughput,
//!   mid-stream failures (E11).
//! * [`cluster_load`] — concurrent client sessions against the sharded
//!   cluster runtime of `qbc-cluster` (E13).
//! * [`open_loop`] — open-loop arrivals (target rate, completions
//!   decoupled) against the reactor front-end (E18).
//! * [`table`] — plain-text table rendering for experiment binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod cluster_load;
pub mod concurrency;
pub mod latency;
pub mod montecarlo;
pub mod msc;
pub mod open_loop;
pub mod paper;
pub mod scenario;
pub mod table;
pub mod workload;

pub use scenario::{Fault, Scenario, ScenarioOutcome, TxnSubmission, TxnVerdict};
