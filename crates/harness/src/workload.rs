//! Multi-transaction workloads: contention, throughput and failure
//! injection over a stream of transactions (supports experiment E11 and
//! the intro's concurrency motivation).

use crate::scenario::{Fault, Scenario};
use qbc_core::{ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_simnet::{sites, Duration, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a transaction-stream workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of sites.
    pub n_sites: u32,
    /// Number of items.
    pub n_items: u32,
    /// Copies per item (round-robin placement).
    pub copies_per_item: u32,
    /// Read quorum per item.
    pub read_q: u32,
    /// Write quorum per item.
    pub write_q: u32,
    /// Number of transactions submitted.
    pub n_txns: u32,
    /// Items written per transaction.
    pub items_per_txn: u32,
    /// Ticks between consecutive submissions.
    pub interarrival: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Crash the busiest coordinator mid-stream?
    pub crash_mid_stream: bool,
    /// RNG seed (writesets, coordinators).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_sites: 8,
            n_items: 6,
            copies_per_item: 4,
            read_q: 2,
            write_q: 3,
            n_txns: 40,
            items_per_txn: 2,
            interarrival: 120,
            protocol: ProtocolKind::QuorumCommit2,
            crash_mid_stream: false,
            seed: 0,
        }
    }
}

impl WorkloadConfig {
    /// Builds the catalog for this workload.
    pub fn catalog(&self) -> Catalog {
        let mut b = CatalogBuilder::new();
        for i in 0..self.n_items {
            b = b.item(ItemId(i), format!("x{i}"));
            for k in 0..self.copies_per_item {
                b = b.copy(SiteId((i + k) % self.n_sites), 1);
            }
            b = b.quorums(self.read_q, self.write_q);
        }
        b.build().expect("workload catalog valid")
    }
}

/// Results of a workload run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Transactions fully committed (every participant).
    pub committed: u32,
    /// Transactions fully aborted.
    pub aborted: u32,
    /// Transactions with any undecided participant at end time.
    pub undecided: u32,
    /// No transaction terminated inconsistently.
    pub consistent: bool,
    /// Mean client-observed commit latency over committed transactions.
    pub mean_commit_latency: f64,
    /// Messages delivered per submitted transaction.
    pub messages_per_txn: f64,
    /// Committed transactions per 1 000 ticks.
    pub throughput: f64,
}

/// Runs the workload and aggregates.
pub fn run_workload(cfg: &WorkloadConfig) -> WorkloadReport {
    let catalog = cfg.catalog();
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE));
    let all_sites = sites(cfg.n_sites);
    let item_pool: Vec<ItemId> = (0..cfg.n_items).map(ItemId).collect();

    let mut s = Scenario::new(
        format!("workload/{}", cfg.protocol.name()),
        catalog,
        all_sites.clone(),
    );
    s.seed = cfg.seed;
    s.record_trace = false;
    s.min_delay = Duration(1);
    if cfg.protocol == ProtocolKind::SkeenQuorum {
        let q = cfg.n_sites / 2 + 1;
        s.site_votes = Some(SiteVotes::uniform(all_sites.clone(), q, q));
    }
    for k in 0..cfg.n_txns {
        let at = Time(k as u64 * cfg.interarrival);
        let coordinator = *all_sites.choose(&mut rng).expect("sites");
        let mut items = item_pool.clone();
        items.shuffle(&mut rng);
        items.truncate(cfg.items_per_txn as usize);
        let ws = WriteSet::new(
            items
                .into_iter()
                .map(|i| (i, rng.gen_range(0..1_000_000i64))),
        );
        s = s.submit(at, coordinator, (k + 1) as u64, ws, cfg.protocol);
    }
    let span = cfg.n_txns as u64 * cfg.interarrival;
    if cfg.crash_mid_stream {
        s = s
            .fault(Time(span / 2), Fault::Crash(SiteId(0)))
            .fault(Time(span / 2 + 600), Fault::Recover(SiteId(0)));
    }
    s.run_until = Time(span + 4_000);
    let out = s.run();

    let mut committed = 0;
    let mut aborted = 0;
    let mut undecided = 0;
    let mut consistent = true;
    let mut latency_sum = 0u64;
    for k in 0..cfg.n_txns {
        let v = out.verdict(TxnId((k + 1) as u64));
        consistent &= v.consistent;
        if !v.undecided.is_empty() {
            undecided += 1;
        } else if !v.committed.is_empty() {
            committed += 1;
            if let Some(l) = out.coordinator_latency(TxnId((k + 1) as u64)) {
                latency_sum += l.0;
            }
        } else {
            aborted += 1;
        }
    }
    WorkloadReport {
        committed,
        aborted,
        undecided,
        consistent,
        mean_commit_latency: if committed > 0 {
            latency_sum as f64 / committed as f64
        } else {
            0.0
        },
        messages_per_txn: out.sim.stats().delivered as f64 / cfg.n_txns as f64,
        throughput: committed as f64 * 1_000.0 / (span + 4_000) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_workload_commits_nearly_everything() {
        let cfg = WorkloadConfig::default();
        let r = run_workload(&cfg);
        assert!(r.consistent);
        assert_eq!(r.undecided, 0);
        // Low contention (6 items, 2 per txn, staggered): most commit;
        // occasional no-wait lock conflicts may abort a few.
        assert!(
            r.committed >= cfg.n_txns * 8 / 10,
            "committed only {}/{}",
            r.committed,
            cfg.n_txns
        );
    }

    #[test]
    fn every_protocol_stays_consistent_under_contention() {
        for p in ProtocolKind::ALL {
            let cfg = WorkloadConfig {
                protocol: p,
                n_items: 2, // high contention
                items_per_txn: 2,
                interarrival: 40, // heavy overlap
                n_txns: 25,
                ..Default::default()
            };
            let r = run_workload(&cfg);
            assert!(r.consistent, "{} inconsistent under contention", p.name());
        }
    }

    #[test]
    fn coordinator_crash_mid_stream_is_survivable() {
        let cfg = WorkloadConfig {
            crash_mid_stream: true,
            ..Default::default()
        };
        let r = run_workload(&cfg);
        assert!(r.consistent);
        // In-flight transactions at the crash may abort or block briefly;
        // the stream as a whole keeps committing.
        assert!(r.committed > cfg.n_txns / 2);
    }

    #[test]
    fn contention_aborts_rise_with_overlap() {
        let relaxed = run_workload(&WorkloadConfig {
            interarrival: 300,
            ..Default::default()
        });
        let contended = run_workload(&WorkloadConfig {
            interarrival: 10,
            n_items: 2,
            ..Default::default()
        });
        assert!(
            contended.aborted >= relaxed.aborted,
            "contended {} vs relaxed {}",
            contended.aborted,
            relaxed.aborted
        );
    }
}
