//! Fig. 6 conformance auditing over finished runs (experiment E6).

use crate::scenario::ScenarioOutcome;
use qbc_core::{LocalState, Transition, TxnId};
use std::collections::BTreeMap;

/// The audit result: observed transition counts and any illegal edges.
#[derive(Clone, Debug, Default)]
pub struct TransitionAudit {
    /// Count per distinct `(from, to)` edge (self-loops omitted).
    pub counts: BTreeMap<(LocalState, LocalState), u64>,
    /// Illegal transitions witnessed (empty in correct runs).
    pub illegal: Vec<Transition>,
}

impl TransitionAudit {
    /// Folds every participant transition of `txn` in `out` into the
    /// audit.
    pub fn absorb(&mut self, out: &ScenarioOutcome, txn: TxnId) {
        for (_, node) in out.sim.nodes() {
            for tr in node.transitions(txn) {
                if tr.from != tr.to {
                    *self.counts.entry((tr.from, tr.to)).or_insert(0) += 1;
                }
                if !tr.is_legal() {
                    self.illegal.push(*tr);
                }
            }
        }
    }

    /// True when no illegal transition was witnessed.
    pub fn clean(&self) -> bool {
        self.illegal.is_empty()
    }

    /// True when the audit witnessed a PC↔PA crossing (the Example 3
    /// signature).
    pub fn crossed_the_wall(&self) -> bool {
        self.illegal.iter().any(|t| {
            matches!(
                (t.from, t.to),
                (LocalState::PreCommit, LocalState::PreAbort)
                    | (LocalState::PreAbort, LocalState::PreCommit)
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{fig3_scenario, fig7_scenario, TR};
    use qbc_core::{FaultyMode, ProtocolKind};

    #[test]
    fn paper_scenarios_are_clean() {
        let mut audit = TransitionAudit::default();
        for p in ProtocolKind::ALL {
            audit.absorb(&fig3_scenario(p, 1).run(), TxnId(TR));
        }
        audit.absorb(&fig7_scenario(FaultyMode::Correct, 1).run(), TxnId(TR));
        assert!(audit.clean(), "illegal: {:?}", audit.illegal);
        // The interesting legal edges appear.
        assert!(audit
            .counts
            .keys()
            .any(|(f, t)| *f == LocalState::Wait && *t == LocalState::PreAbort));
    }

    #[test]
    fn faulty_run_crosses_the_wall() {
        let mut audit = TransitionAudit::default();
        audit.absorb(
            &fig7_scenario(FaultyMode::AnswerAcrossWall, 1).run(),
            TxnId(TR),
        );
        assert!(!audit.clean());
        assert!(audit.crossed_the_wall());
    }
}
