//! Monte-Carlo failure sweeps (experiments E8, E9, E10).
//!
//! Randomized crash/partition schedules injected into a commit in
//! flight, measuring for each protocol:
//!
//! * how often some partition ends up blocked (the paper's availability
//!   concern);
//! * the fraction of `(component, item)` pairs that remain readable /
//!   writable after termination (Examples 1 vs 4, quantified);
//! * atomicity-violation rates (zero for the correct protocols; nonzero
//!   for 3PC-under-partition and for the Example 3 faulty variant).

use crate::scenario::{Fault, Scenario};
use qbc_core::{FaultyMode, ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_simnet::{sites, Duration, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of one randomized failure experiment.
#[derive(Clone, Debug)]
pub struct MonteCarloConfig {
    /// Number of sites.
    pub n_sites: u32,
    /// Number of items (each written by the probe transaction).
    pub n_items: u32,
    /// Copies per item (placed round-robin over sites).
    pub copies_per_item: u32,
    /// Read quorum per item.
    pub read_q: u32,
    /// Write quorum per item.
    pub write_q: u32,
    /// Window (ticks) within which the failure strikes, uniformly.
    pub fail_window: u64,
    /// Number of partition components to split into (≥ 1; 1 = crash
    /// only).
    pub components: usize,
    /// Also crash the coordinator at the failure instant.
    pub crash_coordinator: bool,
    /// Recover the crashed coordinator at this time (None = stays down).
    pub recover_at: Option<u64>,
    /// Heal the partition at this time (None = never during the run).
    pub heal_at: Option<u64>,
    /// Fault injection mode for participants.
    pub faulty: FaultyMode,
    /// Virtual time to run until before measuring.
    pub run_until: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            n_sites: 8,
            n_items: 2,
            copies_per_item: 4,
            read_q: 2,
            write_q: 3,
            fail_window: 60,
            components: 3,
            crash_coordinator: true,
            recover_at: None,
            heal_at: None,
            faulty: FaultyMode::Correct,
            run_until: 4_000,
        }
    }
}

impl MonteCarloConfig {
    /// Builds the round-robin catalog for this configuration.
    pub fn catalog(&self) -> Catalog {
        let mut b = CatalogBuilder::new();
        for i in 0..self.n_items {
            b = b.item(ItemId(i), format!("x{i}"));
            for k in 0..self.copies_per_item {
                let site = SiteId((i * self.copies_per_item + k) % self.n_sites);
                b = b.copy(site, 1);
            }
            b = b.quorums(self.read_q, self.write_q);
        }
        b.build().expect("monte-carlo catalog valid")
    }
}

/// Outcome of one randomized run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Every participant decided (uniformly).
    pub fully_decided: bool,
    /// Some participant is still undecided at measurement time.
    pub any_undecided: bool,
    /// Some site flagged the transaction blocked.
    pub any_blocked: bool,
    /// Atomicity violated (mixed commit/abort or engine violation).
    pub violated: bool,
    /// Fraction of `(live component, item)` pairs readable.
    pub readable_frac: f64,
    /// Fraction of `(live component, item)` pairs writable.
    pub writable_frac: f64,
}

/// Aggregated sweep results.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggregate {
    /// Runs aggregated.
    pub runs: u32,
    /// Fraction of runs with any undecided participant.
    pub blocked_rate: f64,
    /// Fraction of runs that terminated everywhere.
    pub decided_rate: f64,
    /// Fraction of runs with an atomicity violation.
    pub violation_rate: f64,
    /// Mean readable fraction.
    pub mean_readable: f64,
    /// Mean writable fraction.
    pub mean_writable: f64,
}

/// Splits `all` into `k` non-empty random components.
fn random_components(rng: &mut SmallRng, all: &[SiteId], k: usize) -> Vec<Vec<SiteId>> {
    let k = k.clamp(1, all.len());
    loop {
        let mut comps: Vec<Vec<SiteId>> = vec![Vec::new(); k];
        for &s in all {
            comps[rng.gen_range(0..k)].push(s);
        }
        if comps.iter().all(|c| !c.is_empty()) {
            return comps;
        }
    }
}

/// Builds one randomized failure scenario (exposed so experiments can
/// run it themselves and inspect node internals, e.g. transition audits).
pub fn random_failure_scenario(
    protocol: ProtocolKind,
    cfg: &MonteCarloConfig,
    seed: u64,
) -> Scenario {
    let catalog = cfg.catalog();
    let all = sites(cfg.n_sites);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let fail_at = Time(rng.gen_range(5..=cfg.fail_window));
    let comps = random_components(&mut rng, &all, cfg.components);

    let writeset = WriteSet::new((0..cfg.n_items).map(|i| (ItemId(i), 100 + i as i64)));
    let coordinator = SiteId(0);
    let mut s = Scenario::new(format!("mc/{}", protocol.name()), catalog, all.clone()).submit(
        Time(0),
        coordinator,
        1,
        writeset,
        protocol,
    );
    s.seed = seed;
    s.record_trace = false;
    s.min_delay = Duration(1);
    s.faulty = cfg.faulty;
    s.run_until = Time(cfg.run_until);
    if protocol == ProtocolKind::SkeenQuorum {
        // Majority-style site quorums: Vc = Va = ⌊n/2⌋ + 1.
        let q = cfg.n_sites / 2 + 1;
        s.site_votes = Some(SiteVotes::uniform(all.clone(), q, q));
    }
    if cfg.crash_coordinator {
        s = s.fault(fail_at, Fault::Crash(coordinator));
        if let Some(r) = cfg.recover_at {
            s = s.fault(Time(r), Fault::Recover(coordinator));
        }
    }
    if cfg.components > 1 {
        s = s.fault(fail_at, Fault::Partition(comps));
    }
    if let Some(h) = cfg.heal_at {
        s = s.fault(Time(h), Fault::Heal);
    }
    s
}

/// Runs one randomized failure scenario.
pub fn random_failure_run(protocol: ProtocolKind, cfg: &MonteCarloConfig, seed: u64) -> RunStats {
    let catalog = cfg.catalog();
    let out = random_failure_scenario(protocol, cfg, seed).run();

    let v = out.verdict(TxnId(1));
    let report = out.availability(&catalog);
    let pairs = (report.components.len() * catalog.len()) as f64;
    RunStats {
        fully_decided: v.undecided.is_empty(),
        any_undecided: !v.undecided.is_empty(),
        any_blocked: !v.blocked.is_empty() || !v.undecided.is_empty(),
        violated: !v.consistent || out.sim.nodes().any(|(_, n)| !n.violations().is_empty()),
        readable_frac: if pairs > 0.0 {
            report.readable_pairs() as f64 / pairs
        } else {
            0.0
        },
        writable_frac: if pairs > 0.0 {
            report.writable_pairs() as f64 / pairs
        } else {
            0.0
        },
    }
}

/// Sweeps `runs` seeds and aggregates.
pub fn sweep(protocol: ProtocolKind, cfg: &MonteCarloConfig, runs: u32) -> Aggregate {
    let mut agg = Aggregate {
        runs,
        ..Default::default()
    };
    for seed in 0..runs {
        let r = random_failure_run(protocol, cfg, seed as u64);
        agg.blocked_rate += if r.any_undecided { 1.0 } else { 0.0 };
        agg.decided_rate += if r.fully_decided { 1.0 } else { 0.0 };
        agg.violation_rate += if r.violated { 1.0 } else { 0.0 };
        agg.mean_readable += r.readable_frac;
        agg.mean_writable += r.writable_frac;
    }
    let n = runs as f64;
    agg.blocked_rate /= n;
    agg.decided_rate /= n;
    agg.violation_rate /= n;
    agg.mean_readable /= n;
    agg.mean_writable /= n;
    agg
}

/// The E9 vulnerability-window probe: inject a coordinator crash +
/// 2-way partition at instant `t`, return whether any participant ends
/// up undecided. Sweeping `t` over the commit run and comparing QC1 vs
/// QC2 quantifies "less susceptible to failures".
pub fn vulnerable_at(protocol: ProtocolKind, t: u64, seed: u64) -> bool {
    let cfg = MonteCarloConfig {
        fail_window: t.max(1),
        components: 2,
        ..Default::default()
    };
    // Pin the failure instant by giving a window of exactly [t, t].
    let catalog = cfg.catalog();
    let all = sites(cfg.n_sites);
    let mut rng = SmallRng::seed_from_u64(seed);
    let comps = random_components(&mut rng, &all, 2);
    let writeset = WriteSet::new((0..cfg.n_items).map(|i| (ItemId(i), 7)));
    let mut s = Scenario::new(format!("vuln/{}", protocol.name()), catalog, all)
        .submit(Time(0), SiteId(0), 1, writeset, protocol)
        .fault(Time(t), Fault::Crash(SiteId(0)))
        .fault(Time(t), Fault::Partition(comps));
    s.seed = seed;
    s.record_trace = false;
    s.min_delay = Duration(1);
    s.run_until = Time(2_500);
    // A blocked partition stays blocked while the failure persists; cap
    // the re-entrant retries so the run settles quickly.
    s.max_termination_rounds = 3;
    s.retry_blocked = false;
    if protocol == ProtocolKind::SkeenQuorum {
        let q = cfg.n_sites / 2 + 1;
        s.site_votes = Some(SiteVotes::uniform(sites(cfg.n_sites), q, q));
    }
    let out = s.run();
    let v = out.verdict(TxnId(1));
    assert!(v.consistent, "quorum protocols must stay consistent");
    !v.undecided.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocols_never_violate_atomicity() {
        let cfg = MonteCarloConfig::default();
        for p in [
            ProtocolKind::TwoPhase,
            ProtocolKind::SkeenQuorum,
            ProtocolKind::QuorumCommit1,
            ProtocolKind::QuorumCommit2,
        ] {
            let agg = sweep(p, &cfg, 25);
            assert_eq!(
                agg.violation_rate,
                0.0,
                "{} must never violate atomicity",
                p.name()
            );
        }
    }

    #[test]
    fn three_pc_violates_under_partitions() {
        // The Example 2 effect, Monte-Carlo style: across random 3-way
        // partitions, 3PC's termination protocol must produce at least
        // one inconsistent run.
        let cfg = MonteCarloConfig::default();
        let agg = sweep(ProtocolKind::ThreePhase, &cfg, 40);
        assert!(
            agg.violation_rate > 0.0,
            "3PC under partitions should violate sometimes (rate {})",
            agg.violation_rate
        );
    }

    #[test]
    fn tp1_dominates_skeen_on_availability() {
        let cfg = MonteCarloConfig::default();
        let skeen = sweep(ProtocolKind::SkeenQuorum, &cfg, 40);
        let tp1 = sweep(ProtocolKind::QuorumCommit1, &cfg, 40);
        assert!(
            tp1.mean_readable >= skeen.mean_readable,
            "TP1 readable {} vs Skeen {}",
            tp1.mean_readable,
            skeen.mean_readable
        );
        assert!(
            tp1.decided_rate >= skeen.decided_rate,
            "TP1 decided {} vs Skeen {}",
            tp1.decided_rate,
            skeen.decided_rate
        );
    }

    #[test]
    fn healing_eventually_terminates_everything() {
        let cfg = MonteCarloConfig {
            heal_at: Some(1_000),
            run_until: 8_000,
            ..Default::default()
        };
        let agg = sweep(ProtocolKind::QuorumCommit2, &cfg, 15);
        assert_eq!(agg.violation_rate, 0.0);
        assert!(
            agg.decided_rate > 0.9,
            "after healing nearly every run should terminate (rate {})",
            agg.decided_rate
        );
    }
}
