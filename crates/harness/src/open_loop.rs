//! Open-loop load generator for the reactor front-end (E18).
//!
//! The closed-loop generators in this crate ([`crate::cluster_load`],
//! [`crate::workload`]) submit a client's next transaction only after
//! its previous one resolves, so the offered load collapses to match
//! service capacity and the system is never observed under a backlog.
//! The open-loop generator decouples arrivals from completions:
//! sessions start at a configured *target rate* regardless of how many
//! are still in flight. That is the shape a real front door sees, and
//! the only shape that actually piles 10 000+ concurrent sessions onto
//! the reactor — which is the point of experiment E18.
//!
//! Sessions are logical (`qbc-reactor` multiplexes them over a small
//! connection pool), so "30 000 concurrent sessions" costs 30 000 heap
//! slots, not 30 000 threads or sockets. Each session writes its own
//! item, assigned round-robin over the item space — unique while the
//! wave fits in the space — so committed/s measures the commit
//! pipeline, not no-wait-2PL abort rates. Shrink the item space (or
//! overflow it) to study contention instead.

use qbc_cluster::{ClusterConfig, Outcome, ReactorCluster, ReactorConfig, ThreadedCluster};
use qbc_core::WriteSet;
use qbc_votes::ItemId;
use std::time::{Duration, Instant};

/// Shape of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// The cluster under load.
    pub cluster: ClusterConfig,
    /// Reactor substrate tuning.
    pub reactor: ReactorConfig,
    /// Sessions to start.
    pub sessions: u64,
    /// Target arrival rate in sessions per second. Zero disables
    /// pacing: the whole wave is submitted as fast as the generator can
    /// push it (the maximal open-loop burst).
    pub rate: f64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            cluster: ClusterConfig {
                // A wide item space: open-loop concurrency is measured
                // against the commit pipeline, not lock-conflict aborts.
                items_per_shard: 1024,
                ..ClusterConfig::default()
            },
            reactor: ReactorConfig::default(),
            sessions: 256,
            rate: 0.0,
        }
    }
}

/// Aggregated outcome of an open-loop run. Latency figures are
/// client-observed end-to-end session times in microseconds (bucket
/// upper bounds from the power-of-two histogram).
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Sessions started.
    pub sessions: u64,
    /// Sessions whose transaction committed.
    pub committed: u64,
    /// Sessions whose transaction aborted.
    pub aborted: u64,
    /// Sessions that exhausted their resubmission budget (must be zero
    /// in a healthy run).
    pub failed: u64,
    /// Client resubmissions (rejections bounced back by the front
    /// door).
    pub resubmits: u64,
    /// Most sessions simultaneously in flight, as observed by the
    /// server's front door — the actual concurrency sustained.
    pub peak_in_flight: u64,
    /// Front-door pauses of flooding connections.
    pub backpressure_stalls: u64,
    /// Wall time from first submission to last resolution.
    pub wall: Duration,
    /// Wall time the submission loop took (the arrival window).
    pub submit_wall: Duration,
    /// Committed sessions per wall-clock second.
    pub committed_per_sec: f64,
    /// Mean session latency, microseconds.
    pub mean_us: f64,
    /// Median session latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile session latency, microseconds.
    pub p99_us: u64,
    /// Worst session latency, microseconds.
    pub max_us: u64,
    /// No transaction terminated inconsistently across its shard set.
    pub consistent: bool,
}

/// Runs one open-loop wave: start `sessions` sessions at `rate`
/// arrivals/second (or as a burst when the rate is zero), then await
/// every outcome and harvest the cluster.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopReport {
    let cluster = ReactorCluster::spawn(cfg.cluster.clone(), cfg.reactor.clone());
    let total_items = cfg.cluster.shards * cfg.cluster.items_per_shard;

    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.sessions as usize);
    for i in 0..cfg.sessions {
        if cfg.rate > 0.0 {
            // Pace against the schedule, not the previous submission:
            // a stall in the generator is made up for, never absorbed.
            let due = Duration::from_secs_f64(i as f64 / cfg.rate);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let item = ItemId((i % total_items as u64) as u32);
        handles.push(cluster.submit(vec![(item, i as i64)]));
    }
    let submit_wall = start.elapsed();

    let (mut committed, mut aborted, mut failed) = (0u64, 0u64, 0u64);
    for h in handles {
        match h.wait() {
            Outcome::Committed { .. } => committed += 1,
            Outcome::Aborted { .. } => aborted += 1,
            Outcome::Failed => failed += 1,
            other => panic!("write session resolved as a read: {other:?}"),
        }
    }
    let wall = start.elapsed();

    let report = cluster.shutdown();
    let lat = &report.latency;
    OpenLoopReport {
        sessions: cfg.sessions,
        committed,
        aborted,
        failed,
        resubmits: report.client.resubmits,
        peak_in_flight: report.server.peak_sessions_in_flight,
        backpressure_stalls: report.server.backpressure_stalls,
        wall,
        submit_wall,
        committed_per_sec: committed as f64 / wall.as_secs_f64().max(f64::EPSILON),
        mean_us: lat.mean(),
        p50_us: lat.p50().0,
        p99_us: lat.p99().0,
        max_us: lat.max().0,
        consistent: report.atomicity_violations.is_empty(),
    }
}

/// Outcome of a [`run_threaded_baseline`] measurement.
#[derive(Clone, Debug)]
pub struct ThreadedBaselineReport {
    /// Writesets submitted.
    pub sessions: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions still undecided at harvest (zero when the settle
    /// window was long enough).
    pub undecided: u64,
    /// Wall time from first submission to shutdown, including the
    /// settle window.
    pub wall: Duration,
    /// The settle window that sufficed (doubles until everything
    /// decided).
    pub settle: Duration,
    /// Committed transactions per wall-clock second.
    pub committed_per_sec: f64,
    /// No transaction terminated inconsistently.
    pub consistent: bool,
}

/// The threaded-transport baseline for E18: the same single-item
/// workload fired at a [`ThreadedCluster`].
///
/// The threaded front-end has no completion signal — `submit` is
/// fire-and-forget and decisions only surface at the shutdown harvest —
/// so the measurement sleeps a settle window after the last submission
/// and *doubles it on a fresh run* until the harvest shows every
/// transaction decided. The reported wall time therefore carries up to
/// one window of slack in the threaded runtime's favor being absent;
/// that blindness (no per-session outcome without a parked thread) is
/// exactly the limitation the reactor's session handles remove.
pub fn run_threaded_baseline(cluster: &ClusterConfig, sessions: u64) -> ThreadedBaselineReport {
    let total_items = cluster.shards * cluster.items_per_shard;
    let mut settle = Duration::from_millis(500);
    loop {
        let mut c = ThreadedCluster::spawn(cluster.clone(), 0);
        let start = Instant::now();
        for i in 0..sessions {
            let item = ItemId((i % total_items as u64) as u32);
            c.submit(WriteSet::new([(item, i as i64)]));
        }
        std::thread::sleep(settle);
        let wall = start.elapsed();
        let report = c.shutdown();
        let committed = report
            .decisions
            .iter()
            .filter(|(_, d)| *d == Some(qbc_core::Decision::Commit))
            .count() as u64;
        let aborted = report
            .decisions
            .iter()
            .filter(|(_, d)| *d == Some(qbc_core::Decision::Abort))
            .count() as u64;
        let undecided = sessions - committed - aborted;
        if undecided == 0 || settle >= Duration::from_secs(16) {
            return ThreadedBaselineReport {
                sessions,
                committed,
                aborted,
                undecided,
                wall,
                settle,
                committed_per_sec: committed as f64 / wall.as_secs_f64().max(f64::EPSILON),
                consistent: report.atomicity_violations.is_empty(),
            };
        }
        settle *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_burst_commits_everything() {
        let cfg = OpenLoopConfig {
            sessions: 64,
            ..Default::default()
        };
        let r = run_open_loop(&cfg);
        assert!(r.consistent);
        assert_eq!(r.failed, 0);
        assert_eq!(r.committed + r.aborted, r.sessions);
        assert!(r.committed >= r.sessions * 9 / 10, "committed {r:?}");
        assert!(r.committed_per_sec > 0.0);
        assert!(r.p50_us <= r.p99_us);
    }

    #[test]
    fn pacing_stretches_the_arrival_window() {
        // 50 sessions at 500/s must take at least ~98ms to submit; the
        // burst submits the same wave in microseconds.
        let paced = run_open_loop(&OpenLoopConfig {
            sessions: 50,
            rate: 500.0,
            ..Default::default()
        });
        assert!(r_ok(&paced));
        assert!(
            paced.submit_wall >= Duration::from_millis(90),
            "paced arrivals finished in {:?}",
            paced.submit_wall
        );
        let burst = run_open_loop(&OpenLoopConfig {
            sessions: 50,
            rate: 0.0,
            ..Default::default()
        });
        assert!(r_ok(&burst));
        assert!(burst.submit_wall < paced.submit_wall);
    }

    fn r_ok(r: &OpenLoopReport) -> bool {
        r.consistent && r.failed == 0 && r.committed + r.aborted == r.sessions
    }

    #[test]
    fn the_threaded_baseline_settles_and_commits() {
        let cfg = OpenLoopConfig::default().cluster;
        let r = run_threaded_baseline(&cfg, 32);
        assert!(r.consistent);
        assert_eq!(r.undecided, 0);
        assert!(r.committed >= 28, "committed {r:?}");
        assert!(r.committed_per_sec > 0.0);
    }
}
