//! Empirical derivation of Fig. 4's concurrency sets (experiment E5).
//!
//! The paper's impossibility argument rests on which *partition states*
//! (PS1–PS6) can coexist when a 3PC commitment procedure is interrupted.
//! Instead of trusting the table, we re-derive it: enumerate interrupted
//! runs — every injection time × a family of partition shapes × vote
//! scripts × prepare-loss patterns — snapshot the local states in each
//! component at the instant of interruption, classify them per Fig. 4,
//! and record every pair of partition states observed side by side.
//!
//! The result is checked against [`qbc_core::partition_state::paper_concurrency_claims`].

use crate::scenario::{Fault, Scenario};
use qbc_core::partition_state::{classify, Ps};
use qbc_core::{ProtocolKind, TxnId, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};
use std::collections::{BTreeMap, BTreeSet};

/// The observed relation: which `(Ps, Ps)` pairs coexisted, with one
/// witness description each.
#[derive(Clone, Debug, Default)]
pub struct ConcurrencyRelation {
    /// Observed coexisting pairs (symmetric closure stored explicitly).
    pub pairs: BTreeSet<(Ps, Ps)>,
    /// A witness (injection description) per pair.
    pub witnesses: BTreeMap<(Ps, Ps), String>,
}

impl ConcurrencyRelation {
    fn record(&mut self, a: Ps, b: Ps, witness: &str) {
        for (x, y) in [(a, b), (b, a)] {
            if self.pairs.insert((x, y)) {
                self.witnesses.insert((x, y), witness.to_string());
            }
        }
    }

    /// True when every one of the paper's claimed relations was observed.
    pub fn covers_paper_claims(&self) -> bool {
        self.missing_claims().is_empty()
    }

    /// Paper-claimed pairs not (yet) observed.
    pub fn missing_claims(&self) -> Vec<(Ps, Ps)> {
        qbc_core::partition_state::paper_concurrency_claims()
            .iter()
            .filter(|p| !self.pairs.contains(p))
            .copied()
            .collect()
    }
}

/// The enumeration configuration: a 6-site, single-item 3PC world.
fn catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at((1..=6).map(SiteId))
        .quorums(2, 5)
        .build()
        .expect("valid")
}

/// A family of 2-way partition shapes over s1..s6 (s1 coordinates).
fn partition_shapes() -> Vec<Vec<Vec<SiteId>>> {
    let s = |v: &[u32]| v.iter().map(|&i| SiteId(i)).collect::<Vec<_>>();
    vec![
        vec![s(&[1, 2, 3]), s(&[4, 5, 6])],
        vec![s(&[1]), s(&[2, 3, 4, 5, 6])],
        vec![s(&[1, 2]), s(&[3, 4]), s(&[5, 6])],
        vec![s(&[1, 4, 5]), s(&[2, 3, 6])],
        vec![s(&[1, 2, 3, 4, 5]), s(&[6])],
    ]
}

/// Enumerates interrupted 3PC runs and derives the concurrency relation.
///
/// Variants swept:
/// * interruption instant `t` ∈ {1, 2, …, 60} (constant delay 10 makes
///   each protocol phase land on exact ticks);
/// * every partition shape in a fixed 2/3-way family, with and without a
///   coordinator crash;
/// * a vote script where s6 votes no (producing abort states, PS3);
/// * a lost `VOTE-REQ` to s6 (producing lingering initial states, PS1);
/// * lost prepares to a suffix of sites (producing PS4 PC/W mixes).
pub fn enumerate() -> ConcurrencyRelation {
    let catalog = catalog();
    let mut rel = ConcurrencyRelation::default();

    #[derive(Clone, Copy, Debug)]
    enum Script {
        Clean,
        VoteNo,
        LostVoteReq,
        /// Lost VOTE-REQ to s6 *and* a no vote from s5: an initial-state
        /// site and an abort coexist (the PS1/PS3 witness).
        NoAndLost,
        LostPrepares(u32), // prepares dropped to sites > this id
    }
    let scripts = [
        Script::Clean,
        Script::VoteNo,
        Script::LostVoteReq,
        Script::NoAndLost,
        Script::LostPrepares(3),
        Script::LostPrepares(4),
    ];

    for t in 1..=60u64 {
        for (pi, shape) in partition_shapes().iter().enumerate() {
            for crash_coord in [false, true] {
                for script in scripts {
                    let mut s = Scenario::new("e5", catalog.clone(), (1..=6).map(SiteId).collect())
                        .constant_delays()
                        .submit(
                            Time(0),
                            SiteId(1),
                            1,
                            WriteSet::new([(ItemId(0), 1)]),
                            ProtocolKind::ThreePhase,
                        );
                    s.record_trace = false;
                    match script {
                        Script::Clean => {}
                        Script::VoteNo => {
                            s.vote_no.entry(SiteId(6)).or_default().insert(TxnId(1));
                        }
                        Script::LostVoteReq => {
                            s = s.fault(Time(0), Fault::BlockLink(SiteId(1), SiteId(6)));
                        }
                        Script::NoAndLost => {
                            s = s.fault(Time(0), Fault::BlockLink(SiteId(1), SiteId(6)));
                            s.vote_no.entry(SiteId(5)).or_default().insert(TxnId(1));
                        }
                        Script::LostPrepares(above) => {
                            // Block the prepare round (sent at t=20) to
                            // sites with id > `above`.
                            for k in (above + 1)..=6 {
                                s = s.fault(Time(15), Fault::BlockLink(SiteId(1), SiteId(k)));
                            }
                        }
                    }
                    s = s.fault(Time(t), Fault::Partition(shape.clone()));
                    if crash_coord {
                        s = s.fault(Time(t), Fault::Crash(SiteId(1)));
                    }
                    // Freeze the world right after the interruption,
                    // before any termination protocol runs (watchdogs
                    // need 3T = 30 ticks of silence).
                    s.run_until = Time(t + 1);
                    let out = s.run();
                    let states = out.local_states(TxnId(1));
                    let mut observed: Vec<Ps> = Vec::new();
                    for comp in out.live_components() {
                        // A participant that never heard of TR is in the
                        // initial state q (it has no engine yet).
                        let comp_states: Vec<_> = comp
                            .iter()
                            .map(|site| {
                                states
                                    .get(site)
                                    .copied()
                                    .unwrap_or(qbc_core::LocalState::Initial)
                            })
                            .collect();
                        if comp_states.is_empty() {
                            continue;
                        }
                        if let Some(ps) = classify(comp_states) {
                            observed.push(ps);
                        }
                    }
                    let witness = format!("t={t} shape#{pi} crash={crash_coord} script={script:?}");
                    for i in 0..observed.len() {
                        for j in (i + 1)..observed.len() {
                            rel.record(observed[i], observed[j], &witness);
                        }
                    }
                }
            }
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_covers_every_paper_claim() {
        let rel = enumerate();
        assert!(
            rel.covers_paper_claims(),
            "missing: {:?}\nobserved: {:?}",
            rel.missing_claims(),
            rel.pairs
        );
    }

    #[test]
    fn fatal_pair_ps2_ps5_is_witnessed() {
        // The pair at the heart of the impossibility argument.
        let rel = enumerate();
        assert!(rel.pairs.contains(&(Ps::Ps2, Ps::Ps5)));
        assert!(rel.witnesses.contains_key(&(Ps::Ps2, Ps::Ps5)));
    }
}
