//! Failure-free commit latency and message complexity (experiment E7).
//!
//! Reproduces the comparative claims of Figs. 1/2/9 and §3.2/§5:
//! 2PC is the fastest (two rounds, blocking); 3PC pays a full third
//! round; QC1 commits at `w(x)` PC-ACK votes per item; QC2 at `r(x)`
//! votes of some item, so with random per-message delays its commit
//! point arrives earliest among the prepare-phase protocols.

use crate::scenario::Scenario;
use qbc_core::{ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_simnet::{sites, Duration, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};

/// One measured point.
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Cluster size.
    pub n_sites: u32,
    /// Mean commit latency observed by the client (coordinator decides),
    /// in ticks.
    pub coordinator_latency: f64,
    /// Mean time until the last participant decides, in ticks.
    pub global_latency: f64,
    /// Mean messages delivered per transaction.
    pub messages: f64,
    /// Number of seeds aggregated.
    pub runs: u32,
}

/// A single-item catalog over `n` sites with the given quorums.
pub fn replicated_catalog(n: u32, read_q: u32, write_q: u32) -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(n))
        .quorums(read_q, write_q)
        .build()
        .expect("valid latency catalog")
}

/// Measures mean failure-free latency for `protocol` over `seeds` runs
/// on `n` sites with quorums `(read_q, write_q)`.
pub fn measure(
    protocol: ProtocolKind,
    n: u32,
    read_q: u32,
    write_q: u32,
    seeds: std::ops::Range<u64>,
) -> LatencyPoint {
    let catalog = replicated_catalog(n, read_q, write_q);
    let mut coord_sum = 0u64;
    let mut global_sum = 0u64;
    let mut msg_sum = 0u64;
    let mut runs = 0u32;
    for seed in seeds {
        let mut s = Scenario::new(
            format!("latency/{}", protocol.name()),
            catalog.clone(),
            sites(n).to_vec(),
        )
        .submit(
            Time(0),
            SiteId(0),
            1,
            WriteSet::new([(ItemId(0), 1)]),
            protocol,
        );
        s.seed = seed;
        s.record_trace = false;
        s.min_delay = Duration(1);
        s.run_until = Time(2_000);
        if protocol == ProtocolKind::SkeenQuorum {
            s.site_votes = Some(SiteVotes::uniform(sites(n), n / 2 + 1, n / 2 + 1));
        }
        let out = s.run();
        let v = out.verdict(TxnId(1));
        assert!(
            v.consistent && v.aborted.is_empty() && v.undecided.is_empty(),
            "failure-free run must commit everywhere ({v:?})"
        );
        coord_sum += out
            .coordinator_latency(TxnId(1))
            .expect("coordinator decided")
            .0;
        global_sum += out.latency(TxnId(1)).expect("all decided").0;
        msg_sum += out.sim.stats().delivered;
        runs += 1;
    }
    LatencyPoint {
        protocol,
        n_sites: n,
        coordinator_latency: coord_sum as f64 / runs as f64,
        global_latency: global_sum as f64 / runs as f64,
        messages: msg_sum as f64 / runs as f64,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's ordering claim: 2PC commits first; QC2's commit point
    /// precedes QC1's; QC1's precedes (or ties) 3PC's.
    #[test]
    fn latency_ordering_matches_the_paper() {
        let n = 7;
        // r = 2, w = 6: a strongly write-skewed assignment, the regime
        // where QC2's r-votes commit point pays off most.
        let p2 = measure(ProtocolKind::TwoPhase, n, 2, 6, 0..30);
        let p3 = measure(ProtocolKind::ThreePhase, n, 2, 6, 0..30);
        let q1 = measure(ProtocolKind::QuorumCommit1, n, 2, 6, 0..30);
        let q2 = measure(ProtocolKind::QuorumCommit2, n, 2, 6, 0..30);
        assert!(
            p2.coordinator_latency < q2.coordinator_latency,
            "2PC ({}) beats QC2 ({})",
            p2.coordinator_latency,
            q2.coordinator_latency
        );
        assert!(
            q2.coordinator_latency < q1.coordinator_latency,
            "QC2 ({}) beats QC1 ({})",
            q2.coordinator_latency,
            q1.coordinator_latency
        );
        assert!(
            q1.coordinator_latency <= p3.coordinator_latency + 1e-9,
            "QC1 ({}) no slower than 3PC ({})",
            q1.coordinator_latency,
            p3.coordinator_latency
        );
    }

    #[test]
    fn two_pc_uses_fewest_messages() {
        let n = 5;
        let p2 = measure(ProtocolKind::TwoPhase, n, 2, 4, 0..10);
        let p3 = measure(ProtocolKind::ThreePhase, n, 2, 4, 0..10);
        assert!(p2.messages < p3.messages);
    }
}
