//! Plain-text tables for experiment binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells rendered with `ToString`).
    pub fn row(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Appends a row of pre-rendered strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "| {cell:<w$} ");
            }
            out.push_str("|\n");
        };
        render_row(&mut out, &self.header);
        for w in &widths {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
        }
        out.push_str("|\n");
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["protocol", "latency"]);
        t.row(&[&"2PC", &30]);
        t.row(&[&"QC1+TP1", &50]);
        let s = t.render();
        assert!(s.contains("| protocol | latency |"));
        assert!(s.contains("| 2PC      | 30      |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row_strings(vec!["x".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("x"));
        assert!(s.contains("y"));
    }
}
