//! The paper's worked examples as executable scenarios.
//!
//! * [`example_catalog`] / [`fig3_scenario`] — the Fig. 3 setting used by
//!   Examples 1, 2 and 4: transaction TR issued at `s1` updating items
//!   `x` (copies at s1–s4) and `y` (copies at s5–s8), unit votes,
//!   `r = 2`, `w = 3`; the coordinator crashes during the prepare round
//!   leaving `s5` in PC and everyone else in W, and the network splits
//!   into G1 = {s1, s2, s3}, G2 = {s4, s5}, G3 = {s6, s7, s8}.
//! * [`fig7_scenario`] — the Example 3 setting: TR issued at `s1`
//!   updating `x` and `y`, each with copies at s2–s5, `w = 3`, `r = 2`;
//!   coordinator crash, a 2-way partition, a heal timed to produce two
//!   termination coordinators, and the adversarial message losses
//!   (s2 ↔ s3 and s2 → s5 blocked).
//!
//! The choreography uses constant delays equal to `T = 10` ticks so
//! message arrival times are exact; DESIGN.md documents the timeline.

use crate::scenario::{Fault, Scenario};
use qbc_core::{ProtocolKind, SiteVotes, WriteSet};
use qbc_simnet::{SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};

/// Item `x` of the Fig. 3 configuration.
pub const ITEM_X: ItemId = ItemId(0);
/// Item `y` of the Fig. 3 configuration.
pub const ITEM_Y: ItemId = ItemId(1);
/// The transaction id used for TR.
pub const TR: u64 = 1;

/// The Example 1/2/4 catalog: `x` at s1–s4, `y` at s5–s8, unit votes,
/// `r(x) = r(y) = 2`, `w(x) = w(y) = 3`.
pub fn example_catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ITEM_X, "x")
        .copies_at((1..=4).map(SiteId))
        .quorums(2, 3)
        .item(ITEM_Y, "y")
        .copies_at((5..=8).map(SiteId))
        .quorums(2, 3)
        .build()
        .expect("paper catalog is valid")
}

/// The Example 1 site-vote parameters for Skeen `[16]`: one vote per
/// site, `Vc = 5`, `Va = 4`.
pub fn example_site_votes() -> SiteVotes {
    SiteVotes::uniform((1..=8).map(SiteId), 5, 4)
}

/// All sites of the Fig. 3 setting.
pub fn example_sites() -> Vec<SiteId> {
    (1..=8).map(SiteId).collect()
}

/// The Fig. 3 partition: G1 = {s1, s2, s3}, G2 = {s4, s5},
/// G3 = {s6, s7, s8}.
pub fn fig3_partition() -> Vec<Vec<SiteId>> {
    vec![
        vec![SiteId(1), SiteId(2), SiteId(3)],
        vec![SiteId(4), SiteId(5)],
        vec![SiteId(6), SiteId(7), SiteId(8)],
    ]
}

/// Builds the Fig. 3 scenario for a given protocol.
///
/// Timeline (constant delay `T` = 10):
/// * `t=0` — TR submitted at s1 (writes x := 11, y := 22).
/// * `t=10` — `VOTE-REQ` delivered; every participant votes yes.
/// * `t=15` — the links s1 → {s2,s3,s4,s6,s7,s8} are blocked, so the
///   prepare round will only reach s5.
/// * `t=20` — all votes are in; the coordinator broadcasts
///   `PREPARE-TO-COMMIT` (dropped on all blocked links).
/// * `t=30` — s5 enters PC (its ack will never arrive: see below).
/// * `t=31` — s1 crashes and the network partitions into Fig. 3's
///   G1/G2/G3. Every other participant is still in W.
///
/// This reproduces exactly the paper's premise: "leaving the local state
/// of site5 as PC and all the other active participants as W".
pub fn fig3_scenario(protocol: ProtocolKind, seed: u64) -> Scenario {
    let mut s = Scenario::new(
        format!("fig3/{}", protocol.name()),
        example_catalog(),
        example_sites(),
    )
    .constant_delays()
    .submit(
        Time(0),
        SiteId(1),
        TR,
        WriteSet::new([(ITEM_X, 11), (ITEM_Y, 22)]),
        protocol,
    );
    s.seed = seed;
    if protocol == ProtocolKind::SkeenQuorum {
        s.site_votes = Some(example_site_votes());
    }
    for other in [2u32, 3, 4, 6, 7, 8] {
        s = s.fault(Time(15), Fault::BlockLink(SiteId(1), SiteId(other)));
    }
    s = s
        .fault(Time(31), Fault::Crash(SiteId(1)))
        .fault(Time(31), Fault::Partition(fig3_partition()));
    s.run_until = Time(4_000);
    s
}

/// The Example 3 catalog: `x` and `y` each with unit-vote copies at
/// s2–s5, `w = 3`, `r = 2`.
pub fn fig7_catalog() -> Catalog {
    CatalogBuilder::new()
        .item(ITEM_X, "x")
        .copies_at((2..=5).map(SiteId))
        .quorums(2, 3)
        .item(ITEM_Y, "y")
        .copies_at((2..=5).map(SiteId))
        .quorums(2, 3)
        .build()
        .expect("fig7 catalog is valid")
}

/// Builds the Example 3 (Fig. 7) scenario.
///
/// Timeline (constant delay `T` = 10):
/// * `t=0` — TR submitted at s1 (not itself a copy holder) under QC1.
/// * `t=10` — votes solicited; `t=20` — all yes; prepare broadcast.
/// * `t=15` — links s1 → {s2,s3,s4} blocked: only s5 sees the prepare
///   (`t=30`), entering PC.
/// * From `t=0` the adversarial losses of the example are in place:
///   s2 ↔ s3 and s2 → s5 blocked.
/// * `t=31` — s1 crashes; partition into G1 = {s1, s2} and
///   G2 = {s3, s4, s5}.
/// * `t=59` — the network heals "just before site2 starts collecting
///   local state information", so two termination coordinators race in
///   one partition, separated only by the blocked links.
///
/// With [`qbc_core::FaultyMode::AnswerAcrossWall`] (participants answer
/// prepares across the PC/PA wall) the race produces an inconsistent
/// termination; with the correct rule it cannot.
pub fn fig7_scenario(faulty: qbc_core::FaultyMode, seed: u64) -> Scenario {
    let mut s = Scenario::new(
        format!("fig7/{faulty:?}"),
        fig7_catalog(),
        (1..=5).map(SiteId).collect(),
    )
    .constant_delays()
    .submit(
        Time(0),
        SiteId(1),
        TR,
        WriteSet::new([(ITEM_X, 11), (ITEM_Y, 22)]),
        ProtocolKind::QuorumCommit1,
    );
    s.seed = seed;
    s.faulty = faulty;
    // The example's adversarial message losses. The paper blocks
    // s2 ↔ s3 and s2 → s5 because *s3* coordinates G2 in its telling;
    // our bully election makes s5 the G2 coordinator, so the equivalent
    // isolation of the two coordinators also loses s5 → s2 traffic.
    s = s
        .fault(Time(0), Fault::BlockLink(SiteId(2), SiteId(3)))
        .fault(Time(0), Fault::BlockLink(SiteId(3), SiteId(2)))
        .fault(Time(0), Fault::BlockLink(SiteId(2), SiteId(5)))
        .fault(Time(0), Fault::BlockLink(SiteId(5), SiteId(2)));
    // Only s5 receives the prepare.
    for other in [2u32, 3, 4] {
        s = s.fault(Time(15), Fault::BlockLink(SiteId(1), SiteId(other)));
    }
    s = s
        .fault(Time(31), Fault::Crash(SiteId(1)))
        .fault(
            Time(31),
            Fault::Partition(vec![
                vec![SiteId(1), SiteId(2)],
                vec![SiteId(3), SiteId(4), SiteId(5)],
            ]),
        )
        .fault(Time(59), Fault::Heal);
    s.run_until = Time(6_000);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_core::{Decision, LocalState, TxnId};

    /// The Fig. 3 premise must hold just after the failure hits: s5 in
    /// PC, all other live participants in W.
    #[test]
    fn fig3_produces_the_papers_premise() {
        let mut s = fig3_scenario(ProtocolKind::QuorumCommit1, 1);
        s.run_until = Time(32); // freeze right after the crash+partition
        let out = s.run();
        let states = out.local_states(TxnId(TR));
        assert_eq!(states[&SiteId(5)], LocalState::PreCommit, "s5 in PC");
        for site in [2u32, 3, 4, 6, 7, 8] {
            assert_eq!(
                states[&SiteId(site)],
                LocalState::Wait,
                "s{site} must be in W"
            );
        }
        assert_eq!(out.live_components().len(), 3);
    }

    /// Example 1: under Skeen's [16] protocol all three partitions block.
    #[test]
    fn example1_all_partitions_block_under_skeen() {
        let out = fig3_scenario(ProtocolKind::SkeenQuorum, 1).run();
        let v = out.verdict(TxnId(TR));
        assert!(v.consistent);
        assert!(v.committed.is_empty(), "nobody commits: {:?}", v.committed);
        assert!(v.aborted.is_empty(), "nobody aborts: {:?}", v.aborted);
        // x and y are inaccessible everywhere (locks held by TR).
        let report = out.availability(&example_catalog());
        assert_eq!(report.readable_pairs(), 0, "{report}");
        assert_eq!(report.writable_pairs(), 0);
    }

    /// Example 2: the 3PC termination protocol terminates G2 (commit)
    /// inconsistently with G1/G3 (abort).
    #[test]
    fn example2_three_pc_terminates_inconsistently() {
        let out = fig3_scenario(ProtocolKind::ThreePhase, 1).run();
        let v = out.verdict(TxnId(TR));
        assert!(!v.consistent, "3PC must violate consistency here: {v:?}");
        // G2 = {s4, s5} commit; G1/G3 survivors abort.
        assert!(v.committed.contains(&SiteId(4)));
        assert!(v.committed.contains(&SiteId(5)));
        for s in [2u32, 3, 6, 7, 8] {
            assert!(v.aborted.contains(&SiteId(s)), "s{s} should abort: {v:?}");
        }
    }

    /// Example 4: TP1 aborts TR in G1 and G3; x becomes readable in G1
    /// and y writable in G3, while G2 stays blocked.
    #[test]
    fn example4_tp1_restores_availability() {
        let out = fig3_scenario(ProtocolKind::QuorumCommit1, 1).run();
        let v = out.verdict(TxnId(TR));
        assert!(v.consistent, "{v:?}");
        for s in [2u32, 3, 6, 7, 8] {
            assert!(v.aborted.contains(&SiteId(s)), "s{s} should abort: {v:?}");
        }
        assert!(v.committed.is_empty());
        // G2 = {s4, s5} must stay blocked (undecided).
        assert!(v.undecided.contains(&SiteId(4)));
        assert!(v.undecided.contains(&SiteId(5)));
        let report = out.availability(&example_catalog());
        // G1 survivors {s2, s3}: x readable (2 ≥ r), not writable.
        let a = report.at_site(SiteId(2), ITEM_X).unwrap();
        assert!(a.readable && !a.writable, "{report}");
        // G3 {s6, s7, s8}: y writable (3 ≥ w).
        let a = report.at_site(SiteId(6), ITEM_Y).unwrap();
        assert!(a.writable, "{report}");
        // G2: nothing accessible (s4's x copy and s5's y copy pinned).
        let a = report.at_site(SiteId(4), ITEM_X).unwrap();
        assert!(!a.readable);
    }

    /// Example 3, correct rule: despite two coordinators and adversarial
    /// losses, termination stays consistent.
    #[test]
    fn example3_correct_rule_is_safe() {
        let out = fig7_scenario(qbc_core::FaultyMode::Correct, 1).run();
        assert!(out.all_consistent(), "{:?}", out.verdict(TxnId(TR)));
    }

    /// Example 3, faulty rule (answer prepares across the PC/PA wall):
    /// the race terminates TR inconsistently.
    #[test]
    fn example3_faulty_rule_violates_atomicity() {
        let out = fig7_scenario(qbc_core::FaultyMode::AnswerAcrossWall, 1).run();
        let v = out.verdict(TxnId(TR));
        assert!(
            !v.consistent,
            "the Example 3 bug must reproduce: {v:?} states={:?}",
            out.local_states(TxnId(TR))
        );
        assert!(!v.committed.is_empty());
        assert!(!v.aborted.is_empty());
    }

    /// The decisions in Example 4 release locks; Example 1 (Skeen) does
    /// not — the quantitative availability gap (E8's core contrast).
    #[test]
    fn availability_gap_between_skeen_and_tp1() {
        let skeen = fig3_scenario(ProtocolKind::SkeenQuorum, 1).run();
        let tp1 = fig3_scenario(ProtocolKind::QuorumCommit1, 1).run();
        let cat = example_catalog();
        let a_skeen = skeen.availability(&cat);
        let a_tp1 = tp1.availability(&cat);
        assert_eq!(a_skeen.readable_pairs() + a_skeen.writable_pairs(), 0);
        assert!(
            a_tp1.readable_pairs() + a_tp1.writable_pairs() >= 3,
            "TP1 restores availability: {a_tp1}"
        );
        let _ = Decision::Commit; // silence unused import in cfg(test)
    }
}
