//! Declarative scenarios: cluster + workload + failure schedule.

use qbc_core::{Decision, FaultyMode, LocalState, ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_db::{build_cluster, SiteNode};
use qbc_simnet::{DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use qbc_votes::Catalog;
use std::collections::{BTreeMap, BTreeSet};

/// A fault injected at a point in virtual time.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Crash a site (volatile state lost).
    Crash(SiteId),
    /// Recover a crashed site (log replayed).
    Recover(SiteId),
    /// Partition the network into components.
    Partition(Vec<Vec<SiteId>>),
    /// Heal all partitions.
    Heal,
    /// Block the directed link.
    BlockLink(SiteId, SiteId),
    /// Unblock the directed link.
    UnblockLink(SiteId, SiteId),
    /// Set random message-loss probability.
    SetLoss(f64),
}

/// A client transaction submission.
#[derive(Clone, Debug)]
pub struct TxnSubmission {
    /// When the client submits.
    pub at: Time,
    /// The coordinating site.
    pub site: SiteId,
    /// Transaction id (unique per scenario).
    pub txn: TxnId,
    /// Items and new values.
    pub writeset: WriteSet,
    /// Protocol to run.
    pub protocol: ProtocolKind,
}

/// A complete, reproducible experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name (reports).
    pub name: String,
    /// Replication catalog.
    pub catalog: Catalog,
    /// All sites (must cover catalog placement).
    pub sites: Vec<SiteId>,
    /// RNG seed.
    pub seed: u64,
    /// Longest end-to-end delay `T`.
    pub t_bound: Duration,
    /// Minimum message delay.
    pub min_delay: Duration,
    /// Site-vote parameters for Skeen `[16]`.
    pub site_votes: Option<SiteVotes>,
    /// Example 3 fault injection.
    pub faulty: FaultyMode,
    /// Keep retrying blocked transactions.
    pub retry_blocked: bool,
    /// Scripted no-votes: site → transactions it refuses.
    pub vote_no: BTreeMap<SiteId, BTreeSet<TxnId>>,
    /// Transactions to run.
    pub txns: Vec<TxnSubmission>,
    /// Failure schedule.
    pub nemesis: Vec<(Time, Fault)>,
    /// Virtual time to run until.
    pub run_until: Time,
    /// Record the full trace (disable for big sweeps).
    pub record_trace: bool,
    /// Cap on termination rounds a site may initiate (see
    /// `NodeConfig::max_termination_rounds`).
    pub max_termination_rounds: u64,
}

impl Scenario {
    /// A scenario skeleton with conventional defaults (`T` = 10 ticks).
    pub fn new(name: impl Into<String>, catalog: Catalog, sites: Vec<SiteId>) -> Self {
        Scenario {
            name: name.into(),
            catalog,
            sites,
            seed: 0,
            t_bound: Duration(10),
            min_delay: Duration(2),
            site_votes: None,
            faulty: FaultyMode::Correct,
            retry_blocked: true,
            vote_no: BTreeMap::new(),
            txns: Vec::new(),
            nemesis: Vec::new(),
            run_until: Time(5_000),
            record_trace: true,
            max_termination_rounds: u64::MAX,
        }
    }

    /// Uses constant (deterministic) delays equal to `T` — the paper
    /// scenarios need exact timing.
    pub fn constant_delays(mut self) -> Self {
        self.min_delay = self.t_bound;
        self
    }

    /// Adds a transaction.
    pub fn submit(
        mut self,
        at: Time,
        site: SiteId,
        txn: u64,
        writeset: WriteSet,
        protocol: ProtocolKind,
    ) -> Self {
        self.txns.push(TxnSubmission {
            at,
            site,
            txn: TxnId(txn),
            writeset,
            protocol,
        });
        self
    }

    /// Adds a fault at a time.
    pub fn fault(mut self, at: Time, f: Fault) -> Self {
        self.nemesis.push((at, f));
        self
    }

    /// Builds and runs the simulation.
    pub fn run(&self) -> ScenarioOutcome {
        let site_votes = self.site_votes.clone();
        let faulty = self.faulty;
        let retry = self.retry_blocked;
        let max_rounds = self.max_termination_rounds;
        let vote_no = self.vote_no.clone();
        let nodes = build_cluster(
            self.sites.iter().copied(),
            &self.catalog,
            self.t_bound,
            |mut c| {
                c.faulty = faulty;
                c.retry_blocked = retry;
                c.max_termination_rounds = max_rounds;
                if let Some(sv) = &site_votes {
                    c = c.with_site_votes(sv.clone());
                }
                if let Some(nos) = vote_no.get(&c.site) {
                    for t in nos {
                        c = c.vote_no(*t);
                    }
                }
                c
            },
        );
        let mut sim = Sim::new(
            SimConfig {
                seed: self.seed,
                delay: DelayModel::uniform(self.min_delay, self.t_bound),
                record_trace: self.record_trace,
            },
            nodes,
        );
        for sub in &self.txns {
            let txn = sub.txn;
            let ws = sub.writeset.clone();
            let p = sub.protocol;
            sim.schedule_call(sub.at, sub.site, move |node: &mut SiteNode, ctx| {
                node.begin_transaction(ctx, txn, ws, p);
            });
        }
        for (at, f) in &self.nemesis {
            match f.clone() {
                Fault::Crash(s) => sim.schedule_crash(*at, s),
                Fault::Recover(s) => sim.schedule_recover(*at, s),
                Fault::Partition(c) => sim.schedule_partition(*at, c),
                Fault::Heal => sim.schedule_heal(*at),
                Fault::BlockLink(a, b) => sim.schedule_block_link(*at, a, b),
                Fault::UnblockLink(a, b) => sim.schedule_unblock_link(*at, a, b),
                Fault::SetLoss(p) => sim.schedule_loss(*at, p),
            }
        }
        sim.run_until(self.run_until);
        ScenarioOutcome {
            submissions: self.txns.clone(),
            catalog: self.catalog.clone(),
            sim,
        }
    }
}

/// The result of a scenario run: the frozen simulation plus derived
/// verdicts.
pub struct ScenarioOutcome {
    /// The transactions that were submitted.
    pub submissions: Vec<TxnSubmission>,
    /// The catalog the run used (defines participant sets).
    pub catalog: Catalog,
    /// The finished simulation (inspect nodes, stats, trace).
    pub sim: Sim<SiteNode>,
}

/// Per-transaction verdict across all sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnVerdict {
    /// Transaction.
    pub txn: TxnId,
    /// Sites that committed.
    pub committed: Vec<SiteId>,
    /// Sites that aborted.
    pub aborted: Vec<SiteId>,
    /// Participant sites with no decision.
    pub undecided: Vec<SiteId>,
    /// Participant sites currently flagged blocked.
    pub blocked: Vec<SiteId>,
    /// No site committed while another aborted.
    pub consistent: bool,
}

impl ScenarioOutcome {
    /// Consistency verdict for one transaction, over its *active
    /// participants*: sites holding a copy of some writeset item that
    /// currently have protocol state for the transaction. A crashed
    /// (not-yet-recovered) site has no state and is not counted — the
    /// paper's termination protocols terminate transactions "at all
    /// active participating sites". The submitting site is counted only
    /// if it holds copies (a pure coordinator, like Example 3's s1, is
    /// a client, not a participant).
    pub fn verdict(&self, txn: TxnId) -> TxnVerdict {
        let spec_participants: BTreeSet<SiteId> = self
            .submissions
            .iter()
            .find(|s| s.txn == txn)
            .map(|s| self.catalog.participants(s.writeset.items()))
            .unwrap_or_default();
        let participants: BTreeSet<SiteId> = self
            .sim
            .nodes()
            .filter(|(s, n)| n.known_txns().contains(&txn) && spec_participants.contains(s))
            .map(|(s, _)| s)
            .collect();
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        let mut undecided = Vec::new();
        let mut blocked = Vec::new();
        for &s in &participants {
            let n = self.sim.node(s);
            match n.decision(txn) {
                Some(Decision::Commit) => committed.push(s),
                Some(Decision::Abort) => aborted.push(s),
                None => undecided.push(s),
            }
            if n.is_blocked(txn) {
                blocked.push(s);
            }
        }
        let consistent = committed.is_empty() || aborted.is_empty();
        TxnVerdict {
            txn,
            committed,
            aborted,
            undecided,
            blocked,
            consistent,
        }
    }

    /// Verdicts for all submitted transactions.
    pub fn verdicts(&self) -> Vec<TxnVerdict> {
        self.submissions
            .iter()
            .map(|s| self.verdict(s.txn))
            .collect()
    }

    /// True when no transaction was terminated inconsistently and no
    /// engine-level violations were recorded.
    pub fn all_consistent(&self) -> bool {
        self.verdicts().iter().all(|v| v.consistent)
            && self.sim.nodes().all(|(_, n)| n.violations().is_empty())
    }

    /// Local participant states of a transaction at every live site.
    pub fn local_states(&self, txn: TxnId) -> BTreeMap<SiteId, LocalState> {
        self.sim
            .nodes()
            .filter_map(|(s, n)| n.local_state(txn).map(|st| (s, st)))
            .collect()
    }

    /// Commit latency of a transaction in virtual ticks: submission to
    /// the *last* participant decision (`None` if any participant is
    /// still undecided).
    pub fn latency(&self, txn: TxnId) -> Option<Duration> {
        let sub = self.submissions.iter().find(|s| s.txn == txn)?;
        let mut last = Time::ZERO;
        for (_, n) in self.sim.nodes() {
            if n.known_txns().contains(&txn) {
                match n.decided_at(txn) {
                    Some(t) => last = last.max(t),
                    None => return None,
                }
            }
        }
        Some(last.since(sub.at))
    }

    /// Commit latency measured at the coordinator only (the client's
    /// view).
    pub fn coordinator_latency(&self, txn: TxnId) -> Option<Duration> {
        let sub = self.submissions.iter().find(|s| s.txn == txn)?;
        let t = self.sim.node(sub.site).decided_at(txn)?;
        Some(t.since(sub.at))
    }

    /// Messages delivered during the run, by label.
    pub fn messages_by_label(&self) -> BTreeMap<&'static str, u64> {
        self.sim.stats().delivered_by_label()
    }

    /// The partition components of currently-up sites.
    pub fn live_components(&self) -> Vec<BTreeSet<SiteId>> {
        self.sim
            .topology()
            .components()
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .filter(|&s| !self.sim.topology().is_down(s))
                    .collect::<BTreeSet<_>>()
            })
            .filter(|c: &BTreeSet<SiteId>| !c.is_empty())
            .collect()
    }

    /// Availability analysis at end time: which items are readable and
    /// writable in each live component, accounting for copies pinned by
    /// undecided transactions' locks.
    pub fn availability(&self, catalog: &Catalog) -> qbc_votes::AccessReport {
        let components = self.live_components();
        qbc_votes::analyze(catalog, &components, |site, item| {
            self.sim.node(site).is_item_locked(item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_simnet::sites;
    use qbc_votes::{CatalogBuilder, ItemId};

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .item(ItemId(0), "x")
            .copies_at(sites(4))
            .quorums(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn failure_free_scenario_commits_consistently() {
        let out = Scenario::new("smoke", catalog(), sites(4))
            .submit(
                Time(0),
                SiteId(0),
                1,
                WriteSet::new([(ItemId(0), 7)]),
                ProtocolKind::QuorumCommit2,
            )
            .run();
        let v = out.verdict(TxnId(1));
        assert!(v.consistent);
        assert_eq!(v.committed.len(), 4);
        assert!(out.all_consistent());
        assert!(out.latency(TxnId(1)).is_some());
        assert!(out.coordinator_latency(TxnId(1)).is_some());
        assert!(out.messages_by_label().contains_key("VOTE-REQ"));
    }

    #[test]
    fn verdict_reports_blocked_sites() {
        // 2PC with the coordinator cut off and crashed: classic block.
        let mut s = Scenario::new("block", catalog(), sites(4)).submit(
            Time(0),
            SiteId(0),
            1,
            WriteSet::new([(ItemId(0), 7)]),
            ProtocolKind::TwoPhase,
        );
        for k in 1..4 {
            s = s.fault(Time(11), Fault::BlockLink(SiteId(0), SiteId(k)));
        }
        let out = s.fault(Time(30), Fault::Crash(SiteId(0))).run();
        let v = out.verdict(TxnId(1));
        assert!(v.consistent, "blocked is not inconsistent");
        assert_eq!(v.committed.len() + v.aborted.len(), 0);
        assert!(!v.blocked.is_empty(), "cooperative termination blocks");
        // Availability: the single item is pinned everywhere.
        let report = out.availability(&catalog());
        assert_eq!(report.readable_pairs(), 0);
    }

    #[test]
    fn live_components_exclude_crashed_sites() {
        let out = Scenario::new("comp", catalog(), sites(4))
            .fault(
                Time(5),
                Fault::Partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]]),
            )
            .fault(Time(6), Fault::Crash(SiteId(1)))
            .run();
        let comps = out.live_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|c| c.len() == 1 && c.contains(&SiteId(0))));
    }
}
