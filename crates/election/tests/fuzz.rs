//! Property tests for the election machine: totality, round
//! monotonicity, and liveness of the timeout path under arbitrary
//! message barrages.

use proptest::prelude::*;
use qbc_election::{Action, ElectionMsg, ElectionTimer, Elector, Input, Phase};
use qbc_simnet::SiteId;

fn arb_msg() -> impl Strategy<Value = ElectionMsg> {
    prop_oneof![
        (0u64..5).prop_map(|round| ElectionMsg::Election { round }),
        (0u64..5).prop_map(|round| ElectionMsg::Alive { round }),
        (0u64..5).prop_map(|round| ElectionMsg::Coordinator { round }),
    ]
}

fn arb_input(n_sites: u32) -> impl Strategy<Value = Input> {
    prop_oneof![
        1 => Just(Input::Start),
        4 => (0..n_sites, arb_msg()).prop_map(|(from, msg)| Input::Msg {
            from: SiteId(from),
            msg,
        }),
        2 => (0u64..5).prop_map(|round| Input::Timer(ElectionTimer::AwaitAlive { round })),
        2 => (0u64..5).prop_map(|round| Input::Timer(ElectionTimer::AwaitCoordinator { round })),
    ]
}

proptest! {
    /// The machine is total: arbitrary (even nonsensical) input
    /// sequences never panic, and rounds never go backwards.
    #[test]
    fn arbitrary_inputs_never_panic_and_rounds_grow(
        me in 0u32..6,
        inputs in proptest::collection::vec(arb_input(6), 0..60),
    ) {
        let mut e = Elector::new(SiteId(me), (0..6).map(SiteId));
        let mut last_round = e.round();
        for input in inputs {
            let _ = e.step(input);
            prop_assert!(e.round() >= last_round, "round went backwards");
            last_round = e.round();
        }
    }

    /// Liveness of the timeout path: whatever garbage arrived before,
    /// Start followed by the matching AwaitAlive timeout always leaves
    /// the site Leader when it has no higher peers alive to answer.
    #[test]
    fn start_then_timeout_always_elects_highest(
        noise in proptest::collection::vec(arb_input(6), 0..30),
    ) {
        // Site 5 is the highest of 0..6: Start elects it immediately.
        let mut e = Elector::new(SiteId(5), (0..6).map(SiteId));
        for input in noise {
            let _ = e.step(input);
        }
        let out = e.step(Input::Start);
        prop_assert!(out.contains(&Action::Elected), "highest site must win on Start");
        prop_assert!(e.is_leader());
    }

    /// A follower always knows its coordinator; a leader reports itself.
    #[test]
    fn coordinator_accessor_is_consistent_with_phase(
        me in 0u32..6,
        inputs in proptest::collection::vec(arb_input(6), 0..60),
    ) {
        let mut e = Elector::new(SiteId(me), (0..6).map(SiteId));
        for input in inputs {
            let _ = e.step(input);
            match e.phase() {
                Phase::Leader => prop_assert_eq!(e.coordinator(), Some(SiteId(me))),
                Phase::Follower(c) => prop_assert_eq!(e.coordinator(), Some(c)),
                _ => prop_assert_eq!(e.coordinator(), None),
            }
        }
    }
}
