//! # qbc-election — coordinator election within a partition
//!
//! The termination protocols begin: "a coordinator will first be elected
//! in each partition by an election protocol \[7\]" (Garcia-Molina 1982).
//! Crucially, the paper *does not require the elected coordinator to be
//! unique* — Example 3 exhibits two coordinators in one partition after a
//! heal, and TP1/TP2 stay safe regardless. This crate therefore provides
//! a bully-style election that guarantees:
//!
//! * **Liveness**: in a stable partition, at least one site eventually
//!   declares itself coordinator.
//! * **No false silence**: a site that times out waiting for higher sites
//!   declares itself, so a partition never waits forever.
//!
//! and deliberately does *not* guarantee uniqueness under topology
//! changes, matching the paper's fault model.
//!
//! The [`Elector`] is a sans-IO state machine: feed it [`Input`]s, apply
//! the returned [`Action`]s (sends and timers) to your transport. The
//! suggested timer spans are multiples of the network bound `T`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use qbc_simnet::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Messages of the election protocol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElectionMsg {
    /// "I am holding an election" — sent to higher-id peers.
    Election {
        /// Election round of the sender.
        round: u64,
    },
    /// "I am alive and will take over" — reply to a lower-id candidate.
    Alive {
        /// Round being answered.
        round: u64,
    },
    /// "I am the coordinator" — broadcast by the winner.
    Coordinator {
        /// Round in which the sender won.
        round: u64,
    },
}

impl qbc_simnet::Label for ElectionMsg {
    fn label(&self) -> &'static str {
        match self {
            ElectionMsg::Election { .. } => "ELECTION",
            ElectionMsg::Alive { .. } => "ELECTION-ALIVE",
            ElectionMsg::Coordinator { .. } => "ELECTION-COORD",
        }
    }
}

/// Timers the elector asks its driver to set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElectionTimer {
    /// Waiting for `Alive` from a higher site; fires after `2T`.
    AwaitAlive {
        /// Round the timer belongs to.
        round: u64,
    },
    /// Heard `Alive`, waiting for a `Coordinator` announcement; `2T` more.
    AwaitCoordinator {
        /// Round the timer belongs to.
        round: u64,
    },
}

/// Inputs to the election machine.
#[derive(Clone, Debug)]
pub enum Input {
    /// Begin (or restart) an election.
    Start,
    /// A peer's message arrived.
    Msg {
        /// Sender.
        from: SiteId,
        /// Payload.
        msg: ElectionMsg,
    },
    /// A previously requested timer fired.
    Timer(ElectionTimer),
}

/// Effects for the driver to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a message to a peer.
    Send {
        /// Destination.
        to: SiteId,
        /// Payload.
        msg: ElectionMsg,
    },
    /// Request a timer after roughly `2T` (driver chooses exact span).
    SetTimer(ElectionTimer),
    /// This site is now coordinator of its partition.
    Elected,
    /// Another site announced itself coordinator.
    CoordinatorIs(SiteId),
}

/// Election progress states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Not participating in an election.
    Idle,
    /// Sent `Election` to higher sites; waiting for `Alive`.
    AwaitingAlive,
    /// Received `Alive`; waiting for a `Coordinator` announcement.
    AwaitingCoordinator,
    /// Won an election and announced.
    Leader,
    /// Accepted another site as coordinator.
    Follower(SiteId),
}

/// A bully-election participant.
#[derive(Clone, Debug)]
pub struct Elector {
    id: SiteId,
    peers: BTreeSet<SiteId>,
    phase: Phase,
    round: u64,
}

impl Elector {
    /// Creates an elector for `id` among `peers` (must include every site
    /// that may participate; `id` itself is ignored if present).
    pub fn new(id: SiteId, peers: impl IntoIterator<Item = SiteId>) -> Self {
        let mut peers: BTreeSet<SiteId> = peers.into_iter().collect();
        peers.remove(&id);
        Elector {
            id,
            peers,
            phase: Phase::Idle,
            round: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True when this site currently believes itself coordinator.
    pub fn is_leader(&self) -> bool {
        self.phase == Phase::Leader
    }

    /// The coordinator this site currently follows (itself when leader).
    pub fn coordinator(&self) -> Option<SiteId> {
        match self.phase {
            Phase::Leader => Some(self.id),
            Phase::Follower(c) => Some(c),
            _ => None,
        }
    }

    /// Resets to idle (e.g. after the protocol that needed a coordinator
    /// finished).
    pub fn reset(&mut self) {
        self.phase = Phase::Idle;
    }

    fn higher_peers(&self) -> impl Iterator<Item = SiteId> + '_ {
        let me = self.id;
        self.peers.iter().copied().filter(move |p| *p > me)
    }

    fn declare_victory(&mut self, out: &mut Vec<Action>) {
        self.phase = Phase::Leader;
        for p in self.peers.clone() {
            out.push(Action::Send {
                to: p,
                msg: ElectionMsg::Coordinator { round: self.round },
            });
        }
        out.push(Action::Elected);
    }

    fn start_election(&mut self, out: &mut Vec<Action>) {
        self.round += 1;
        let higher: Vec<SiteId> = self.higher_peers().collect();
        if higher.is_empty() {
            self.declare_victory(out);
            return;
        }
        self.phase = Phase::AwaitingAlive;
        for p in higher {
            out.push(Action::Send {
                to: p,
                msg: ElectionMsg::Election { round: self.round },
            });
        }
        out.push(Action::SetTimer(ElectionTimer::AwaitAlive {
            round: self.round,
        }));
    }

    /// Advances the machine. Returns the actions to apply.
    pub fn step(&mut self, input: Input) -> Vec<Action> {
        let mut out = Vec::new();
        match input {
            Input::Start => self.start_election(&mut out),
            Input::Msg { from, msg } => match msg {
                ElectionMsg::Election { round } => {
                    // A lower site is electing; bully it and (re)run our
                    // own election unless already decided upward.
                    if from < self.id {
                        out.push(Action::Send {
                            to: from,
                            msg: ElectionMsg::Alive { round },
                        });
                        match self.phase {
                            Phase::AwaitingAlive | Phase::AwaitingCoordinator => {}
                            Phase::Leader => {
                                // Re-announce to the (possibly recovered)
                                // lower site.
                                out.push(Action::Send {
                                    to: from,
                                    msg: ElectionMsg::Coordinator { round: self.round },
                                });
                            }
                            Phase::Idle | Phase::Follower(_) => self.start_election(&mut out),
                        }
                    }
                    // An Election from a *higher* site is unusual (we only
                    // send upward); ignore — its victory announcement will
                    // arrive if it wins.
                }
                ElectionMsg::Alive { round } => {
                    if self.phase == Phase::AwaitingAlive && round == self.round {
                        self.phase = Phase::AwaitingCoordinator;
                        out.push(Action::SetTimer(ElectionTimer::AwaitCoordinator {
                            round: self.round,
                        }));
                    }
                }
                ElectionMsg::Coordinator { .. } => {
                    // Adopt the announcer. If we were leader ourselves,
                    // higher id wins (deterministic tie-break); the paper
                    // tolerates duplicates either way.
                    if self.phase == Phase::Leader && from < self.id {
                        // Keep our own leadership; re-announce to assert it.
                        out.push(Action::Send {
                            to: from,
                            msg: ElectionMsg::Coordinator { round: self.round },
                        });
                    } else {
                        self.phase = Phase::Follower(from);
                        out.push(Action::CoordinatorIs(from));
                    }
                }
            },
            Input::Timer(t) => match t {
                ElectionTimer::AwaitAlive { round } => {
                    if self.phase == Phase::AwaitingAlive && round == self.round {
                        // No higher site answered: we win.
                        self.declare_victory(&mut out);
                    }
                }
                ElectionTimer::AwaitCoordinator { round } => {
                    if self.phase == Phase::AwaitingCoordinator && round == self.round {
                        // The higher site died mid-election; retry.
                        self.start_election(&mut out);
                    }
                }
            },
        }
        out
    }
}

/// The Paxos Commit recovery ballot for a candidate site's `round`-th
/// takeover attempt.
///
/// Paxos leader failover needs no election at all — any number of
/// candidates may run Phase 1 concurrently and safety holds — but every
/// candidate must use a ballot that is (a) strictly greater than 0 (the
/// original coordinator's ballot) and (b) distinct from every other
/// candidate's, or two candidates could split one ballot's acceptances.
/// Packing the per-site retry round into the high bits and the site id
/// (+1, so round 1 of site 0 stays above ballot 0) into the low 16 bits
/// gives both properties, and later rounds dominate earlier ones at
/// every site.
pub fn recovery_ballot(round: u64, site: SiteId) -> u64 {
    debug_assert!(round > 0, "recovery rounds start at 1");
    (round << 16) | (u64::from(site.0) + 1)
}

/// Canonical state hash for the model checker's visited-set: phase and
/// round fully determine the elector's future behaviour (id and peer
/// set are fixed per instance and hashed at the node level).
impl qbc_simnet::Fingerprint for Elector {
    fn fingerprint(&self, _now: qbc_simnet::Time, h: &mut qbc_simnet::FastHasher) {
        use std::hash::Hasher;
        h.write(format!("{:?}|{}", self.phase, self.round).as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sends(actions: &[Action]) -> Vec<(SiteId, &ElectionMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn recovery_ballots_are_positive_and_unique() {
        let sites = [SiteId(0), SiteId(1), SiteId(7), SiteId(65000)];
        let mut seen = std::collections::BTreeSet::new();
        for round in 1..=3u64 {
            for s in sites {
                let b = recovery_ballot(round, s);
                assert!(b > 0, "every recovery ballot beats the leader's 0");
                assert!(seen.insert(b), "ballot {b} duplicated");
            }
        }
        // Later rounds dominate earlier ones at every site.
        assert!(recovery_ballot(2, SiteId(0)) > recovery_ballot(1, SiteId(65000)));
    }

    #[test]
    fn singleton_wins_immediately() {
        let mut e = Elector::new(SiteId(3), [SiteId(3)]);
        let out = e.step(Input::Start);
        assert!(out.contains(&Action::Elected));
        assert!(e.is_leader());
        assert_eq!(e.coordinator(), Some(SiteId(3)));
    }

    #[test]
    fn highest_site_wins_immediately_and_announces() {
        let mut e = Elector::new(SiteId(5), [SiteId(2), SiteId(3), SiteId(5)]);
        let out = e.step(Input::Start);
        assert!(out.contains(&Action::Elected));
        let s = sends(&out);
        assert_eq!(s.len(), 2, "announces to both lower peers");
        assert!(s
            .iter()
            .all(|(_, m)| matches!(m, ElectionMsg::Coordinator { .. })));
    }

    #[test]
    fn lower_site_defers_to_alive_higher_site() {
        let mut low = Elector::new(SiteId(1), [SiteId(1), SiteId(2)]);
        let out = low.step(Input::Start);
        let s = sends(&out);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, SiteId(2));
        assert_eq!(low.phase(), Phase::AwaitingAlive);

        // Higher site answers Alive; low waits for Coordinator.
        let out = low.step(Input::Msg {
            from: SiteId(2),
            msg: ElectionMsg::Alive { round: low.round() },
        });
        assert_eq!(low.phase(), Phase::AwaitingCoordinator);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::SetTimer(ElectionTimer::AwaitCoordinator { .. }))));

        // Coordinator announcement arrives.
        let out = low.step(Input::Msg {
            from: SiteId(2),
            msg: ElectionMsg::Coordinator { round: 1 },
        });
        assert_eq!(out, vec![Action::CoordinatorIs(SiteId(2))]);
        assert_eq!(low.coordinator(), Some(SiteId(2)));
    }

    #[test]
    fn silent_higher_site_times_out_and_lower_wins() {
        let mut low = Elector::new(SiteId(1), [SiteId(1), SiteId(9)]);
        low.step(Input::Start);
        let round = low.round();
        let out = low.step(Input::Timer(ElectionTimer::AwaitAlive { round }));
        assert!(out.contains(&Action::Elected));
        assert!(low.is_leader());
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut e = Elector::new(SiteId(1), [SiteId(1), SiteId(2)]);
        e.step(Input::Start);
        let old_round = e.round();
        e.step(Input::Start); // restart; round advances
        let out = e.step(Input::Timer(ElectionTimer::AwaitAlive { round: old_round }));
        assert!(out.is_empty(), "stale timer must not elect");
    }

    #[test]
    fn higher_site_bullies_lower_candidate() {
        let mut high = Elector::new(SiteId(7), [SiteId(1), SiteId(7)]);
        let out = high.step(Input::Msg {
            from: SiteId(1),
            msg: ElectionMsg::Election { round: 1 },
        });
        let s = sends(&out);
        // Replies Alive and, having no higher peers, wins immediately.
        assert!(matches!(s[0].1, ElectionMsg::Alive { round: 1 }));
        assert!(out.contains(&Action::Elected));
    }

    #[test]
    fn leader_reannounces_to_election_from_lower() {
        let mut high = Elector::new(SiteId(7), [SiteId(1), SiteId(7)]);
        high.step(Input::Start);
        assert!(high.is_leader());
        let out = high.step(Input::Msg {
            from: SiteId(1),
            msg: ElectionMsg::Election { round: 4 },
        });
        let s = sends(&out);
        assert!(s
            .iter()
            .any(|(_, m)| matches!(m, ElectionMsg::Coordinator { .. })));
        assert!(high.is_leader(), "leadership retained");
    }

    #[test]
    fn dead_winner_triggers_retry() {
        let mut low = Elector::new(SiteId(1), [SiteId(1), SiteId(5)]);
        low.step(Input::Start);
        let round = low.round();
        low.step(Input::Msg {
            from: SiteId(5),
            msg: ElectionMsg::Alive { round },
        });
        // The higher site crashes before announcing; timeout restarts.
        let out = low.step(Input::Timer(ElectionTimer::AwaitCoordinator { round }));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send {
                to: SiteId(5),
                msg: ElectionMsg::Election { .. }
            }
        )));
        assert_eq!(low.phase(), Phase::AwaitingAlive);
        assert_eq!(low.round(), round + 1);
    }

    #[test]
    fn two_leaders_can_coexist_after_heal() {
        // Partition {1} | {2}: both elect themselves.
        let mut a = Elector::new(SiteId(1), [SiteId(1), SiteId(2)]);
        let mut b = Elector::new(SiteId(2), [SiteId(1), SiteId(2)]);
        a.step(Input::Start);
        a.step(Input::Timer(ElectionTimer::AwaitAlive { round: a.round() }));
        b.step(Input::Start);
        assert!(a.is_leader() && b.is_leader(), "both partitions elect");
        // On heal, b's announcement reaches a: a defers (higher id wins).
        let out = a.step(Input::Msg {
            from: SiteId(2),
            msg: ElectionMsg::Coordinator { round: 1 },
        });
        assert!(out.contains(&Action::CoordinatorIs(SiteId(2))));
        assert!(!a.is_leader());
        // a's stale announcement reaching b: b keeps leadership and
        // re-announces.
        let out = b.step(Input::Msg {
            from: SiteId(1),
            msg: ElectionMsg::Coordinator { round: 1 },
        });
        assert!(b.is_leader());
        assert!(!out.contains(&Action::Elected), "no duplicate Elected");
    }

    #[test]
    fn follower_restarts_election_when_bullied() {
        let mut mid = Elector::new(SiteId(3), [SiteId(1), SiteId(3), SiteId(9)]);
        mid.step(Input::Start);
        mid.step(Input::Msg {
            from: SiteId(9),
            msg: ElectionMsg::Coordinator { round: 1 },
        });
        assert_eq!(mid.coordinator(), Some(SiteId(9)));
        // s1 holds a new election (s9 must have died): mid answers Alive
        // and re-runs its own.
        let out = mid.step(Input::Msg {
            from: SiteId(1),
            msg: ElectionMsg::Election { round: 2 },
        });
        let s = sends(&out);
        assert!(matches!(s[0].1, ElectionMsg::Alive { .. }));
        assert!(s
            .iter()
            .any(|(to, m)| *to == SiteId(9) && matches!(m, ElectionMsg::Election { .. })));
    }
}
