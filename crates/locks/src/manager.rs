//! The lock table: modes, queues, grants and upgrades.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Lock modes of strict two-phase locking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True when `self` covers `other` (X covers S).
    pub fn covers(self, other: LockMode) -> bool {
        self == LockMode::Exclusive || other == LockMode::Shared
    }
}

/// Result of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockOutcome {
    /// The lock was granted immediately.
    Granted,
    /// The request was queued behind incompatible holders.
    Waiting,
}

/// A lock that became granted as the result of a release.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Granted<R, T> {
    /// Resource the lock is on.
    pub resource: R,
    /// The transaction now holding it.
    pub txn: T,
    /// Mode granted.
    pub mode: LockMode,
}

/// Counters describing lock-manager activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub waits: u64,
    /// Grants made when a holder released.
    pub deferred_grants: u64,
    /// In-place S→X upgrades.
    pub upgrades: u64,
    /// Release operations.
    pub releases: u64,
}

#[derive(Clone, Debug)]
struct Request<T> {
    txn: T,
    mode: LockMode,
    /// True when this is an upgrade request from a current S holder.
    upgrade: bool,
}

#[derive(Clone, Debug, Default)]
struct Entry<T: Ord> {
    holders: BTreeMap<T, LockMode>,
    queue: VecDeque<Request<T>>,
}

impl<T: Ord + Clone> Entry<T> {
    fn is_free(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }

    fn can_grant(&self, txn: &T, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| t == txn || m.compatible(LockMode::Shared)),
            LockMode::Exclusive => self.holders.keys().all(|t| t == txn),
        }
    }
}

/// A per-site lock table over resources `R` held by transactions `T`.
#[derive(Clone, Debug)]
pub struct LockManager<R, T>
where
    R: Ord + Clone,
    T: Ord + Clone,
{
    table: BTreeMap<R, Entry<T>>,
    /// Reverse index: every resource a transaction holds or waits on.
    /// Keeps `release_all` — the per-decision hot path — proportional
    /// to the transaction's own footprint instead of the table size.
    by_txn: BTreeMap<T, BTreeSet<R>>,
    stats: LockStats,
}

impl<R, T> Default for LockManager<R, T>
where
    R: Ord + Clone + fmt::Debug,
    T: Ord + Clone + fmt::Debug,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<R, T> LockManager<R, T>
where
    R: Ord + Clone + fmt::Debug,
    T: Ord + Clone + fmt::Debug,
{
    /// An empty lock table.
    pub fn new() -> Self {
        LockManager {
            table: BTreeMap::new(),
            by_txn: BTreeMap::new(),
            stats: LockStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// The mode `txn` currently holds on `res`, if any.
    pub fn holds(&self, txn: &T, res: &R) -> Option<LockMode> {
        self.table
            .get(res)
            .and_then(|e| e.holders.get(txn))
            .copied()
    }

    /// True when any transaction holds any lock on `res`.
    pub fn is_locked(&self, res: &R) -> bool {
        self.table
            .get(res)
            .map(|e| !e.holders.is_empty())
            .unwrap_or(false)
    }

    /// Current holders of `res` with their modes.
    pub fn holders(&self, res: &R) -> Vec<(T, LockMode)> {
        self.table
            .get(res)
            .map(|e| e.holders.iter().map(|(t, m)| (t.clone(), *m)).collect())
            .unwrap_or_default()
    }

    /// Transactions queued on `res`, front first.
    pub fn waiters(&self, res: &R) -> Vec<(T, LockMode)> {
        self.table
            .get(res)
            .map(|e| e.queue.iter().map(|r| (r.txn.clone(), r.mode)).collect())
            .unwrap_or_default()
    }

    /// All resources on which `txn` holds a lock.
    pub fn held_by(&self, txn: &T) -> Vec<(R, LockMode)> {
        self.table
            .iter()
            .filter_map(|(r, e)| e.holders.get(txn).map(|m| (r.clone(), *m)))
            .collect()
    }

    /// True when `txn` is waiting on any resource.
    pub fn is_waiting(&self, txn: &T) -> bool {
        self.table
            .values()
            .any(|e| e.queue.iter().any(|req| &req.txn == txn))
    }

    /// Requests a lock. Returns [`LockOutcome::Granted`] when the lock is
    /// held on return; [`LockOutcome::Waiting`] when queued.
    ///
    /// Re-entrancy: a transaction already holding a covering mode is
    /// granted immediately. An S holder requesting X is *upgraded* in
    /// place when it is the sole holder; otherwise the upgrade waits at
    /// the front of the queue (classical upgrade priority), preventing
    /// starvation by later requests.
    pub fn acquire(&mut self, txn: T, res: R, mode: LockMode) -> LockOutcome {
        // Whatever the outcome, the transaction ends up holding or
        // queued on the resource; index it for `release_all`.
        self.by_txn
            .entry(txn.clone())
            .or_default()
            .insert(res.clone());
        let entry = self.table.entry(res).or_insert_with(|| Entry {
            holders: BTreeMap::new(),
            queue: VecDeque::new(),
        });
        if let Some(&held) = entry.holders.get(&txn) {
            if held.covers(mode) {
                self.stats.immediate_grants += 1;
                return LockOutcome::Granted;
            }
            // S -> X upgrade.
            if entry.holders.len() == 1 {
                entry.holders.insert(txn, LockMode::Exclusive);
                self.stats.upgrades += 1;
                return LockOutcome::Granted;
            }
            // Duplicate upgrade request: keep a single queued entry.
            if entry
                .queue
                .iter()
                .any(|r| r.txn == txn && r.mode == LockMode::Exclusive)
            {
                return LockOutcome::Waiting;
            }
            entry.queue.push_front(Request {
                txn,
                mode: LockMode::Exclusive,
                upgrade: true,
            });
            self.stats.waits += 1;
            return LockOutcome::Waiting;
        }
        // FIFO fairness: a new request must also wait behind the queue.
        if entry.queue.is_empty() && entry.can_grant(&txn, mode) {
            entry.holders.insert(txn, mode);
            self.stats.immediate_grants += 1;
            LockOutcome::Granted
        } else {
            if entry.queue.iter().any(|r| r.txn == txn) {
                return LockOutcome::Waiting;
            }
            entry.queue.push_back(Request {
                txn,
                mode,
                upgrade: false,
            });
            self.stats.waits += 1;
            LockOutcome::Waiting
        }
    }

    /// Releases `txn`'s lock on `res` (and removes any queued request),
    /// returning locks granted to waiters as a result.
    pub fn release(&mut self, txn: &T, res: &R) -> Vec<Granted<R, T>> {
        if let Some(set) = self.by_txn.get_mut(txn) {
            set.remove(res);
            if set.is_empty() {
                self.by_txn.remove(txn);
            }
        }
        let mut granted = Vec::new();
        if let Some(entry) = self.table.get_mut(res) {
            entry.holders.remove(txn);
            entry.queue.retain(|r| &r.txn != txn);
            self.stats.releases += 1;
            Self::pump(res, entry, &mut granted, &mut self.stats);
            if entry.is_free() {
                self.table.remove(res);
            }
        }
        granted
    }

    /// Releases every lock and queued request of `txn` (commit/abort),
    /// returning locks granted to waiters as a result.
    pub fn release_all(&mut self, txn: &T) -> Vec<Granted<R, T>> {
        // The index lists exactly the resources the table scan used to
        // find (held or queued), in the same sorted order, so grant
        // order — and with it simulator determinism — is unchanged.
        let resources = self.by_txn.remove(txn).unwrap_or_default();
        let mut granted = Vec::new();
        for res in resources {
            granted.extend(self.release(txn, &res));
        }
        granted
    }

    /// Grants queued requests that have become compatible (front-first,
    /// stopping at the first request that cannot be granted).
    fn pump(
        res: &R,
        entry: &mut Entry<T>,
        granted: &mut Vec<Granted<R, T>>,
        stats: &mut LockStats,
    ) {
        while let Some(front) = entry.queue.front() {
            let ok = if front.upgrade {
                // Upgrade can proceed when the requester is the only holder.
                entry.holders.len() == 1 && entry.holders.contains_key(&front.txn)
            } else {
                entry.can_grant(&front.txn, front.mode)
            };
            if !ok {
                break;
            }
            let req = entry.queue.pop_front().expect("front exists");
            entry.holders.insert(req.txn.clone(), req.mode);
            stats.deferred_grants += 1;
            granted.push(Granted {
                resource: res.clone(),
                txn: req.txn,
                mode: req.mode,
            });
        }
    }

    /// Canonical snapshot of the table for state hashing: per resource
    /// (in key order), the holders (in key order) and the queue (in
    /// queue order, with the upgrade flag). Excludes the activity
    /// counters ([`LockManager::stats`]), which are history rather than
    /// state: two tables that will grant identically can have got there
    /// through different request sequences.
    #[allow(clippy::type_complexity)]
    pub fn table_snapshot(&self) -> Vec<(R, Vec<(T, LockMode)>, Vec<(T, LockMode, bool)>)> {
        self.table
            .iter()
            .map(|(r, e)| {
                (
                    r.clone(),
                    e.holders.iter().map(|(t, m)| (t.clone(), *m)).collect(),
                    e.queue
                        .iter()
                        .map(|q| (q.txn.clone(), q.mode, q.upgrade))
                        .collect(),
                )
            })
            .collect()
    }

    /// Builds the wait-for relation: `waiter -> holder` edges for every
    /// queued request. Input to deadlock detection.
    pub fn wait_for_edges(&self) -> Vec<(T, T)> {
        let mut edges = Vec::new();
        for entry in self.table.values() {
            for req in &entry.queue {
                for holder in entry.holders.keys() {
                    if holder != &req.txn {
                        edges.push((req.txn.clone(), holder.clone()));
                    }
                }
                // A queued request also waits for earlier queued requests
                // that conflict with it (they will be granted first).
                for earlier in &entry.queue {
                    if std::ptr::eq(earlier, req) {
                        break;
                    }
                    if earlier.txn != req.txn && !earlier.mode.compatible(req.mode) {
                        edges.push((req.txn.clone(), earlier.txn.clone()));
                    }
                }
            }
        }
        edges
    }

    /// All transactions appearing in the table (holders or waiters).
    pub fn transactions(&self) -> BTreeSet<T> {
        let mut out = BTreeSet::new();
        for e in self.table.values() {
            out.extend(e.holders.keys().cloned());
            out.extend(e.queue.iter().map(|r| r.txn.clone()));
        }
        out
    }

    /// Invariant check used by tests: no two incompatible holders coexist.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (res, e) in &self.table {
            let modes: Vec<&LockMode> = e.holders.values().collect();
            let exclusives = modes.iter().filter(|m| ***m == LockMode::Exclusive).count();
            if exclusives > 0 && e.holders.len() > 1 {
                return Err(format!(
                    "resource {res:?} has {} holders alongside an X lock",
                    e.holders.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Lm = LockManager<&'static str, u32>;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = Lm::new();
        assert_eq!(lm.acquire(1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(2, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.holders(&"x").len(), 2);
        lm.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_conflicts_queue_fifo() {
        let mut lm = Lm::new();
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "x", LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(3, "x", LockMode::Exclusive),
            LockOutcome::Waiting
        );
        let granted = lm.release_all(&1);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, 2, "FIFO: txn 2 first");
        let granted = lm.release_all(&2);
        assert_eq!(granted[0].txn, 3);
    }

    #[test]
    fn shared_behind_exclusive_waits() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        assert_eq!(lm.acquire(2, "x", LockMode::Shared), LockOutcome::Waiting);
        let granted = lm.release_all(&1);
        assert_eq!(granted.len(), 1);
        assert_eq!(lm.holds(&2, &"x"), Some(LockMode::Shared));
    }

    #[test]
    fn batch_of_shared_grants_together() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        lm.acquire(2, "x", LockMode::Shared);
        lm.acquire(3, "x", LockMode::Shared);
        let granted = lm.release_all(&1);
        assert_eq!(granted.len(), 2, "both shared waiters granted at once");
        lm.check_invariants().unwrap();
    }

    #[test]
    fn fifo_blocks_new_shared_behind_queued_exclusive() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Shared);
        lm.acquire(2, "x", LockMode::Exclusive); // queued
                                                 // A later shared request must not jump over the queued X.
        assert_eq!(lm.acquire(3, "x", LockMode::Shared), LockOutcome::Waiting);
        let granted = lm.release_all(&1);
        assert_eq!(granted[0].txn, 2);
        assert_eq!(granted.len(), 1);
    }

    #[test]
    fn reentrant_acquire_is_granted() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        assert_eq!(lm.acquire(1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lm.holds(&1, &"x"), Some(LockMode::Exclusive));
    }

    #[test]
    fn sole_holder_upgrade_is_immediate() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Shared);
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lm.holds(&1, &"x"), Some(LockMode::Exclusive));
        assert_eq!(lm.stats().upgrades, 1);
    }

    #[test]
    fn contended_upgrade_waits_with_priority() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Shared);
        lm.acquire(2, "x", LockMode::Shared);
        lm.acquire(3, "x", LockMode::Exclusive); // queued behind both
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Waiting
        );
        // When txn 2 releases, the upgrade (front of queue) wins over txn 3.
        let granted = lm.release_all(&2);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, 1);
        assert_eq!(granted[0].mode, LockMode::Exclusive);
        assert_eq!(lm.holds(&1, &"x"), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_all_drops_queued_requests_too() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        lm.acquire(2, "x", LockMode::Exclusive);
        assert!(lm.is_waiting(&2));
        lm.release_all(&2); // abort the waiter
        assert!(!lm.is_waiting(&2));
        let granted = lm.release_all(&1);
        assert!(granted.is_empty(), "no waiter left to grant");
        assert!(!lm.is_locked(&"x"));
    }

    #[test]
    fn wait_for_edges_point_at_holders_and_earlier_waiters() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        lm.acquire(2, "x", LockMode::Exclusive);
        lm.acquire(3, "x", LockMode::Exclusive);
        let edges = lm.wait_for_edges();
        assert!(edges.contains(&(2, 1)));
        assert!(edges.contains(&(3, 1)));
        assert!(edges.contains(&(3, 2)), "3 waits for earlier waiter 2");
    }

    #[test]
    fn held_by_lists_resources() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Shared);
        lm.acquire(1, "y", LockMode::Exclusive);
        let mut held = lm.held_by(&1);
        held.sort();
        assert_eq!(
            held,
            vec![("x", LockMode::Shared), ("y", LockMode::Exclusive)]
        );
    }

    #[test]
    fn empty_entries_are_garbage_collected() {
        let mut lm = Lm::new();
        lm.acquire(1, "x", LockMode::Shared);
        lm.release_all(&1);
        assert!(lm.transactions().is_empty());
        assert!(!lm.is_locked(&"x"));
    }
}
