//! # qbc-locks — per-site lock manager (strict two-phase locking)
//!
//! Serializability inside a partition is delegated to classical
//! concurrency control (refs. \[2,6,10,13\] in the paper); we implement strict
//! 2PL. The lock manager matters to the paper's argument because a
//! *blocked* transaction — one whose commit protocol can neither commit
//! nor abort — keeps holding its locks, "rendering those data items
//! inaccessible to the other transactions". The availability experiments
//! ask this crate which copies are pinned by undecided transactions.
//!
//! The manager is generic over resource and transaction identifiers so it
//! is reusable and independently testable:
//!
//! * shared/exclusive modes with FIFO wait queues,
//! * lock upgrade (S→X) with priority over new requests,
//! * wait-for-graph construction and cycle (deadlock) detection,
//! * deterministic victim selection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod manager;
mod waitfor;

pub use manager::{Granted, LockManager, LockMode, LockOutcome, LockStats};
pub use waitfor::{detect_cycles, pick_victims, WaitForGraph};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Acquire { txn: u8, res: u8, exclusive: bool },
        ReleaseAll { txn: u8 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..6, 0u8..4, proptest::bool::ANY).prop_map(|(txn, res, exclusive)| Op::Acquire {
                txn,
                res,
                exclusive
            }),
            (0u8..6).prop_map(|txn| Op::ReleaseAll { txn }),
        ]
    }

    proptest! {
        /// Under any interleaving of acquires and releases, the holder
        /// invariant holds: an exclusive holder is always alone.
        #[test]
        fn no_conflicting_grants(ops in proptest::collection::vec(arb_op(), 1..120)) {
            let mut lm: LockManager<u8, u8> = LockManager::new();
            for op in ops {
                match op {
                    Op::Acquire { txn, res, exclusive } => {
                        let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                        lm.acquire(txn, res, mode);
                    }
                    Op::ReleaseAll { txn } => {
                        lm.release_all(&txn);
                    }
                }
                prop_assert!(lm.check_invariants().is_ok());
            }
        }

        /// Releasing everything empties the table completely.
        #[test]
        fn full_release_leaves_empty_table(ops in proptest::collection::vec(arb_op(), 1..80)) {
            let mut lm: LockManager<u8, u8> = LockManager::new();
            for op in ops {
                if let Op::Acquire { txn, res, exclusive } = op {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    lm.acquire(txn, res, mode);
                }
            }
            for txn in 0u8..6 {
                lm.release_all(&txn);
            }
            prop_assert!(lm.transactions().is_empty());
        }

        /// Deadlock detection finds a cycle whenever one is constructed.
        #[test]
        fn constructed_cycles_are_detected(n in 2usize..6) {
            let mut lm: LockManager<u8, u8> = LockManager::new();
            // txn i holds res i and requests res (i+1) % n: a perfect cycle.
            for i in 0..n {
                lm.acquire(i as u8, i as u8, LockMode::Exclusive);
            }
            for i in 0..n {
                lm.acquire(i as u8, ((i + 1) % n) as u8, LockMode::Exclusive);
            }
            let cycles = detect_cycles(&lm.wait_for_edges());
            prop_assert!(!cycles.is_empty(), "cycle of length {} missed", n);
            let victims = pick_victims(&cycles);
            prop_assert!(!victims.is_empty());
        }
    }
}
