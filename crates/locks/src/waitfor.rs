//! Wait-for-graph deadlock detection.
//!
//! Edges `a -> b` mean "transaction `a` waits for transaction `b`".
//! Cycles are deadlocks; [`pick_victims`] chooses one transaction per
//! cycle (the largest id — deterministically the "youngest" under
//! monotonically assigned ids) for the caller to abort.

use std::collections::{BTreeMap, BTreeSet};

/// Adjacency-list wait-for graph.
#[derive(Clone, Debug, Default)]
pub struct WaitForGraph<T: Ord + Clone> {
    edges: BTreeMap<T, BTreeSet<T>>,
}

impl<T: Ord + Clone> WaitForGraph<T> {
    /// Builds the graph from an edge list.
    pub fn from_edges(edges: &[(T, T)]) -> Self {
        let mut g = WaitForGraph {
            edges: BTreeMap::new(),
        };
        for (a, b) in edges {
            g.edges.entry(a.clone()).or_default().insert(b.clone());
        }
        g
    }

    /// Successors of `t`.
    pub fn waits_for(&self, t: &T) -> impl Iterator<Item = &T> {
        self.edges.get(t).into_iter().flatten()
    }

    /// All nodes with at least one outgoing edge.
    pub fn waiters(&self) -> impl Iterator<Item = &T> {
        self.edges.keys()
    }

    /// Finds elementary cycles reachable in the graph. Returns each cycle
    /// as the list of transactions on it (in discovery order). Cycles
    /// sharing nodes may be reported once.
    pub fn cycles(&self) -> Vec<Vec<T>> {
        // Iterative DFS with colors: white=unvisited, grey=on stack,
        // black=done. A grey->grey edge closes a cycle.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<&T, Color> = BTreeMap::new();
        let nodes: BTreeSet<&T> = self
            .edges
            .iter()
            .flat_map(|(a, bs)| std::iter::once(a).chain(bs.iter()))
            .collect();
        for &n in &nodes {
            color.insert(n, Color::White);
        }
        let mut cycles: Vec<Vec<T>> = Vec::new();
        for &start in &nodes {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, successor iterator position)
            let mut path: Vec<&T> = Vec::new();
            let mut stack: Vec<(&T, Vec<&T>)> = vec![(
                start,
                self.edges
                    .get(start)
                    .map(|s| s.iter().collect())
                    .unwrap_or_default(),
            )];
            color.insert(start, Color::Grey);
            path.push(start);
            while let Some((node, succs)) = stack.last_mut() {
                if let Some(next) = succs.pop() {
                    match color[next] {
                        Color::White => {
                            color.insert(next, Color::Grey);
                            path.push(next);
                            let nexts = self
                                .edges
                                .get(next)
                                .map(|s| s.iter().collect())
                                .unwrap_or_default();
                            stack.push((next, nexts));
                        }
                        Color::Grey => {
                            // Found a cycle: the suffix of `path` from `next`.
                            if let Some(pos) = path.iter().position(|&p| p == next) {
                                cycles.push(path[pos..].iter().map(|&p| p.clone()).collect());
                            }
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    path.pop();
                    stack.pop();
                }
            }
        }
        cycles
    }
}

/// Convenience: build the graph and return its cycles.
pub fn detect_cycles<T: Ord + Clone>(edges: &[(T, T)]) -> Vec<Vec<T>> {
    WaitForGraph::from_edges(edges).cycles()
}

/// Deterministic victim selection: the maximum transaction id on each
/// cycle (one victim per cycle, deduplicated).
pub fn pick_victims<T: Ord + Clone>(cycles: &[Vec<T>]) -> BTreeSet<T> {
    cycles
        .iter()
        .filter_map(|c| c.iter().max().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycle_detected() {
        let cycles = detect_cycles(&[(1, 2), (2, 1)]);
        assert_eq!(cycles.len(), 1);
        let c: BTreeSet<i32> = cycles[0].iter().copied().collect();
        assert_eq!(c, [1, 2].into());
    }

    #[test]
    fn no_cycle_in_dag() {
        let cycles = detect_cycles(&[(1, 2), (2, 3), (1, 3)]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        // Should not happen in a lock manager (re-entrancy is granted)
        // but the detector must be robust to it.
        let cycles = detect_cycles(&[(7, 7)]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![7]);
    }

    #[test]
    fn long_cycle_detected() {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let cycles = detect_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 5);
    }

    #[test]
    fn victim_is_max_id() {
        let cycles = vec![vec![3, 9, 1]];
        let v = pick_victims(&cycles);
        assert_eq!(v, [9].into());
    }

    #[test]
    fn disjoint_cycles_yield_distinct_victims() {
        let cycles = detect_cycles(&[(1, 2), (2, 1), (5, 6), (6, 5)]);
        assert_eq!(cycles.len(), 2);
        let v = pick_victims(&cycles);
        assert_eq!(v, [2, 6].into());
    }

    #[test]
    fn waits_for_accessor() {
        let g = WaitForGraph::from_edges(&[(1, 2), (1, 3)]);
        let succ: Vec<&i32> = g.waits_for(&1).collect();
        assert_eq!(succ, vec![&2, &3]);
        assert_eq!(g.waiters().count(), 1);
    }
}
