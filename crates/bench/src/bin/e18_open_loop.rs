//! E18 — open-loop serving capacity of the event-driven reactor
//! front door.
//!
//! The reactor multiplexes every site plus the client front door onto a
//! small fixed pool of event-loop workers; client sessions are logical
//! state machines over framed sockets, so tens of thousands can be in
//! flight without tens of thousands of threads. This experiment drives
//! the open-loop generator (`qbc_harness::open_loop`) — arrivals
//! decoupled from completions, the shape a real front door sees — at
//! 1k / 10k / 30k concurrent sessions across three commit protocols,
//! and puts the threaded one-thread-per-site transport next to it at
//! the session count where a thread-per-blocked-client serving model
//! stops being reasonable on one box.
//!
//! Measured per cell: committed/s over the whole wave, client-observed
//! p50/p99/max session latency (microseconds), peak sessions in flight
//! as counted by the server's front door, resubmissions, and the
//! atomicity audit over the final node states.
//!
//! Expected shape — the acceptance bar:
//! * every cell resolves every session (nothing `Failed`), consistently;
//! * at the 10k+ levels the front door actually *sustains* ≥ 10 000
//!   sessions in flight at once (full run; the smoke run scales down);
//! * reactor committed/s at every level is at least the threaded
//!   baseline's at its max feasible count — the event-driven front end
//!   does not buy concurrency by giving back throughput.
//!
//! Output: a human table plus `BENCH_e18.json` (`--smoke` writes
//! `BENCH_e18_smoke.json` with smaller waves so CI stays fast and never
//! clobbers committed full-run numbers).

use qbc_cluster::{ClusterConfig, ReactorConfig};
use qbc_core::ProtocolKind;
use qbc_harness::open_loop::{
    run_open_loop, run_threaded_baseline, OpenLoopConfig, OpenLoopReport, ThreadedBaselineReport,
};
use qbc_simnet::Duration;
use std::fmt::Write as _;

/// The protocols compared: the blocking baseline, the paper's faster
/// quorum commit, and Paxos Commit.
const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::TwoPhase,
    ProtocolKind::QuorumCommit2,
    ProtocolKind::PaxosCommit,
];

/// Two shards, three sites each, r = w = 2 — the cluster default shape
/// — over an item space wide enough that the 30k wave's round-robin
/// item assignment stays unique (committed/s measures the commit
/// pipeline, not no-wait-2PL aborts). `t_bound` is generous: on
/// wall-clock substrates ticks are milliseconds, and a deep open-loop
/// backlog must not trip presumed-abort vote timers that simulate site
/// death.
fn cluster_cfg(protocol: ProtocolKind) -> ClusterConfig {
    ClusterConfig {
        items_per_shard: 16_384,
        protocol,
        t_bound: Duration(2_000),
        seed: 18,
        ..Default::default()
    }
}

/// Reactor tuning for the sweep: the front-door liveness sweep is
/// pushed out so a deep backlog is never mistaken for a swallowed
/// begin.
fn reactor_cfg() -> ReactorConfig {
    ReactorConfig {
        txn_timeout_ms: 600_000,
        ..Default::default()
    }
}

struct Cell {
    protocol: ProtocolKind,
    report: OpenLoopReport,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels: &[u64] = if smoke {
        &[200, 1_000, 2_000]
    } else {
        &[1_000, 10_000, 30_000]
    };
    let baseline_sessions: u64 = if smoke { 200 } else { 1_000 };

    println!("E18 — open-loop serving capacity: reactor front door vs threaded transport");
    println!(
        "(2 shards x 3 sites, r=w=2, {} items, burst arrivals, levels {levels:?})\n",
        2 * 16_384
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut baselines: Vec<(ProtocolKind, ThreadedBaselineReport)> = Vec::new();
    for protocol in PROTOCOLS {
        for &sessions in levels {
            let report = run_open_loop(&OpenLoopConfig {
                cluster: cluster_cfg(protocol),
                reactor: reactor_cfg(),
                sessions,
                rate: 0.0,
            });
            cells.push(Cell { protocol, report });
        }
        baselines.push((
            protocol,
            run_threaded_baseline(&cluster_cfg(protocol), baseline_sessions),
        ));
    }

    println!(
        "{:<14} {:>8} {:>9} {:>7} {:>7} {:>9} {:>12} {:>9} {:>9} {:>10}",
        "protocol",
        "sessions",
        "peak",
        "commit",
        "abort",
        "resubmit",
        "committed/s",
        "p50 us",
        "p99 us",
        "wall ms",
    );
    for c in &cells {
        let r = &c.report;
        println!(
            "{:<14} {:>8} {:>9} {:>7} {:>7} {:>9} {:>12.0} {:>9} {:>9} {:>10}",
            format!("{:?}", c.protocol),
            r.sessions,
            r.peak_in_flight,
            r.committed,
            r.aborted,
            r.resubmits,
            r.committed_per_sec,
            r.p50_us,
            r.p99_us,
            r.wall.as_millis(),
        );
    }
    println!();
    for (p, b) in &baselines {
        println!(
            "threaded {:<14} {:>6} sessions: {:>7} committed, {:>10.0} committed/s, wall {} ms (settle {} ms)",
            format!("{p:?}"),
            b.sessions,
            b.committed,
            b.committed_per_sec,
            b.wall.as_millis(),
            b.settle.as_millis(),
        );
    }
    println!();

    // Acceptance.
    for c in &cells {
        let r = &c.report;
        let p = c.protocol;
        assert!(r.consistent, "{p:?}/{}: atomicity violated", r.sessions);
        assert_eq!(r.failed, 0, "{p:?}/{}: sessions failed", r.sessions);
        assert_eq!(
            r.committed + r.aborted,
            r.sessions,
            "{p:?}/{}: sessions unresolved",
            r.sessions
        );
        assert!(
            r.committed >= r.sessions * 9 / 10,
            "{p:?}/{}: only {} committed",
            r.sessions,
            r.committed
        );
        // The front door must genuinely hold the wave concurrently, not
        // drain it as it trickles in. The bar is half the wave because
        // decisions overlap submission (one core serves both the
        // generator and the event loops); the absolute 10k bar below is
        // the headline claim.
        assert!(
            r.peak_in_flight >= r.sessions / 2,
            "{p:?}/{}: peak in flight only {}",
            r.sessions,
            r.peak_in_flight
        );
    }
    if !smoke {
        for p in PROTOCOLS {
            let sustained = cells
                .iter()
                .filter(|c| c.protocol == p)
                .map(|c| c.report.peak_in_flight)
                .max()
                .unwrap_or(0);
            assert!(
                sustained >= 10_000,
                "{p:?}: never sustained 10k concurrent sessions (peak {sustained})"
            );
        }
    }
    for (p, b) in &baselines {
        assert!(b.consistent && b.undecided == 0, "{p:?} baseline unsettled");
        let floor = b.committed_per_sec;
        for c in cells.iter().filter(|c| c.protocol == *p) {
            assert!(
                c.report.committed_per_sec >= floor,
                "{p:?}/{}: reactor {:.0} committed/s under threaded {:.0}",
                c.report.sessions,
                c.report.committed_per_sec,
                floor
            );
        }
    }
    println!(
        "acceptance: all sessions resolved, peak in flight {} across cells, \
         reactor committed/s >= threaded baseline on every protocol — OK",
        cells
            .iter()
            .map(|c| c.report.peak_in_flight)
            .max()
            .unwrap_or(0)
    );

    let mut json =
        String::from("{\n  \"bench\": \"e18_open_loop\",\n  \"unit\": \"wall-clock\",\n");
    let _ = write!(json, "  \"levels\": {levels:?},\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let r = &c.report;
        let _ = write!(
            json,
            "    {{\"protocol\": \"{:?}\", \"sessions\": {}, \"peak_in_flight\": {}, \"committed\": {}, \"aborted\": {}, \"failed\": {}, \"resubmits\": {}, \"backpressure_stalls\": {}, \"wall_ms\": {}, \"submit_wall_ms\": {}, \"committed_per_sec\": {:.1}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            c.protocol,
            r.sessions,
            r.peak_in_flight,
            r.committed,
            r.aborted,
            r.failed,
            r.resubmits,
            r.backpressure_stalls,
            r.wall.as_millis(),
            r.submit_wall.as_millis(),
            r.committed_per_sec,
            r.mean_us,
            r.p50_us,
            r.p99_us,
            r.max_us,
        );
    }
    json.push_str("\n  ],\n  \"threaded_baseline\": [\n");
    for (i, (p, b)) in baselines.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"protocol\": \"{p:?}\", \"sessions\": {}, \"committed\": {}, \"aborted\": {}, \"wall_ms\": {}, \"settle_ms\": {}, \"committed_per_sec\": {:.1}}}",
            b.sessions,
            b.committed,
            b.aborted,
            b.wall.as_millis(),
            b.settle.as_millis(),
            b.committed_per_sec,
        );
    }
    json.push_str("\n  ]\n}\n");
    let out = if smoke {
        "BENCH_e18_smoke.json"
    } else {
        "BENCH_e18.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
