//! E17 — read availability under pinned copies: quorum reads vs MVCC
//! snapshot reads at the commit-stable watermark.
//!
//! The paper's quorum read protocol treats a copy X-locked by an
//! undecided transaction as unreadable, so an in-doubt transaction that
//! pins copies (a 2PC coordinator crash between collecting yes-votes
//! and delivering the decision) makes the item `Unavailable` for the
//! whole blocking window. The multi-version store removes that
//! coupling: snapshot reads answer from the newest version at or below
//! the shard's commit-stable watermark, *under* the pins, without
//! touching locks.
//!
//! This experiment runs the **identical** deterministic schedule twice:
//! a committed baseline write, then an in-doubt transaction whose 2PC
//! coordinator crashes mid-protocol and stays down for a long pinned
//! window, with probe reads of the pinned item fired at a fixed cadence
//! throughout. The quorum cell probes through `start_read`; the
//! snapshot cell probes through `start_snapshot_read`. Both cells
//! exhibit the same pinned-copy contention (the observability layer
//! records the blocked windows); only the read path differs.
//!
//! Expected shape — the acceptance bar:
//! * quorum cell: every probe inside the pinned window resolves
//!   `Unavailable` (a non-zero read-unavailability window);
//! * snapshot cell: **zero** `Unavailable`, every probe returns the
//!   committed baseline value (zero read-unavailability window), and
//!   no probe ever observes the undecided write.
//!
//! Output: a human table plus `BENCH_e17.json` (`--smoke` writes
//! `BENCH_e17_smoke.json` with a shorter pinned window so CI never
//! clobbers committed full-run numbers).

use qbc_cluster::{ClusterConfig, ObsConfig, ShardId, SimCluster};
use qbc_core::{ProtocolKind, WriteSet};
use qbc_db::ReadResult;
use qbc_simnet::{Duration, Time};
use qbc_votes::ItemId;
use std::fmt::Write as _;

/// Ticks between consecutive probe reads of the pinned item.
const PROBE_INTERVAL: u64 = 50;
/// The in-doubt transaction is submitted at this virtual time.
const PIN_START: u64 = 200;

/// One replica group, three sites, one vote per copy, r = w = 2 — the
/// paper's running example shape — under plain 2PC, the protocol whose
/// coordinator crash actually blocks participants.
fn cfg(snapshot: bool) -> ClusterConfig {
    let base = ClusterConfig {
        shards: 1,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 8,
        read_quorum: 2,
        write_quorum: 2,
        protocol: ProtocolKind::TwoPhase,
        t_bound: Duration(10),
        seed: 17,
        ..Default::default()
    }
    .with_obs(ObsConfig::on());
    if snapshot {
        base.with_snapshot_reads(4)
    } else {
        base
    }
}

struct Cell {
    read_path: &'static str,
    probes: u64,
    success: u64,
    unavailable: u64,
    /// Probe cadence × unavailable probes: the measured span of virtual
    /// time during which this read path could not answer.
    unavailable_window_ticks: u64,
    /// Probes that observed anything other than the committed baseline
    /// value (must stay zero on both paths: the undecided write is
    /// never visible).
    dirty: u64,
    committed: u64,
    aborted: u64,
    /// Sum of the observer's pinned-copy durations — evidence the
    /// contention was real and identical across cells.
    pinned_copy_ticks: u64,
    blocked_windows: u64,
    snapshot_reads_total: u64,
    snapshot_reads_local: u64,
    virtual_ticks: u64,
}

/// Runs one cell: baseline commit, in-doubt 2PC transaction pinning the
/// item for `pin_len` ticks, probe reads at `PROBE_INTERVAL` throughout
/// the pinned window, then coordinator recovery and full settlement.
fn run_cell(snapshot: bool, pin_len: u64) -> Cell {
    let mut c = SimCluster::new(cfg(snapshot));
    let item = ItemId(0);

    // Baseline: a committed value installed on every copy.
    let h1 = c.submit_at(Time(0), WriteSet::new([(item, 41)]));
    assert_eq!(
        c.await_decision(&h1, Time(5_000)),
        Some(qbc_core::Decision::Commit),
        "baseline write must commit"
    );
    c.run_to_quiescence(1_000_000);
    assert!(
        c.now() < Time(PIN_START),
        "baseline settlement overran the pin start"
    );

    // The in-doubt transaction: its 2PC coordinator crashes between
    // collecting yes-votes and delivering the decision, so the
    // surviving participants hold the item's copies pinned (blocked,
    // in the paper's sense) until the coordinator returns.
    let h2 = c.submit_at(Time(PIN_START), WriteSet::new([(item, 42)]));
    let crashed = h2.coordinator;
    c.sim_mut().schedule_crash(Time(PIN_START + 6), crashed);
    c.sim_mut()
        .schedule_recover(Time(PIN_START + pin_len), crashed);

    // Probe through the live sites only (alternating), via direct
    // scheduled calls: the round-robin front-end would aim a third of
    // the probes at the crashed coordinator.
    let live: Vec<_> = c
        .map()
        .sites_of(ShardId(0))
        .into_iter()
        .filter(|&s| s != crashed)
        .collect();
    let (mut probes, mut success, mut unavailable, mut dirty) = (0u64, 0u64, 0u64, 0u64);
    let mut t = PIN_START + 50;
    let mut req_id = 9_000_000u64;
    while t + 100 <= PIN_START + pin_len {
        let site = live[(probes % live.len() as u64) as usize];
        let r = req_id;
        req_id += 1;
        if snapshot {
            c.sim_mut().schedule_call(Time(t), site, move |node, ctx| {
                node.start_snapshot_read(ctx, r, item);
            });
        } else {
            c.sim_mut().schedule_call(Time(t), site, move |node, ctx| {
                node.start_read(ctx, r, item);
            });
        }
        // Poll after the collection window but before the resolved
        // collector retires (the read tables are bounded).
        c.run_until(Time(t + 35));
        let res = if snapshot {
            c.sim().node(site).snap_read_result(r)
        } else {
            c.sim().node(site).read_result(r)
        };
        probes += 1;
        match res {
            Some(ReadResult::Success { value, .. }) => {
                success += 1;
                if value != 41 {
                    dirty += 1;
                }
            }
            Some(ReadResult::Unavailable) => unavailable += 1,
            other => panic!("probe at t={t} did not resolve in-window: {other:?}"),
        }
        t += PROBE_INTERVAL;
    }

    // Recovery and settlement: the healed cluster decides everything.
    for _ in 0..200 {
        if c.run_to_quiescence(10_000_000).drained() {
            break;
        }
    }
    let (metrics, violations) = c.metrics_and_violations();
    assert!(
        violations.is_empty() && c.engine_violations().is_empty(),
        "snapshot={snapshot}: atomicity violated"
    );
    assert_eq!(
        metrics.total_undecided(),
        0,
        "snapshot={snapshot}: the in-doubt transaction never resolved"
    );
    let obs = c.obs().expect("obs enabled").clone();
    let (snap_total, snap_local) = obs.snapshot_reads();
    Cell {
        read_path: if snapshot { "snapshot" } else { "quorum" },
        probes,
        success,
        unavailable,
        unavailable_window_ticks: unavailable * PROBE_INTERVAL,
        dirty,
        committed: metrics.total_committed(),
        aborted: metrics.total_aborted(),
        pinned_copy_ticks: obs.pin_time().sum(),
        blocked_windows: obs.blocked_window().count(),
        snapshot_reads_total: snap_total,
        snapshot_reads_local: snap_local,
        virtual_ticks: c.now().0,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pin_len = if smoke { 700 } else { 2_000 };

    println!("E17 — read availability under pinned copies: quorum vs snapshot reads");
    println!(
        "(1 shard x 3 sites, r=w=2, 2PC, coordinator in-doubt crash pinning the item \
         for {pin_len} ticks, probes every {PROBE_INTERVAL} ticks)\n"
    );
    println!(
        "{:<10} {:>7} {:>8} {:>12} {:>13} {:>6} {:>7} {:>6} {:>12} {:>9}",
        "read path",
        "probes",
        "success",
        "unavailable",
        "unavail ticks",
        "dirty",
        "commit",
        "abort",
        "pinned ticks",
        "blocked",
    );

    let cells = [run_cell(false, pin_len), run_cell(true, pin_len)];
    for cell in &cells {
        println!(
            "{:<10} {:>7} {:>8} {:>12} {:>13} {:>6} {:>7} {:>6} {:>12} {:>9}",
            cell.read_path,
            cell.probes,
            cell.success,
            cell.unavailable,
            cell.unavailable_window_ticks,
            cell.dirty,
            cell.committed,
            cell.aborted,
            cell.pinned_copy_ticks,
            cell.blocked_windows,
        );
    }
    println!();

    // Acceptance. Both cells ran the same schedule and saw the same
    // pinned-copy contention; the read paths diverge on availability.
    let (quorum, snap) = (&cells[0], &cells[1]);
    assert!(quorum.probes > 0 && quorum.probes == snap.probes);
    for cell in &cells {
        assert!(
            cell.blocked_windows > 0 && cell.pinned_copy_ticks as f64 >= pin_len as f64 * 0.8,
            "{}: the in-doubt crash did not produce a real pinned window",
            cell.read_path
        );
        assert_eq!(
            cell.dirty, 0,
            "{}: a probe observed the undecided write",
            cell.read_path
        );
    }
    assert!(
        quorum.unavailable > 0,
        "quorum control must show a read-unavailability window under pinned copies"
    );
    assert_eq!(
        snap.unavailable, 0,
        "snapshot reads must never be unavailable while the copies are merely pinned"
    );
    assert_eq!(snap.unavailable_window_ticks, 0);
    assert_eq!(snap.success, snap.probes);
    assert_eq!(
        snap.snapshot_reads_total, snap.probes,
        "the observer must count every snapshot read"
    );
    println!(
        "acceptance: quorum path unavailable for {} of {} probes ({} ticks); \
         snapshot path 0 of {} — OK",
        quorum.unavailable, quorum.probes, quorum.unavailable_window_ticks, snap.probes
    );

    let mut json = String::from(
        "{\n  \"bench\": \"e17_read_availability\",\n  \"unit\": \"virtual ticks\",\n",
    );
    let _ = write!(
        json,
        "  \"probe_interval\": {PROBE_INTERVAL},\n  \"pin_window_ticks\": {pin_len},\n  \"cells\": [\n"
    );
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"read_path\": \"{}\", \"probes\": {}, \"success\": {}, \"unavailable\": {}, \"unavailable_window_ticks\": {}, \"dirty\": {}, \"committed\": {}, \"aborted\": {}, \"pinned_copy_ticks\": {}, \"blocked_windows\": {}, \"snapshot_reads_total\": {}, \"snapshot_reads_local\": {}, \"virtual_ticks\": {}}}",
            cell.read_path,
            cell.probes,
            cell.success,
            cell.unavailable,
            cell.unavailable_window_ticks,
            cell.dirty,
            cell.committed,
            cell.aborted,
            cell.pinned_copy_ticks,
            cell.blocked_windows,
            cell.snapshot_reads_total,
            cell.snapshot_reads_local,
            cell.virtual_ticks,
        );
    }
    json.push_str("\n  ]\n}\n");
    let out = if smoke {
        "BENCH_e17_smoke.json"
    } else {
        "BENCH_e17.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
