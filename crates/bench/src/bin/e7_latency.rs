//! E7 — Figs. 1/2/9 and the §3.2/§5 speed claim: failure-free commit
//! latency and message counts per protocol, swept over cluster size.
//!
//! Expected shape: 2PC fastest (blocking); QC2 < QC1 ≤ 3PC among the
//! nonblocking protocols, because QC2's commit point needs only `r(x)`
//! PC-ACK votes of some item while QC1 needs `w(x)` of every item and
//! 3PC needs all acks.

use qbc_core::ProtocolKind;
use qbc_harness::latency::measure;
use qbc_harness::table::Table;

fn main() {
    println!("E7 — commit latency (virtual ticks, mean over 50 seeds) and messages");
    println!("single item replicated at all sites; delays uniform in [1, T=10]\n");

    for (r, w, label) in [(2u32, 6u32, "write-skewed r=2"), (3, 5, "balanced r=3")] {
        println!("--- 7 sites, {label}, w={w} ---");
        let mut t = Table::new(&["protocol", "client latency", "global latency", "messages"]);
        for p in ProtocolKind::ALL {
            // Skeen's site votes are chosen internally by `measure`
            // (majority); the per-item quorums apply to every protocol.
            let pt = measure(p, 7, r, w, 0..50);
            t.row(&[
                &p.name(),
                &format!("{:.1}", pt.coordinator_latency),
                &format!("{:.1}", pt.global_latency),
                &format!("{:.1}", pt.messages),
            ]);
        }
        println!("{t}");
    }

    println!("--- scaling: QC2 vs QC1 vs 3PC client latency by cluster size (r=2, w=n-1) ---");
    let mut t = Table::new(&["sites", "2PC", "3PC", "QC1+TP1", "QC2+TP2"]);
    for n in [4u32, 6, 8, 10, 12] {
        let row: Vec<String> = [
            ProtocolKind::TwoPhase,
            ProtocolKind::ThreePhase,
            ProtocolKind::QuorumCommit1,
            ProtocolKind::QuorumCommit2,
        ]
        .into_iter()
        .map(|p| format!("{:.1}", measure(p, n, 2, n - 1, 0..30).coordinator_latency))
        .collect();
        t.row_strings(std::iter::once(n.to_string()).chain(row).collect());
    }
    println!("{t}");

    let p2 = measure(ProtocolKind::TwoPhase, 7, 2, 6, 0..50).coordinator_latency;
    let p3 = measure(ProtocolKind::ThreePhase, 7, 2, 6, 0..50).coordinator_latency;
    let q1 = measure(ProtocolKind::QuorumCommit1, 7, 2, 6, 0..50).coordinator_latency;
    let q2 = measure(ProtocolKind::QuorumCommit2, 7, 2, 6, 0..50).coordinator_latency;
    println!(
        "\npaper expectation: 2PC < QC2 < QC1 <= 3PC -> {}",
        if p2 < q2 && q2 < q1 && q1 <= p3 + 1e-9 {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
