//! E15 — group-commit batching on a real fsync device.
//!
//! E13 showed the group-commit win on a *modeled* log device (virtual
//! time, `force_latency` ticks); this experiment re-measures it where
//! the cost is real: `qbc_storage::FileWal` forces are `fdatasync`
//! calls on actual segment files. Three sections:
//!
//! 1. **Device probe** — the raw latency of appending and syncing one
//!    small block, i.e. the price every WAL force pays. All other
//!    numbers are interpreted relative to this.
//! 2. **FileWal batching** — identical record streams forced one
//!    record per fsync vs batches of 8 and 64: records/sec and total
//!    forces. The per-flush (not per-record) cost structure the
//!    in-memory model *assumes* is demonstrated on hardware here.
//! 3. **Durable cluster** — a small `ThreadedCluster` running entirely
//!    on file-backed WALs (every site an OS thread, every force an
//!    fsync), per-record forcing vs group commit: committed
//!    transactions and forces paid.
//!
//! Output: a human table plus `BENCH_e15.json` (the `--smoke` mode
//! writes `BENCH_e15_smoke.json` so CI can never clobber committed
//! full-run numbers). `--assert-speedup` additionally asserts the
//! batching ratio (machine-dependent; meaningful only where a baseline
//! was recorded). Force-count assertions always run: batching must
//! reduce fsyncs regardless of hardware.

use qbc_cluster::{ClusterConfig, ThreadedCluster};
use qbc_core::{LogRecord, ProtocolKind, TxnId, TxnSpec, WriteSet};
use qbc_simnet::Duration;
use qbc_storage::{FileWal, FileWalConfig, TempDir, WalBackend};
use qbc_votes::ItemId;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A realistic record stream: the Voted/Decided pair every committing
/// participant forces, with a two-item spec.
fn record(k: u64) -> LogRecord {
    if k.is_multiple_of(2) {
        let spec = Arc::new(TxnSpec {
            id: TxnId(k / 2),
            coordinator: qbc_simnet::SiteId(0),
            writeset: WriteSet::new([
                (ItemId((k % 8) as u32), k as i64),
                (ItemId((k % 8) as u32 + 8), -(k as i64)),
            ]),
            participants: [0, 1, 2].map(qbc_simnet::SiteId).into_iter().collect(),
            protocol: ProtocolKind::QuorumCommit2,
            parent: None,
        });
        LogRecord::Voted { spec }
    } else {
        LogRecord::Decided {
            txn: TxnId(k / 2),
            decision: qbc_core::Decision::Commit,
            commit_version: Some(qbc_votes::Version(k)),
        }
    }
}

struct DeviceProbe {
    syncs: u64,
    mean_us: f64,
    min_us: f64,
    max_us: f64,
}

/// Appends and fdatasyncs `n` small blocks: the raw per-force price.
fn probe_device(n: u64) -> DeviceProbe {
    let dir = TempDir::new("e15-probe");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.path().join("probe"))
        .expect("open probe file");
    let block = [0x5Au8; 256];
    let mut lat = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let t = Instant::now();
        file.write_all(&block).expect("write");
        file.sync_data().expect("fsync");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let sum: f64 = lat.iter().sum();
    DeviceProbe {
        syncs: n,
        mean_us: sum / n as f64,
        min_us: lat.iter().cloned().fold(f64::INFINITY, f64::min),
        max_us: lat.iter().cloned().fold(0.0, f64::max),
    }
}

struct WalRun {
    batch: usize,
    records: u64,
    forces: u64,
    seconds: f64,
    records_per_sec: f64,
}

/// Forces `total` records through a fresh FileWal in batches of
/// `batch` (1 = the per-record policy).
fn run_filewal(total: u64, batch: usize) -> WalRun {
    let dir = TempDir::new("e15-wal");
    let mut wal: FileWal<LogRecord> =
        FileWal::open(FileWalConfig::new(dir.path())).expect("open wal");
    let t = Instant::now();
    let mut k = 0u64;
    while k < total {
        for _ in 0..batch.min((total - k) as usize) {
            wal.buffer(record(k));
            k += 1;
        }
        wal.force();
    }
    let seconds = t.elapsed().as_secs_f64();
    WalRun {
        batch,
        records: total,
        forces: wal.forces(),
        seconds,
        records_per_sec: total as f64 / seconds,
    }
}

struct ClusterRun {
    mode: &'static str,
    submitted: u64,
    committed: u64,
    undecided: u64,
    forces: u64,
    seconds: f64,
    committed_per_sec: f64,
}

/// A durable threaded cluster (2 shards × 3 sites, every WAL a real
/// file log with fsync): submit `txns` single-shard writesets (paced —
/// no-wait 2PL aborts everything under a zero-think-time flood), wait,
/// harvest.
fn run_cluster(txns: u64, group_commit: bool, pace_ms: u64, settle_ms: u64) -> ClusterRun {
    let dir = TempDir::new("e15-cluster");
    let mut cfg = ClusterConfig {
        t_bound: Duration(20), // ticks are ms on the threaded transport
        seed: 15,
        ..ClusterConfig::default()
    }
    .with_wal_dir(dir.path());
    if group_commit {
        cfg = cfg.with_group_commit();
    }
    let t = Instant::now();
    let mut cluster = ThreadedCluster::spawn(cfg, 1);
    for k in 0..txns {
        // Walk the whole item space (items 0-7 live in shard 0, 8-15 in
        // shard 1): consecutive submissions never collide, and a paced
        // stream keeps in-flight contention low.
        let item = ItemId((k % 16) as u32);
        cluster.submit(WriteSet::new([(item, k as i64)]));
        std::thread::sleep(std::time::Duration::from_millis(pace_ms));
    }
    std::thread::sleep(std::time::Duration::from_millis(settle_ms));
    let report = cluster.shutdown();
    let seconds = t.elapsed().as_secs_f64();
    assert_eq!(
        report.atomicity_violations,
        vec![],
        "durable cluster went inconsistent"
    );
    let m = &report.metrics;
    ClusterRun {
        mode: if group_commit {
            "group-commit"
        } else {
            "per-record"
        },
        submitted: txns,
        committed: m.total_committed(),
        undecided: m.total_undecided(),
        forces: m.shards.iter().map(|s| s.wal_forces).sum(),
        seconds,
        committed_per_sec: m.total_committed() as f64 / seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let assert_speedup = args.iter().any(|a| a == "--assert-speedup");

    println!("E15 — group-commit batching on a real fsync device\n");

    // 1. Device probe.
    let probe = probe_device(if smoke { 50 } else { 200 });
    println!(
        "device: {} appends+fdatasyncs, mean {:.1} us (min {:.1}, max {:.1})\n",
        probe.syncs, probe.mean_us, probe.min_us, probe.max_us
    );

    // 2. FileWal batching.
    let total = if smoke { 256 } else { 2048 };
    let runs: Vec<WalRun> = [1usize, 8, 64]
        .iter()
        .map(|&b| run_filewal(total, b))
        .collect();
    println!("FileWal, {total} records per policy (fsync on):");
    println!(
        "{:>6} {:>9} {:>8} {:>9} {:>12}",
        "batch", "records", "forces", "seconds", "records/s"
    );
    for r in &runs {
        println!(
            "{:>6} {:>9} {:>8} {:>9.3} {:>12.0}",
            r.batch, r.records, r.forces, r.seconds, r.records_per_sec
        );
    }
    let speedup = runs[2].records_per_sec / runs[0].records_per_sec;
    println!("batching speedup (64 vs 1): x{speedup:.2}\n");
    // Hardware-independent shape: batching must slash the fsync count.
    assert!(
        runs[2].forces * 8 <= runs[0].forces,
        "batch-64 must pay at most 1/8th the forces of per-record"
    );
    for r in &runs {
        assert!(r.records_per_sec > 0.0);
    }

    // 3. Durable threaded cluster.
    let (txns, pace, settle) = if smoke { (12, 5, 900) } else { (48, 15, 1500) };
    let plain = run_cluster(txns, false, pace, settle);
    let batched = run_cluster(txns, true, pace, settle);
    println!("durable ThreadedCluster (2x3 sites, file WALs, fsync on), {txns} txns:");
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>8} {:>9} {:>12}",
        "force policy", "submitted", "committed", "undecided", "forces", "seconds", "committed/s"
    );
    for r in [&plain, &batched] {
        println!(
            "{:>14} {:>9} {:>9} {:>9} {:>8} {:>9.2} {:>12.1}",
            r.mode, r.submitted, r.committed, r.undecided, r.forces, r.seconds, r.committed_per_sec
        );
    }
    assert!(plain.committed > 0 && batched.committed > 0);
    assert!(
        batched.forces < plain.forces,
        "group commit must pay fewer fsyncs ({} vs {})",
        batched.forces,
        plain.forces
    );
    println!(
        "force reduction: {} -> {} ({:.1} records/force batched)\n",
        plain.forces,
        batched.forces,
        (batched.committed as f64 * 4.0).max(1.0) / batched.forces as f64
    );

    if assert_speedup {
        assert!(
            speedup >= 1.5,
            "batch-64 should be >=1.5x per-record on a real device, got x{speedup:.2}"
        );
    }

    // JSON artifact.
    let mut json = String::from("{\n  \"bench\": \"e15_file_wal\",\n");
    let _ = writeln!(
        json,
        "  \"device\": {{\"syncs\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}, \"max_us\": {:.2}}},",
        probe.syncs, probe.mean_us, probe.min_us, probe.max_us
    );
    json.push_str("  \"filewal\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"batch\": {}, \"records\": {}, \"forces\": {}, \"seconds\": {:.4}, \"records_per_sec\": {:.0}}}",
            r.batch, r.records, r.forces, r.seconds, r.records_per_sec
        );
    }
    json.push_str("\n  ],\n  \"cluster\": [\n");
    for (i, r) in [&plain, &batched].iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"submitted\": {}, \"committed\": {}, \"undecided\": {}, \"forces\": {}, \"seconds\": {:.3}, \"committed_per_sec\": {:.1}}}",
            r.mode, r.submitted, r.committed, r.undecided, r.forces, r.seconds, r.committed_per_sec
        );
    }
    let _ = writeln!(
        json,
        "\n  ],\n  \"batching_speedup_64v1\": {speedup:.3}\n}}"
    );
    let out = if smoke {
        "BENCH_e15_smoke.json"
    } else {
        "BENCH_e15.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
