//! E14 — simulator hot-path throughput: events/sec and committed
//! transactions/sec of the deterministic cluster substrate.
//!
//! Where E13 measures a *protocol* win (group commit amortizing WAL
//! forces over virtual time), E14 measures the *implementation*: how
//! many simulator events and committed transactions per wall-clock
//! second the hot path sustains. Phase 1 of the paper's protocols ships
//! the full transaction spec to every participant, so per-message
//! allocation cost scales with fan-out; the `fanout_*` configurations
//! (one replica group, full replication, wide writesets under QC1) are
//! built to maximize that pressure, while `e13_group_commit` re-uses
//! E13's acceptance configuration for before/after comparability.
//!
//! Output: a human table plus `BENCH_e14.json` (written to the working
//! directory) with one record per configuration and speedup ratios
//! against the baked-in pre-refactor baseline (measured on the same
//! machine the refactor was developed on; ratios on other hardware are
//! indicative, absolute numbers are not comparable).
//!
//! Modes:
//! * default — full grid, asserts committed throughput > 0 everywhere;
//! * `--smoke` — one small configuration (CI);
//! * `--assert-speedup` — additionally asserts the acceptance ratios
//!   (>=1.5x on `e13_group_commit`, >=2x on `fanout_s12_c128`); only
//!   meaningful on the machine the baseline was recorded on.

use qbc_cluster::{ClusterConfig, SimCluster};
use qbc_core::{ProtocolKind, WriteSet};
use qbc_simnet::{Duration, Time};
use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark configuration.
struct BenchConfig {
    name: &'static str,
    cluster: ClusterConfig,
    clients: u32,
    txns_per_client: u32,
    items_per_txn: u32,
    think_time: u64,
    /// Pre-refactor committed-txns/sec on the reference machine
    /// (`None` until a baseline is recorded).
    baseline_committed_per_sec: Option<f64>,
    /// Pre-refactor events/sec on the reference machine.
    baseline_events_per_sec: Option<f64>,
}

/// A replication-heavy single-shard cluster: every site holds a copy of
/// every item, so a `VOTE-REQ` fans the full spec to all `sites`.
fn fanout_cluster(sites: u32, items: u32) -> ClusterConfig {
    ClusterConfig {
        shards: 1,
        sites_per_shard: sites,
        replication: sites,
        items_per_shard: items,
        read_quorum: sites / 2 + 1,
        write_quorum: sites / 2 + 1,
        protocol: ProtocolKind::QuorumCommit1,
        seed: 14,
        ..Default::default()
    }
}

/// E13's group-commit acceptance configuration (same shape and seed).
fn e13_cluster() -> ClusterConfig {
    ClusterConfig {
        shards: 4,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 48,
        seed: 13,
        force_latency: Duration(6),
        ..Default::default()
    }
    .with_group_commit()
}

fn grid() -> Vec<BenchConfig> {
    vec![
        BenchConfig {
            name: "e13_group_commit",
            cluster: e13_cluster(),
            clients: 64,
            txns_per_client: 300,
            items_per_txn: 2,
            think_time: 60,
            baseline_committed_per_sec: BASELINE_E13_COMMITTED,
            baseline_events_per_sec: BASELINE_E13_EVENTS,
        },
        BenchConfig {
            name: "fanout_s3_c16",
            cluster: fanout_cluster(3, 96),
            clients: 16,
            txns_per_client: 400,
            items_per_txn: 6,
            think_time: 80,
            baseline_committed_per_sec: None,
            baseline_events_per_sec: None,
        },
        BenchConfig {
            name: "fanout_s6_c64",
            cluster: fanout_cluster(6, 512),
            clients: 64,
            txns_per_client: 100,
            items_per_txn: 8,
            think_time: 60,
            baseline_committed_per_sec: None,
            baseline_events_per_sec: None,
        },
        BenchConfig {
            name: "fanout_s12_c128",
            cluster: fanout_cluster(12, 1280),
            clients: 128,
            txns_per_client: 50,
            items_per_txn: 10,
            think_time: 60,
            baseline_committed_per_sec: BASELINE_FANOUT_COMMITTED,
            baseline_events_per_sec: BASELINE_FANOUT_EVENTS,
        },
    ]
}

/// Pre-refactor baselines: best run of commit d7a756d + this bench,
/// measured interleaved with the refactored binary in one session on
/// the reference machine (so both saw the same machine conditions).
/// The pre-refactor hot path committed 3390/6400 (e13 config,
/// decision-latency self-conflicts) and 6400/6400 (fanout configs) —
/// identical counts and event totals to the refactored code, so
/// wall-clock rates are directly comparable.
const BASELINE_E13_COMMITTED: Option<f64> = Some(22_679.0);
const BASELINE_E13_EVENTS: Option<f64> = Some(799_500.0);
const BASELINE_FANOUT_COMMITTED: Option<f64> = Some(2_087.0);
const BASELINE_FANOUT_EVENTS: Option<f64> = Some(153_800.0);

/// One measured run.
struct RunResult {
    submitted: u64,
    committed: u64,
    events: u64,
    elapsed_s: f64,
    virtual_ticks: u64,
}

impl RunResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed_s
    }
    fn committed_per_sec(&self) -> f64 {
        self.committed as f64 / self.elapsed_s
    }
}

/// Runs the configuration `reps` times and keeps the fastest run (the
/// runs are deterministic, so events/committed are identical and only
/// wall-clock noise differs; the minimum is the least-noisy sample).
fn drive_best(cfg: &BenchConfig, reps: u32) -> RunResult {
    let mut best: Option<RunResult> = None;
    for _ in 0..reps {
        let r = drive_once(cfg);
        if let Some(b) = &best {
            assert_eq!(
                (b.events, b.committed),
                (r.events, r.committed),
                "{}: nondeterministic run",
                cfg.name
            );
        }
        if best.as_ref().is_none_or(|b| r.elapsed_s < b.elapsed_s) {
            best = Some(r);
        }
    }
    best.expect("reps > 0")
}

/// Deterministic submission schedule (no RNG): each client owns a
/// disjoint stripe of its shard's item space, so the measurement is
/// bounded by protocol throughput, not by no-wait-2PL conflict aborts.
fn drive_once(cfg: &BenchConfig) -> RunResult {
    let t0 = Instant::now();
    let mut cluster = SimCluster::new(cfg.cluster.clone());
    let shards = cluster.map().shards();
    let mut submitted = 0u64;
    for j in 0..cfg.txns_per_client {
        for c in 0..cfg.clients {
            let jitter = (c as u64).wrapping_mul(7) % cfg.think_time.max(1);
            let at = Time(j as u64 * cfg.think_time + jitter);
            let shard = qbc_cluster::ShardId(c % shards);
            let items = cluster.map().items_of(shard);
            let k = items.len() as u32;
            let stripe = (c / shards) * cfg.items_per_txn;
            let ws = WriteSet::new((0..cfg.items_per_txn.min(k)).map(|i| {
                (
                    items[((stripe + i) % k) as usize],
                    ((c as i64) << 32) | ((j as i64) << 16) | i as i64,
                )
            }));
            cluster.submit_at(at, ws);
            submitted += 1;
        }
    }
    for _ in 0..200 {
        if cluster.run_to_quiescence(5_000_000).drained() {
            break;
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64().max(1e-9);
    let metrics = cluster.metrics();
    RunResult {
        submitted,
        committed: metrics.total_committed(),
        events: cluster.sim().events_processed(),
        elapsed_s,
        virtual_ticks: cluster.now().0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let assert_speedup = args.iter().any(|a| a == "--assert-speedup");

    let configs = if smoke {
        vec![BenchConfig {
            name: "smoke_s3_c16",
            cluster: fanout_cluster(3, 12),
            clients: 16,
            txns_per_client: 4,
            items_per_txn: 4,
            think_time: 80,
            baseline_committed_per_sec: None,
            baseline_events_per_sec: None,
        }]
    } else {
        grid()
    };

    println!("E14 — simulator hot-path throughput (wall-clock)");
    println!(
        "{:<18} {:>6} {:>8} {:>10} {:>10} {:>11} {:>13} {:>13} {:>9}",
        "config",
        "sites",
        "clients",
        "submitted",
        "committed",
        "events",
        "events/s",
        "committed/s",
        "speedup"
    );

    let mut json = String::from("{\n  \"bench\": \"e14_sim_throughput\",\n  \"unit\": \"wall-clock seconds\",\n  \"configs\": [\n");
    let mut first = true;
    let mut failures: Vec<String> = Vec::new();
    // Warm caches/allocator before the first measured configuration.
    if !smoke {
        let _ = drive_once(&configs[0]);
    }
    let reps = if smoke { 1 } else { 5 };
    for cfg in &configs {
        let r = drive_best(cfg, reps);
        assert!(
            r.committed > 0,
            "{}: zero committed transactions — the hot path is broken",
            cfg.name
        );
        let speedup = cfg
            .baseline_committed_per_sec
            .map(|b| r.committed_per_sec() / b);
        println!(
            "{:<18} {:>6} {:>8} {:>10} {:>10} {:>11} {:>13.0} {:>13.0} {:>9}",
            cfg.name,
            cfg.cluster.total_sites(),
            cfg.clients,
            r.submitted,
            r.committed,
            r.events,
            r.events_per_sec(),
            r.committed_per_sec(),
            speedup.map_or("-".to_string(), |s| format!("x{s:.2}")),
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"sites\": {}, \"clients\": {}, \"submitted\": {}, \"committed\": {}, \"events\": {}, \"virtual_ticks\": {}, \"elapsed_s\": {:.4}, \"events_per_sec\": {:.0}, \"committed_per_sec\": {:.0}, \"baseline_committed_per_sec\": {}, \"baseline_events_per_sec\": {}, \"speedup_committed\": {}}}",
            cfg.name,
            cfg.cluster.total_sites(),
            cfg.clients,
            r.submitted,
            r.committed,
            r.events,
            r.virtual_ticks,
            r.elapsed_s,
            r.events_per_sec(),
            r.committed_per_sec(),
            cfg.baseline_committed_per_sec
                .map_or("null".into(), |b| format!("{b:.0}")),
            cfg.baseline_events_per_sec
                .map_or("null".into(), |b| format!("{b:.0}")),
            speedup.map_or("null".into(), |s| format!("{s:.2}")),
        );
        if assert_speedup {
            let bar = match cfg.name {
                "e13_group_commit" => Some(1.5),
                "fanout_s12_c128" => Some(2.0),
                _ => None,
            };
            if let (Some(bar), Some(s)) = (bar, speedup) {
                if s < bar {
                    failures.push(format!("{}: x{s:.2} < x{bar:.1}", cfg.name));
                }
            }
        }
    }
    json.push_str("\n  ]\n}\n");
    // The smoke run writes to its own file so it can never clobber the
    // committed full-grid baselines in BENCH_e14.json.
    let out = if smoke {
        "BENCH_e14_smoke.json"
    } else {
        "BENCH_e14.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    assert!(
        failures.is_empty(),
        "speedup acceptance failed: {failures:?}"
    );
}
