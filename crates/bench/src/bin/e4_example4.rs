//! E4 — Example 4: the same Fig. 3 failure under QC1 + Termination
//! Protocol 1. G1 and G3 both form *abort quorums* (per-item votes!),
//! so TR terminates there and releases its locks: x becomes readable in
//! G1 and y writable in G3, while G2 stays blocked.

use qbc_core::{ProtocolKind, TxnId};
use qbc_harness::paper::{example_catalog, fig3_scenario, ITEM_X, ITEM_Y, TR};
use qbc_harness::table::Table;
use qbc_simnet::SiteId;

fn main() {
    println!("E4 — Example 4: 3PC-shaped QC1 + TP1 under the Fig. 3 failure\n");

    let out = fig3_scenario(ProtocolKind::QuorumCommit1, 1).run();
    let v = out.verdict(TxnId(TR));

    let mut t = Table::new(&[
        "partition",
        "TR outcome",
        "x read",
        "x write",
        "y read",
        "y write",
    ]);
    let cat = example_catalog();
    let report = out.availability(&cat);
    for (i, comp) in out.live_components().iter().enumerate() {
        let any = *comp.iter().next().expect("non-empty");
        let outcome = if comp.iter().any(|s| v.aborted.contains(s)) {
            "ABORTED"
        } else if comp.iter().any(|s| v.committed.contains(s)) {
            "COMMITTED"
        } else {
            "BLOCKED"
        };
        let ax = report.at_site(any, ITEM_X).unwrap();
        let ay = report.at_site(any, ITEM_Y).unwrap();
        t.row(&[
            &format!("G{}", i + 1),
            &outcome,
            &ax.readable,
            &ax.writable,
            &ay.readable,
            &ay.writable,
        ]);
    }
    println!("{t}");

    let g1_x = report.at_site(SiteId(2), ITEM_X).unwrap();
    let g3_y = report.at_site(SiteId(6), ITEM_Y).unwrap();
    let g2_blocked = v.undecided.contains(&SiteId(4)) && v.undecided.contains(&SiteId(5));
    println!(
        "paper expectation: G1/G3 abort; x readable in G1; y updatable in G3; G2 blocked -> {}",
        if v.consistent && g1_x.readable && g3_y.writable && g2_blocked {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
