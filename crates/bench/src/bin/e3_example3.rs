//! E3 — Example 3 / Fig. 7: two termination coordinators race in one
//! healed partition under adversarial message loss. A participant that
//! answers prepares across the PC/PA wall (the "faulty" variant the
//! paper warns against) produces an inconsistent termination; the
//! correct mutual-ignore rule keeps the run safe.

use qbc_core::{FaultyMode, TxnId};
use qbc_harness::paper::{fig7_scenario, TR};
use qbc_harness::table::Table;

fn main() {
    println!("E3 — Example 3 (Fig. 7): the PC/PA mutual-ignore rule");
    println!("TR at s1 over x,y with copies at s2–s5 (r=2, w=3); s2↔s3 and s2↔s5 lost;\ncoordinator crash + partition {{s1,s2}}|{{s3,s4,s5}}, heal mid-election.\n");

    let mut t = Table::new(&["variant", "committed", "aborted", "consistent"]);
    for (label, mode) in [
        ("correct (Fig. 6 rule)", FaultyMode::Correct),
        ("faulty (answers across wall)", FaultyMode::AnswerAcrossWall),
    ] {
        let out = fig7_scenario(mode, 1).run();
        let v = out.verdict(TxnId(TR));
        t.row(&[
            &label,
            &format!("{:?}", v.committed),
            &format!("{:?}", v.aborted),
            &v.consistent,
        ]);
    }
    println!("{t}");
    let correct = fig7_scenario(FaultyMode::Correct, 1).run();
    let faulty = fig7_scenario(FaultyMode::AnswerAcrossWall, 1).run();
    println!(
        "paper expectation: faulty variant inconsistent, correct variant safe -> {}",
        if correct.verdict(TxnId(TR)).consistent && !faulty.verdict(TxnId(TR)).consistent {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
