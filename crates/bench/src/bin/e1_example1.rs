//! E1 — Example 1 / Fig. 3: Skeen's quorum protocol `[16]` blocks every
//! partition, making x and y inaccessible everywhere.

use qbc_core::{ProtocolKind, TxnId};
use qbc_harness::paper::{example_catalog, fig3_scenario, ITEM_X, ITEM_Y, TR};
use qbc_harness::table::Table;

fn main() {
    println!("E1 — Example 1 (Fig. 3): Skeen [16], Vc=5, Va=4, 8 unit-vote sites");
    println!("TR updates x (copies s1–s4) and y (copies s5–s8), r=2, w=3.");
    println!("Coordinator s1 crashes mid-prepare; partition G1/G2/G3.\n");

    let out = fig3_scenario(ProtocolKind::SkeenQuorum, 1).run();
    let v = out.verdict(TxnId(TR));

    let mut t = Table::new(&["partition", "members", "TR outcome"]);
    for (i, comp) in out.live_components().iter().enumerate() {
        let members: Vec<String> = comp.iter().map(|s| s.to_string()).collect();
        let outcome = if comp.iter().any(|s| v.committed.contains(s)) {
            "COMMITTED"
        } else if comp.iter().any(|s| v.aborted.contains(s)) {
            "ABORTED"
        } else {
            "BLOCKED"
        };
        t.row(&[&format!("G{}", i + 1), &members.join(","), &outcome]);
    }
    println!("{t}");

    let report = out.availability(&example_catalog());
    println!("Accessibility after termination (paper: x,y inaccessible everywhere):");
    println!("{report}");
    let x_anywhere = report.readable_somewhere(ITEM_X) || report.writable_somewhere(ITEM_X);
    let y_anywhere = report.readable_somewhere(ITEM_Y) || report.writable_somewhere(ITEM_Y);
    println!("x accessible anywhere: {x_anywhere}   y accessible anywhere: {y_anywhere}");
    println!(
        "\npaper expectation: TR blocked in all partitions, zero accessibility -> {}",
        if v.committed.is_empty() && v.aborted.is_empty() && !x_anywhere && !y_anywhere {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
