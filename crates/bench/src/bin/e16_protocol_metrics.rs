//! E16 — protocol-aware metrics: phase breakdown, blocking windows,
//! and the Gray & Lamport message/force comparison across protocols.
//!
//! Runs the *identical* deterministic submission schedule under each
//! commit protocol (2PC, 3PC, Skeen's quorum protocol, QC1, QC2, and
//! Paxos Commit), twice
//! per protocol: a fault-free cell and a coordinator-crash cell (one
//! site down mid-stream, recovered later). The observability layer
//! (`qbc-obs`) decomposes commit latency into vote / prepare / decide
//! phases, measures how long copies stay pinned by undecided
//! transactions and how long sites sit declared-blocked, and counts
//! every wire message and WAL force — the quantities Gray & Lamport's
//! "Consensus on Transaction Commit" uses to compare commit protocols.
//!
//! Output: a human table plus `BENCH_e16.json` with one record per
//! (protocol, cell), and `BENCH_e16_flightdump.txt` with a sample
//! flight-recorder dump from a crash cell (proof the ring captured the
//! failure timeline).
//!
//! Modes:
//! * default — full grid (120 txns per cell);
//! * `--smoke` — small grid (CI): fewer transactions, same cells,
//!   writes `BENCH_e16_smoke.json` / `BENCH_e16_flightdump_smoke.txt`.

use qbc_cluster::{ClusterConfig, ObsConfig, ShardId, SimCluster};
use qbc_core::{ProtocolKind, WriteSet};
use qbc_obs::LatencyHistogram;
use qbc_simnet::{Duration, SiteId, Time};
use std::fmt::Write as _;

const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::TwoPhase,
    ProtocolKind::ThreePhase,
    ProtocolKind::SkeenQuorum,
    ProtocolKind::QuorumCommit1,
    ProtocolKind::QuorumCommit2,
    ProtocolKind::PaxosCommit,
];

/// One replica group, three sites, one vote per copy, r = w = 2 — the
/// paper's running example shape, small enough that a single crash
/// leaves a live quorum.
fn cluster(protocol: ProtocolKind) -> ClusterConfig {
    ClusterConfig {
        shards: 1,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 64,
        read_quorum: 2,
        write_quorum: 2,
        protocol,
        t_bound: Duration(10),
        seed: 16,
        ..Default::default()
    }
    .with_obs(ObsConfig::on())
}

struct Cell {
    protocol: ProtocolKind,
    crash: bool,
    submitted: u64,
    rejected: u64,
    committed: u64,
    aborted: u64,
    msgs_sent: u64,
    wal_forces: u64,
    vote: LatencyHistogram,
    prepare: LatencyHistogram,
    decide: LatencyHistogram,
    commit: LatencyHistogram,
    pin: LatencyHistogram,
    blocked: LatencyHistogram,
    unavailable_ticks: u64,
    unavailable_windows: u64,
    dumps: Vec<(String, String)>,
    virtual_ticks: u64,
}

/// Runs one (protocol, cell) on the shared deterministic schedule:
/// `clients` striped writers over disjoint item stripes (no RNG, no
/// conflict aborts — differences between cells are protocol cost, not
/// workload noise). The crash cell takes one site down mid-stream.
fn run_cell(protocol: ProtocolKind, crash: bool, clients: u32, txns_per_client: u32) -> Cell {
    let mut cluster = SimCluster::new(cluster(protocol));
    let items = cluster.map().items_of(ShardId(0));
    let think = 40u64;
    let per_txn = 2usize;
    let mut submitted = 0u64;
    for j in 0..txns_per_client {
        for c in 0..clients {
            let jitter = (c as u64).wrapping_mul(7) % think;
            let at = Time(10 + j as u64 * think + jitter);
            let stripe = c as usize * per_txn;
            let ws = WriteSet::new((0..per_txn).map(|i| {
                (
                    items[(stripe + i) % items.len()],
                    ((c as i64) << 32) | ((j as i64) << 16) | i as i64,
                )
            }));
            cluster.submit_at(at, ws);
            submitted += 1;
        }
    }
    if crash {
        // One site (a round-robin coordinator) dies mid-stream and
        // returns much later: in-flight transactions it coordinated
        // must be terminated by the survivors (or block until it
        // returns, depending on the protocol).
        let mid = Time(10 + (txns_per_client as u64 / 2) * think + 5);
        cluster.sim_mut().schedule_crash(mid, SiteId(0));
        cluster
            .sim_mut()
            .schedule_recover(Time(mid.0 + 2_000), SiteId(0));
    }
    for _ in 0..200 {
        if cluster.run_to_quiescence(10_000_000).drained() {
            break;
        }
    }
    let now = cluster.now();
    let (metrics, violations) = cluster.metrics_and_violations();
    assert!(
        violations.is_empty() && cluster.engine_violations().is_empty(),
        "{protocol:?} crash={crash}: atomicity violated"
    );
    assert_eq!(
        metrics.total_undecided(),
        0,
        "{protocol:?} crash={crash}: schedule did not fully terminate"
    );
    // Submissions routed to the crashed coordinator while it was down
    // are rejected (the request dies with the site, nothing is ever
    // logged); the decided cells below compare only real runs.
    let rejected: u64 = metrics.shards.iter().map(|s| s.rejected).sum();
    let obs = cluster.obs().expect("obs enabled").clone();
    let phases = obs.phase_hists();
    Cell {
        protocol,
        crash,
        submitted,
        rejected,
        committed: metrics.total_committed(),
        aborted: metrics.total_aborted(),
        msgs_sent: obs.msgs_sent(),
        wal_forces: obs.wal_forces(),
        vote: phases.vote,
        prepare: phases.prepare,
        decide: phases.decide,
        commit: phases.commit,
        pin: obs.pin_time(),
        blocked: obs.blocked_window(),
        unavailable_ticks: obs.unavailable_total(now).0,
        unavailable_windows: obs.unavailable_windows(),
        dumps: obs.dumps(),
        virtual_ticks: now.0,
    }
}

fn hist_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"sum_ticks\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
        h.count(),
        h.sum(),
        h.p50().0,
        h.p99().0,
        h.max().0
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, txns_per_client) = if smoke { (3, 6) } else { (6, 20) };

    println!("E16 — protocol metrics: phase breakdown, blocking, messages, forces");
    println!(
        "(1 shard x 3 sites, r=w=2, {clients} clients x {txns_per_client} txns, \
         identical schedule per cell)\n"
    );
    println!(
        "{:<16} {:<6} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "protocol",
        "cell",
        "commit",
        "abort",
        "msgs",
        "forces",
        "vote p99",
        "e2e p50",
        "e2e p99",
        "blocked",
        "pinned",
    );

    let mut cells = Vec::new();
    for protocol in PROTOCOLS {
        for crash in [false, true] {
            let cell = run_cell(protocol, crash, clients, txns_per_client);
            println!(
                "{:<16} {:<6} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>9} {:>7}x{:<3} {:>6}x{:<3}",
                format!("{:?}", cell.protocol),
                if crash { "crash" } else { "happy" },
                cell.committed,
                cell.aborted,
                cell.msgs_sent,
                cell.wal_forces,
                cell.vote.p99().0,
                cell.commit.p50().0,
                cell.commit.p99().0,
                cell.blocked.sum(),
                cell.blocked.count(),
                cell.pin.sum(),
                cell.pin.count(),
            );
            cells.push(cell);
        }
    }
    println!();

    // Acceptance: every cell decided its whole schedule; the fault-free
    // cells never declared a blocked window; per-protocol message and
    // force counts are live (the comparison columns mean something).
    let mut crash_dump: Option<&(String, String)> = None;
    for cell in &cells {
        assert!(
            cell.committed + cell.aborted + cell.rejected == cell.submitted,
            "{:?} crash={}: {} of {} unaccounted for",
            cell.protocol,
            cell.crash,
            cell.submitted - cell.committed - cell.aborted - cell.rejected,
            cell.submitted
        );
        assert!(
            cell.crash || cell.rejected == 0,
            "{:?} happy cell rejected submissions",
            cell.protocol
        );
        assert!(cell.committed > 0, "{:?}: nothing committed", cell.protocol);
        assert!(cell.msgs_sent > 0 && cell.wal_forces > 0);
        assert_eq!(
            cell.commit.count(),
            cell.committed,
            "{:?}: phase coverage",
            cell.protocol
        );
        if !cell.crash {
            assert_eq!(
                cell.blocked.count(),
                0,
                "{:?} happy cell declared blocked",
                cell.protocol
            );
        } else if crash_dump.is_none() {
            crash_dump = cell.dumps.first();
        }
    }
    let crash_dump = crash_dump.expect("a crash cell must have auto-dumped its flight recorder");
    assert!(!crash_dump.1.is_empty(), "flight dump is empty");

    let mut json = String::from("{\n  \"bench\": \"e16_protocol_metrics\",\n  \"unit\": \"virtual ticks\",\n  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"protocol\": \"{:?}\", \"cell\": \"{}\", \"submitted\": {}, \"rejected\": {}, \"committed\": {}, \"aborted\": {}, \"virtual_ticks\": {}, \"msgs_sent\": {}, \"msgs_per_commit\": {:.2}, \"wal_forces\": {}, \"forces_per_commit\": {:.2}, \"phase_vote\": {}, \"phase_prepare\": {}, \"phase_decide\": {}, \"commit_latency\": {}, \"pin_time\": {}, \"blocked_window\": {}, \"read_unavailable_ticks\": {}, \"read_unavailable_windows\": {}, \"flight_dumps\": {}}}",
            cell.protocol,
            if cell.crash { "coordinator_crash" } else { "happy" },
            cell.submitted,
            cell.rejected,
            cell.committed,
            cell.aborted,
            cell.virtual_ticks,
            cell.msgs_sent,
            cell.msgs_sent as f64 / cell.committed as f64,
            cell.wal_forces,
            cell.wal_forces as f64 / cell.committed as f64,
            hist_json(&cell.vote),
            hist_json(&cell.prepare),
            hist_json(&cell.decide),
            hist_json(&cell.commit),
            hist_json(&cell.pin),
            hist_json(&cell.blocked),
            cell.unavailable_ticks,
            cell.unavailable_windows,
            cell.dumps.len(),
        );
    }
    json.push_str("\n  ]\n}\n");

    let (json_out, dump_out) = if smoke {
        ("BENCH_e16_smoke.json", "BENCH_e16_flightdump_smoke.txt")
    } else {
        ("BENCH_e16.json", "BENCH_e16_flightdump.txt")
    };
    std::fs::write(json_out, &json).unwrap_or_else(|e| panic!("write {json_out}: {e}"));
    let dump_text = format!("reason: {}\n\n{}", crash_dump.0, crash_dump.1);
    std::fs::write(dump_out, &dump_text).unwrap_or_else(|e| panic!("write {dump_out}: {e}"));
    println!("wrote {json_out} and {dump_out}");
}
