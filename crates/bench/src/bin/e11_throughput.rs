//! E11 (extension) — transaction-stream throughput per protocol, with
//! and without a coordinator crash mid-stream. Supports the paper's
//! introduction: concurrent execution provides throughput, and the
//! commit/termination protocol determines how much of it survives
//! failures.

use qbc_core::ProtocolKind;
use qbc_harness::table::Table;
use qbc_harness::workload::{run_workload, WorkloadConfig};

fn main() {
    println!("E11 — workload throughput: 40 transactions, 8 sites, 6 items × 4 copies");
    println!("(r=2, w=3, 2 items per transaction, one submission per 120 ticks)\n");

    for crash in [false, true] {
        println!(
            "--- {} ---",
            if crash {
                "with coordinator crash mid-stream (recovers +600 ticks)"
            } else {
                "failure-free"
            }
        );
        let mut t = Table::new(&[
            "protocol",
            "committed",
            "aborted",
            "undecided",
            "mean latency",
            "msgs/txn",
            "commits/kilotick",
        ]);
        for p in ProtocolKind::ALL {
            let cfg = WorkloadConfig {
                protocol: p,
                crash_mid_stream: crash,
                ..Default::default()
            };
            let r = run_workload(&cfg);
            assert!(r.consistent, "{} went inconsistent", p.name());
            t.row(&[
                &p.name(),
                &r.committed,
                &r.aborted,
                &r.undecided,
                &format!("{:.1}", r.mean_commit_latency),
                &format!("{:.1}", r.messages_per_txn),
                &format!("{:.2}", r.throughput),
            ]);
        }
        println!("{t}");
    }
    println!("expected shape: 2PC cheapest messages and latency; QC2 fastest of the");
    println!("nonblocking protocols; the crash dents in-flight transactions only.");
}
