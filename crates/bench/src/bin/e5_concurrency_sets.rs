//! E5 — Fig. 4: the concurrency sets of partition states, re-derived by
//! exhaustive enumeration of interrupted 3PC runs.

use qbc_core::partition_state::{paper_concurrency_claims, Ps};
use qbc_harness::concurrency::enumerate;
use qbc_harness::table::Table;

fn main() {
    println!("E5 — Fig. 4: partition states PS1–PS6 and their concurrency sets");
    println!("(enumerating interruption time × partition shape × vote script × prepare loss)\n");

    let rel = enumerate();

    let mut t = Table::new(&["PS", "observed concurrent with"]);
    for a in Ps::ALL {
        let with: Vec<String> = Ps::ALL
            .into_iter()
            .filter(|b| rel.pairs.contains(&(a, *b)))
            .map(|b| b.to_string())
            .collect();
        t.row(&[&a, &with.join(", ")]);
    }
    println!("{t}");

    println!("paper-stated relations and their witnesses:");
    let mut t = Table::new(&["claim", "status", "witness"]);
    for (a, b) in paper_concurrency_claims() {
        let status = if rel.pairs.contains(&(*a, *b)) {
            "observed"
        } else {
            "MISSING"
        };
        let witness = rel.witnesses.get(&(*a, *b)).cloned().unwrap_or_default();
        t.row(&[&format!("{a} ∈ C({b})"), &status, &witness]);
    }
    println!("{t}");
    println!(
        "fatal pair PS2/PS5 observed (the impossibility argument's core): {}",
        rel.pairs.contains(&(Ps::Ps2, Ps::Ps5))
    );
    println!(
        "\npaper expectation: all stated relations observed -> {}",
        if rel.covers_paper_claims() {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
