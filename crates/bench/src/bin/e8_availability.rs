//! E8 — the paper's central availability claim, quantified: across
//! random coordinator-crash + partition schedules, TP1/TP2 leave more
//! `(partition, item)` pairs readable/writable and fewer runs blocked
//! than Skeen's site-vote protocol; 3PC never blocks but violates
//! atomicity; 2PC blocks the most.

use qbc_core::ProtocolKind;
use qbc_harness::montecarlo::{sweep, MonteCarloConfig};
use qbc_harness::table::Table;

fn main() {
    println!("E8 — Monte-Carlo availability under coordinator crash + partition");
    let runs = 300;

    for components in [2usize, 3, 4] {
        let cfg = MonteCarloConfig {
            components,
            ..Default::default()
        };
        println!(
            "\n--- {runs} runs, 8 sites, 2 items × 4 copies (r=2, w=3), {components}-way partition ---"
        );
        let mut t = Table::new(&[
            "protocol",
            "blocked runs",
            "terminated runs",
            "violations",
            "readable frac",
            "writable frac",
        ]);
        for p in ProtocolKind::ALL {
            let a = sweep(p, &cfg, runs);
            t.row(&[
                &p.name(),
                &format!("{:.1}%", a.blocked_rate * 100.0),
                &format!("{:.1}%", a.decided_rate * 100.0),
                &format!("{:.1}%", a.violation_rate * 100.0),
                &format!("{:.3}", a.mean_readable),
                &format!("{:.3}", a.mean_writable),
            ]);
        }
        println!("{t}");
    }

    let cfg = MonteCarloConfig {
        components: 3,
        ..Default::default()
    };
    let skeen = sweep(ProtocolKind::SkeenQuorum, &cfg, runs);
    let tp1 = sweep(ProtocolKind::QuorumCommit1, &cfg, runs);
    let tp2 = sweep(ProtocolKind::QuorumCommit2, &cfg, runs);
    let p3 = sweep(ProtocolKind::ThreePhase, &cfg, runs);
    println!(
        "\npaper expectations: TP1/TP2 ≥ Skeen on availability ({:.3}/{:.3} vs {:.3});",
        tp1.mean_readable, tp2.mean_readable, skeen.mean_readable
    );
    println!(
        "  correct protocols never violate (TP1 {:.1}%, TP2 {:.1}%, Skeen {:.1}%); 3PC violates under partitions ({:.1}%)",
        tp1.violation_rate * 100.0,
        tp2.violation_rate * 100.0,
        skeen.violation_rate * 100.0,
        p3.violation_rate * 100.0
    );
    let ok = tp1.mean_readable >= skeen.mean_readable
        && tp2.mean_readable >= skeen.mean_readable
        && tp1.violation_rate == 0.0
        && tp2.violation_rate == 0.0
        && skeen.violation_rate == 0.0
        && p3.violation_rate > 0.0;
    println!("-> {}", if ok { "REPRODUCED" } else { "MISMATCH" });
}
