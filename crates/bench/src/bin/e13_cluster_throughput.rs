//! E13 — cluster throughput under group commit.
//!
//! Gray & Lamport ("Consensus on Transaction Commit") observe that
//! commit cost is dominated by log forces and message rounds. This
//! experiment drives the sharded cluster runtime with many concurrent
//! client sessions over a log device whose force costs real (virtual)
//! time, and compares per-record forcing against group-commit batching.
//!
//! Expected shape: at low concurrency the two are close (little to
//! batch); at high concurrency the serial log device saturates under
//! per-record forcing while group commit amortizes one force over many
//! records, keeping committed throughput up — the acceptance bar is
//! **≥ 2× committed transactions per kilotick at 64 clients**.

use qbc_cluster::ClusterConfig;
use qbc_harness::cluster_load::{run_cluster_load, ClusterLoadConfig, ClusterLoadReport};
use qbc_harness::table::Table;
use qbc_simnet::Duration;

const FORCE_LATENCY: u64 = 6;

fn load(clients: u32, think_time: u64, group_commit: bool) -> ClusterLoadConfig {
    let mut cluster = ClusterConfig {
        shards: 4,
        sites_per_shard: 3,
        replication: 3,
        items_per_shard: 48,
        seed: 13,
        force_latency: Duration(FORCE_LATENCY),
        ..Default::default()
    };
    if group_commit {
        cluster = cluster.with_group_commit();
    }
    ClusterLoadConfig {
        cluster,
        clients,
        txns_per_client: 4,
        items_per_txn: 2,
        think_time,
        seed: 13,
        ..Default::default()
    }
}

fn row(t: &mut Table, name: &str, r: &ClusterLoadReport) {
    assert!(r.consistent, "{name}: cluster went inconsistent");
    t.row(&[
        &name,
        &r.submitted,
        &r.committed,
        &r.aborted,
        &r.undecided,
        &format!("{:.1}", r.mean_latency),
        &r.p50_latency,
        &r.p99_latency,
        &r.wal_forces,
        &format!("{:.2}", r.committed_per_kilotick),
    ]);
}

fn main() {
    println!("E13 — sharded cluster throughput: per-record forcing vs group commit");
    println!(
        "(4 shards x 3 sites, 48 items/shard, QC2, force latency {FORCE_LATENCY} ticks, \
         4 txns/client, 2 items/txn)\n"
    );

    let mut ratio_at_64 = 0.0;
    // Think time shrinks as concurrency grows: each row offers a harder
    // aggregate load, not just more clients submitting the same stream.
    for (clients, think_time) in [(8u32, 200u64), (64, 60), (96, 60)] {
        println!("--- {clients} concurrent clients (think {think_time}) ---");
        let mut t = Table::new(&[
            "force policy",
            "submitted",
            "committed",
            "aborted",
            "undecided",
            "mean lat",
            "p50",
            "p99",
            "forces",
            "commits/kilotick",
        ]);
        let plain = run_cluster_load(&load(clients, think_time, false));
        let batched = run_cluster_load(&load(clients, think_time, true));
        row(&mut t, "per-record", &plain);
        row(&mut t, "group-commit", &batched);
        println!("{t}");
        let ratio = if plain.committed_per_kilotick > 0.0 {
            batched.committed_per_kilotick / plain.committed_per_kilotick
        } else {
            f64::INFINITY
        };
        let batching = batched
            .metrics
            .shards
            .iter()
            .map(|s| s.records_per_force())
            .fold(0.0f64, f64::max);
        println!(
            "speedup x{ratio:.2}   (batched: up to {batching:.1} records/force, \
             forces {} -> {})\n",
            plain.wal_forces, batched.wal_forces
        );
        if clients == 64 {
            ratio_at_64 = ratio;
        }
    }

    assert!(
        ratio_at_64 >= 2.0,
        "group commit must deliver >=2x committed throughput at 64 clients, got x{ratio_at_64:.2}"
    );
    println!("acceptance: group commit x{ratio_at_64:.2} >= x2.0 at 64 clients — OK");
}
