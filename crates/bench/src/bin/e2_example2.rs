//! E2 — Example 2: the same Fig. 3 failure under 3PC's site-failure-only
//! termination protocol terminates TR *inconsistently*: G2 (which holds
//! the PC witness s5) commits while G1 and G3 abort.

use qbc_core::{ProtocolKind, TxnId};
use qbc_harness::paper::{fig3_scenario, TR};
use qbc_harness::table::Table;

fn main() {
    println!("E2 — Example 2: 3PC + its termination protocol under the Fig. 3 failure");
    println!("(the 3PC termination rule: any PC or C in the partition => commit; else abort)\n");

    let out = fig3_scenario(ProtocolKind::ThreePhase, 1).run();
    let v = out.verdict(TxnId(TR));

    let mut t = Table::new(&["site", "decision"]);
    for (site, node) in out.sim.nodes() {
        let d = node
            .decision(TxnId(TR))
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        t.row(&[&site, &d]);
    }
    println!("{t}");
    println!("committed at {:?}, aborted at {:?}", v.committed, v.aborted);
    println!(
        "\npaper expectation: G2 = {{s4,s5}} commits, G1/G3 abort — INCONSISTENT -> {}",
        if !v.consistent
            && v.committed.contains(&qbc_simnet::SiteId(4))
            && v.committed.contains(&qbc_simnet::SiteId(5))
        {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
