//! E6 — Fig. 6: state-transition conformance. Randomized fault-injected
//! runs across all protocols; every participant state transition is
//! audited against the Fig. 6 relation (notably: no PC↔PA).

use qbc_core::{FaultyMode, LocalState, ProtocolKind, TxnId};
use qbc_harness::audit::TransitionAudit;
use qbc_harness::montecarlo::{random_failure_scenario, MonteCarloConfig};
use qbc_harness::paper::{fig3_scenario, fig7_scenario, TR};
use qbc_harness::table::Table;

fn main() {
    println!("E6 — Fig. 6: state-transition diagram conformance audit\n");

    let mut audit = TransitionAudit::default();

    // Randomized failure runs across every protocol.
    let cfg = MonteCarloConfig {
        heal_at: Some(1_500),
        recover_at: Some(1_800),
        run_until: 6_000,
        ..Default::default()
    };
    for p in ProtocolKind::ALL {
        for seed in 0..40u64 {
            audit.absorb(&random_failure_scenario(p, &cfg, seed).run(), TxnId(1));
        }
    }
    // Plus the deterministic paper scenarios and the correct Fig. 7 run.
    for p in ProtocolKind::ALL {
        audit.absorb(&fig3_scenario(p, 1).run(), TxnId(TR));
    }
    audit.absorb(&fig7_scenario(FaultyMode::Correct, 1).run(), TxnId(TR));

    let mut t = Table::new(&["transition", "count", "legal per Fig. 6"]);
    for ((from, to), n) in &audit.counts {
        t.row(&[
            &format!("{from} -> {to}"),
            n,
            &LocalState::legal_transition(*from, *to),
        ]);
    }
    println!("{t}");
    println!(
        "illegal transitions in correct-mode runs: {}",
        audit.illegal.len()
    );

    // The faulty variant must, by contrast, cross the PC/PA wall.
    let mut faulty = TransitionAudit::default();
    faulty.absorb(
        &fig7_scenario(FaultyMode::AnswerAcrossWall, 1).run(),
        TxnId(TR),
    );
    println!(
        "faulty variant crosses the PC/PA wall (expected true): {}",
        faulty.crossed_the_wall()
    );
    println!(
        "\npaper expectation: zero illegal transitions under the correct rule -> {}",
        if audit.clean() && faulty.crossed_the_wall() {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
