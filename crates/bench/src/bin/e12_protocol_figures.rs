//! E12 — Figs. 1, 2 and 9 regenerated as *executed* message sequence
//! charts: one failure-free transaction per protocol on four sites,
//! every delivered protocol message drawn in delivery order.

use qbc_core::{ProtocolKind, WriteSet};
use qbc_harness::msc::render_filtered;
use qbc_harness::scenario::Scenario;
use qbc_simnet::{sites, SiteId, Time};
use qbc_votes::{CatalogBuilder, ItemId};

const PROTO_LABELS: [&str; 9] = [
    "VOTE-REQ",
    "VOTE-YES",
    "VOTE-NO",
    "PREPARE-TO-COMMIT",
    "PC-ACK",
    "PREPARE-TO-ABORT",
    "PA-ACK",
    "COMMIT",
    "ABORT",
];

/// `variable_delays` staggers message arrivals (uniform `[2, T]`,
/// fixed seed) so the quorum protocols' early commit point — "the
/// coordinator can send out commit commands before all the PC-ACKs are
/// received" (Fig. 9) — becomes visible in the chart: COMMIT rows
/// appear before the final PC-ACK rows.
fn chart_for(protocol: ProtocolKind, variable_delays: bool) -> String {
    let catalog = CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(4))
        .quorums(2, 3)
        .build()
        .unwrap();
    let mut s = Scenario::new(format!("fig/{}", protocol.name()), catalog, sites(4)).submit(
        Time(0),
        SiteId(0),
        1,
        WriteSet::new([(ItemId(0), 1)]),
        protocol,
    );
    if variable_delays {
        s.seed = 11;
    } else {
        s = s.constant_delays();
    }
    if protocol == ProtocolKind::SkeenQuorum {
        s.site_votes = Some(qbc_core::SiteVotes::uniform(sites(4), 3, 2));
    }
    s.run_until = Time(500);
    let out = s.run();
    render_filtered(out.sim.trace(), &sites(4), &PROTO_LABELS)
}

fn main() {
    println!("E12 — the protocol diagrams (Figs. 1, 2, 9), regenerated from runs");
    println!("(four sites, one item with copies everywhere, r=2, w=3, constant T)\n");
    for (p, variable, fig) in [
        (ProtocolKind::TwoPhase, false, "Fig. 1 — two-phase commit"),
        (
            ProtocolKind::ThreePhase,
            false,
            "Fig. 2 — three-phase commit",
        ),
        (
            ProtocolKind::QuorumCommit1,
            true,
            "Fig. 9 — quorum commit protocol 1 (commit at w(x) acks; staggered delays)",
        ),
        (
            ProtocolKind::QuorumCommit2,
            true,
            "Fig. 9 — quorum commit protocol 2 (commit at r(x) acks; staggered delays)",
        ),
    ] {
        println!("--- {fig} ---");
        println!("{}", chart_for(p, variable));
    }
    println!("note: s0 coordinates; its self-addressed messages are handled locally");
    println!("and do not appear on the wire — exactly as the paper draws them.");
}
