//! E10 — ablation of the PC/PA mutual-ignore rule (Example 3
//! generalized): run the Fig. 7 two-coordinator race across seeds and
//! jittered delays, with the rule on and off, and count atomicity
//! violations.

use qbc_core::{FaultyMode, TxnId};
use qbc_harness::paper::{fig7_scenario, TR};
use qbc_harness::table::Table;

fn run_rate(mode: FaultyMode, jitter: bool, seeds: u32) -> (u32, u32) {
    let mut violations = 0;
    let mut undecided = 0;
    for seed in 0..seeds {
        let mut s = fig7_scenario(mode, seed as u64);
        if jitter {
            // Jitter: delays uniform in [8, 10] instead of constant 10 —
            // shifts the race interleavings across seeds.
            s.min_delay = qbc_simnet::Duration(8);
        }
        let out = s.run();
        let v = out.verdict(TxnId(TR));
        if !v.consistent {
            violations += 1;
        }
        if !v.undecided.is_empty() {
            undecided += 1;
        }
    }
    (violations, undecided)
}

fn main() {
    println!("E10 — ablation: participants answering prepares across the PC/PA wall");
    println!("Fig. 7 two-coordinator race, 60 seeds, constant and jittered delays\n");

    let seeds = 60;
    let mut t = Table::new(&["variant", "delays", "violations", "undecided runs"]);
    for (mode, label) in [
        (FaultyMode::Correct, "correct (rule on)"),
        (FaultyMode::AnswerAcrossWall, "faulty (rule off)"),
    ] {
        for (jitter, dl) in [(false, "constant T"), (true, "uniform [0.8T, T]")] {
            let (v, u) = run_rate(mode, jitter, seeds);
            t.row(&[
                &label,
                &dl,
                &format!("{v}/{seeds}"),
                &format!("{u}/{seeds}"),
            ]);
        }
    }
    println!("{t}");

    let (v_correct, _) = run_rate(FaultyMode::Correct, false, seeds);
    let (v_correct_j, _) = run_rate(FaultyMode::Correct, true, seeds);
    let (v_faulty, _) = run_rate(FaultyMode::AnswerAcrossWall, false, seeds);
    println!(
        "\npaper expectation: rule on -> zero violations; rule off -> violations occur -> {}",
        if v_correct == 0 && v_correct_j == 0 && v_faulty > 0 {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
