//! # qbc-bench — experiment binaries and microbenches
//!
//! One binary per paper artifact (see DESIGN.md §3 and EXPERIMENTS.md):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `e1_example1` | Example 1 / Fig. 3 — Skeen `[16]` blocks all partitions |
//! | `e2_example2` | Example 2 — 3PC terminates inconsistently |
//! | `e3_example3` | Example 3 / Fig. 7 — the PC/PA wall under two coordinators |
//! | `e4_example4` | Example 4 — TP1 restores availability |
//! | `e5_concurrency_sets` | Fig. 4 — empirical concurrency sets |
//! | `e6_transitions` | Fig. 6 — state-transition conformance audit |
//! | `e7_latency` | Figs. 1/2/9 — commit latency & message counts |
//! | `e8_availability` | §1/§5 claim — Monte-Carlo availability |
//! | `e9_vulnerability` | §3.2/§5 claim — failure vulnerability window |
//! | `e10_ablation` | Example 3 generalized — mutual-ignore-rule ablation |
//!
//! Criterion benches (`cargo bench -p qbc-bench`) measure the hot paths
//! of every substrate: engine steps, rule evaluation, lock manager, WAL,
//! the simulator event pump and a full end-to-end commit.

/// Shared output helper: prints a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
