//! B4 — message fan-out cost: what one `VOTE-REQ` broadcast pays per
//! recipient.
//!
//! Phase 1 of every protocol variant ships the transaction spec to all
//! participants. Since the Arc-sharing refactor the per-recipient cost
//! is a refcount bump; the `deep_clone` rows measure what the old wire
//! format paid (a full `TxnSpec` copy, `BTreeMap` writeset included)
//! for comparison. The gap is the per-message saving, and it grows with
//! the writeset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbc_core::{Msg, ProtocolKind, TxnId, TxnSpec, WriteSet};
use qbc_simnet::SiteId;
use qbc_votes::ItemId;
use std::sync::Arc;

const FANOUT: usize = 12;

fn spec(n_items: u32) -> Arc<TxnSpec> {
    Arc::new(TxnSpec {
        id: TxnId(1),
        coordinator: SiteId(0),
        writeset: WriteSet::new((0..n_items).map(|i| (ItemId(i), i as i64))),
        participants: (0..FANOUT as u32).map(SiteId).collect(),
        protocol: ProtocolKind::QuorumCommit1,
        parent: None,
    })
}

fn bench_fanout(c: &mut Criterion) {
    for n_items in [2u32, 16, 64] {
        let sp = spec(n_items);
        let msg = Msg::VoteReq {
            spec: Arc::clone(&sp),
        };
        c.bench_function(&format!("msg_fanout/arc_share/{n_items}items"), |b| {
            b.iter(|| {
                for _ in 0..FANOUT {
                    black_box(msg.clone());
                }
            })
        });
        c.bench_function(&format!("msg_fanout/deep_clone/{n_items}items"), |b| {
            b.iter(|| {
                for _ in 0..FANOUT {
                    black_box(TxnSpec::clone(&sp));
                }
            })
        });
    }
}

fn bench_broadcast_build(c: &mut Criterion) {
    // The full coordinator kickoff: spec build + log record + broadcast
    // actions — the per-transaction (not per-recipient) fixed cost.
    let sp = spec(16);
    c.bench_function("msg_fanout/coordinator_start/16items", |b| {
        let mut actions = Vec::new();
        b.iter(|| {
            let mut coord = qbc_core::Coordinator::new(Arc::clone(&sp), None);
            actions.clear();
            coord.start(&mut actions);
            black_box(&actions);
        })
    });
}

criterion_group!(benches, bench_fanout, bench_broadcast_build);
criterion_main!(benches);
