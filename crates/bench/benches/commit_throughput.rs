//! End-to-end commit benchmark (B7): one full failure-free transaction
//! through the simulator per iteration, for each protocol — the
//! wall-clock cost of the whole stack (network events, engines, locks,
//! WAL).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbc_core::{ProtocolKind, SiteVotes, TxnId, WriteSet};
use qbc_db::{build_cluster, SiteNode};
use qbc_simnet::{sites, DelayModel, Duration, Sim, SimConfig, SiteId, Time};
use qbc_votes::{Catalog, CatalogBuilder, ItemId};

fn catalog(n: u32) -> Catalog {
    CatalogBuilder::new()
        .item(ItemId(0), "x")
        .copies_at(sites(n))
        .majority()
        .build()
        .unwrap()
}

fn run_one(protocol: ProtocolKind, n: u32, seed: u64) -> bool {
    let cat = catalog(n);
    let sv = SiteVotes::uniform(sites(n), n / 2 + 1, n / 2 + 1);
    let nodes = build_cluster(sites(n), &cat, Duration(10), |c| {
        if protocol == ProtocolKind::SkeenQuorum {
            c.with_site_votes(sv.clone())
        } else {
            c
        }
    });
    let mut sim: Sim<SiteNode> = Sim::new(
        SimConfig {
            seed,
            delay: DelayModel::uniform(Duration(1), Duration(10)),
            record_trace: false,
        },
        nodes,
    );
    sim.schedule_call(Time(0), SiteId(0), move |node, ctx| {
        node.begin_transaction(ctx, TxnId(1), WriteSet::new([(ItemId(0), 1)]), protocol);
    });
    sim.run_until(Time(1_000));
    sim.node(SiteId(0)).decision(TxnId(1)).is_some()
}

fn bench_commit(c: &mut Criterion) {
    for protocol in ProtocolKind::ALL {
        c.bench_function(&format!("commit/e2e_8sites/{}", protocol.name()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one(protocol, 8, seed))
            })
        });
    }
    for n in [4u32, 16, 32] {
        c.bench_function(&format!("commit/e2e_qc2_{n}sites"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one(ProtocolKind::QuorumCommit2, n, seed))
            })
        });
    }
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
