//! Criterion microbenches for the protocol engines (B1–B3): participant
//! message handling, coordinator vote/ack processing, and the TP1/TP2
//! phase-2 rule evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbc_core::rules::{phase2, StateView, TerminationKind};
use qbc_core::{
    Coordinator, LocalState, Msg, Participant, ParticipantConfig, ProtocolKind, TxnId, TxnSpec,
    WriteSet,
};
use qbc_simnet::SiteId;
use qbc_votes::{Catalog, CatalogBuilder, ItemId, Version};

fn catalog(n_items: u32, copies: u32) -> Catalog {
    let mut b = CatalogBuilder::new();
    for i in 0..n_items {
        b = b.item(ItemId(i), format!("x{i}"));
        for k in 0..copies {
            b = b.copy(SiteId((i * copies + k) % 16), 1);
        }
        b = b.majority();
    }
    b.build().unwrap()
}

fn spec(catalog: &Catalog, n_items: u32, protocol: ProtocolKind) -> std::sync::Arc<TxnSpec> {
    let ws = WriteSet::new((0..n_items).map(|i| (ItemId(i), i as i64)));
    std::sync::Arc::new(TxnSpec::from_catalog(
        TxnId(1),
        SiteId(0),
        ws,
        protocol,
        catalog,
    ))
}

fn bench_participant(c: &mut Criterion) {
    let cat = catalog(4, 4);
    let sp = spec(&cat, 4, ProtocolKind::QuorumCommit1);
    c.bench_function("participant/vote_req", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut p = Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default());
            out.clear();
            p.on_msg(
                SiteId(0),
                &Msg::VoteReq { spec: sp.clone() },
                Version(0),
                &mut out,
            );
            black_box(&out);
        })
    });
    c.bench_function("participant/full_commit_path", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut p = Participant::new(SiteId(1), TxnId(1), ParticipantConfig::default());
            out.clear();
            p.on_msg(
                SiteId(0),
                &Msg::VoteReq { spec: sp.clone() },
                Version(0),
                &mut out,
            );
            p.on_msg(
                SiteId(0),
                &Msg::PrepareCommit {
                    txn: TxnId(1),
                    commit_version: Version(1),
                },
                Version(0),
                &mut out,
            );
            p.on_msg(
                SiteId(0),
                &Msg::Commit {
                    txn: TxnId(1),
                    commit_version: Version(1),
                },
                Version(0),
                &mut out,
            );
            black_box(&out);
        })
    });
}

fn bench_coordinator(c: &mut Criterion) {
    let cat = catalog(4, 4);
    for protocol in [
        ProtocolKind::TwoPhase,
        ProtocolKind::ThreePhase,
        ProtocolKind::QuorumCommit1,
        ProtocolKind::QuorumCommit2,
    ] {
        let sp = spec(&cat, 4, protocol);
        c.bench_function(&format!("coordinator/all_votes/{}", protocol.name()), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut coord = Coordinator::new(sp.clone(), None);
                out.clear();
                coord.start(&mut out);
                let participants: Vec<SiteId> = sp.participants.iter().copied().collect();
                for &s in &participants {
                    coord.on_vote(s, true, Version(0), &cat, &mut out);
                }
                for &s in &participants {
                    coord.on_pc_ack(s, &cat, &mut out);
                }
                black_box(&out);
            })
        });
    }
}

fn bench_rules(c: &mut Criterion) {
    for (n_items, copies) in [(2u32, 4u32), (8, 4), (16, 8)] {
        let cat = catalog(n_items, copies);
        let sp = spec(&cat, n_items, ProtocolKind::QuorumCommit1);
        let view = StateView::from_pairs(sp.participants.iter().enumerate().map(|(i, &s)| {
            (
                s,
                if i % 3 == 0 {
                    LocalState::PreCommit
                } else {
                    LocalState::Wait
                },
            )
        }));
        for kind in [TerminationKind::Tp1, TerminationKind::Tp2] {
            c.bench_function(
                &format!("rules/phase2/{}/{n_items}x{copies}", kind.name()),
                |b| b.iter(|| black_box(phase2(&kind, &cat, &sp, &view))),
            );
        }
    }
}

criterion_group!(benches, bench_participant, bench_coordinator, bench_rules);
criterion_main!(benches);
