//! Criterion microbenches for the substrates (B4–B6): lock manager,
//! WAL append/replay, simulator event pump, election round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbc_election::{Elector, Input as ElInput};
use qbc_locks::{LockManager, LockMode};
use qbc_simnet::{
    sites, Ctx, DelayModel, Duration, Label, Process, Sim, SimConfig, SiteId, TimerId,
};
use qbc_storage::Wal;

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/acquire_release_1k", |b| {
        b.iter(|| {
            let mut lm: LockManager<u32, u32> = LockManager::new();
            for i in 0..1_000u32 {
                lm.acquire(i % 16, i % 64, LockMode::Exclusive);
            }
            for t in 0..16u32 {
                black_box(lm.release_all(&t));
            }
        })
    });
    c.bench_function("locks/contended_queue", |b| {
        b.iter(|| {
            let mut lm: LockManager<u32, u32> = LockManager::new();
            for t in 0..64u32 {
                lm.acquire(t, 0, LockMode::Exclusive);
            }
            for t in 0..64u32 {
                black_box(lm.release_all(&t));
            }
        })
    });
    c.bench_function("locks/wait_for_cycles", |b| {
        let mut lm: LockManager<u32, u32> = LockManager::new();
        for i in 0..32u32 {
            lm.acquire(i, i, LockMode::Exclusive);
        }
        for i in 0..32u32 {
            lm.acquire(i, (i + 1) % 32, LockMode::Exclusive);
        }
        b.iter(|| black_box(qbc_locks::detect_cycles(&lm.wait_for_edges())))
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal/append_1k", |b| {
        b.iter(|| {
            let mut wal: Wal<u64> = Wal::new();
            for i in 0..1_000u64 {
                wal.append(i);
            }
            black_box(wal.len())
        })
    });
    c.bench_function("wal/replay_10k", |b| {
        let mut wal: Wal<u64> = Wal::new();
        for i in 0..10_000u64 {
            wal.append(i);
        }
        b.iter(|| black_box(wal.replay().map(|(_, r)| *r).sum::<u64>()))
    });
}

#[derive(Clone, Debug)]
struct Tick;
impl Label for Tick {
    fn label(&self) -> &'static str {
        "TICK"
    }
}

struct Pinger {
    n: u32,
    left: u32,
}

impl Process for Pinger {
    type Msg = Tick;
    type Timer = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, Tick, ()>) {
        if ctx.id() == SiteId(0) {
            ctx.send(SiteId(1 % self.n), Tick);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tick, ()>, _f: SiteId, _m: Tick) {
        if self.left > 0 {
            self.left -= 1;
            let next = SiteId((ctx.id().0 + 1) % self.n);
            ctx.send(next, Tick);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Tick, ()>, _id: TimerId, _t: ()) {}
}

fn bench_simnet(c: &mut Criterion) {
    c.bench_function("simnet/pump_10k_events", |b| {
        b.iter(|| {
            let cfg = SimConfig {
                seed: 1,
                delay: DelayModel::uniform(Duration(1), Duration(10)),
                record_trace: false,
            };
            let mut sim = Sim::new(
                cfg,
                (0..8u32).map(|i| {
                    (
                        SiteId(i),
                        Pinger {
                            n: 8,
                            left: 10_000 / 8,
                        },
                    )
                }),
            );
            black_box(sim.run_to_quiescence(20_000))
        })
    });
}

fn bench_election(c: &mut Criterion) {
    c.bench_function("election/lone_victory", |b| {
        b.iter(|| {
            let mut e = Elector::new(SiteId(31), sites(32));
            black_box(e.step(ElInput::Start))
        })
    });
    c.bench_function("election/bully_cascade_32", |b| {
        b.iter(|| {
            // Drive a full cascade by hand: lowest starts, everyone
            // higher answers and runs its own election.
            let mut electors: Vec<Elector> = (0..32u32)
                .map(|i| Elector::new(SiteId(i), sites(32)))
                .collect();
            let mut outputs = electors[0].step(ElInput::Start);
            let mut hops = 0;
            while let Some(qbc_election::Action::Send { to, msg }) = outputs.pop() {
                hops += 1;
                if hops > 4_096 {
                    break;
                }
                let from = SiteId(0);
                let more = electors[to.0 as usize].step(ElInput::Msg { from, msg });
                outputs.extend(more);
            }
            black_box(hops)
        })
    });
}

criterion_group!(
    benches,
    bench_locks,
    bench_wal,
    bench_simnet,
    bench_election
);
criterion_main!(benches);
