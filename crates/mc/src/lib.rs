//! # qbc-mc — exhaustive model checker for the protocol core
//!
//! Sampled fault injection (crash matrices, proptest schedules) shows a
//! protocol surviving *some* executions; a model checker shows it
//! surviving **all** of them, for a small configuration and bounded
//! faults. This crate walks every reachable state of a
//! [`ControlledHost`] — branching on message delivery order, budgeted
//! drops/duplications, crash and recovery placement, and timer firings —
//! and checks invariants in each state. Any violation is returned as the
//! exact [`Choice`] schedule that produced it, replayable
//! deterministically with [`replay`].
//!
//! ## Tractability
//!
//! * **Canonical fingerprints** ([`Fingerprint`]): states reached by
//!   different histories hash equal when they are behaviourally equal,
//!   and the visited-set merges them. This alone collapses the diamond
//!   of any two commuting events.
//! * **Sleep-set partial-order reduction**: deliveries to *different*
//!   sites commute exactly (delivery never advances the clock), so
//!   after exploring `deliver a; …` the checker puts `a` to sleep while
//!   exploring a sibling `deliver b` to another site, avoiding the
//!   second half of the diamond instead of merely merging it. Sleep
//!   sets prune *transitions*, never *states*: every reachable state is
//!   still visited, so per-state invariant checking stays sound. The
//!   visited-set records the sleep set each state was explored with and
//!   re-explores on arrival with an incomparable one (Godefroid's
//!   refinement), which keeps the combination with state merging sound.
//! * **Budgets**: depth bounds the schedule length, fault budgets bound
//!   the adversary, [`McConfig::max_states`] is a safety valve.
//!
//! ## Search order
//!
//! [`Search::Bfs`] (the default) visits states in schedule-length order,
//! so the first violation found is a shortest one — minimal
//! counterexamples for free. [`Search::Dfs`] trades that for a much
//! smaller frontier; use it for deep explorations that BFS cannot hold
//! in memory.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{HashMap, VecDeque};

pub use qbc_simnet::{Choice, ControlledHost, Fingerprint, FirePolicy, HostConfig};
use qbc_simnet::{Process, SiteId};

/// Worklist discipline of the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Search {
    /// Breadth-first: first violation found is a shortest one.
    Bfs,
    /// Depth-first: small frontier, counterexamples not minimal.
    Dfs,
}

/// Exploration bounds and reductions.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Maximum schedule length; states at this depth are not expanded
    /// (counted in [`McStats::frontier_cut`] when they had choices
    /// left).
    pub max_depth: usize,
    /// Stop after this many distinct states (safety valve; the report's
    /// [`McStats::complete`] turns false).
    pub max_states: usize,
    /// Worklist discipline.
    pub search: Search,
    /// Enable sleep-set partial-order reduction over commuting
    /// deliveries.
    pub por: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_depth: 64,
            max_states: 1_000_000,
            search: Search::Bfs,
            por: true,
        }
    }
}

/// Counters describing one exploration.
#[derive(Clone, Debug, Default)]
pub struct McStats {
    /// Distinct states visited (including the initial state).
    pub explored: usize,
    /// Choices applied (edges walked, including ones leading to
    /// already-visited states).
    pub transitions: usize,
    /// Children merged into an already-visited fingerprint.
    pub deduped: usize,
    /// Choices skipped by the sleep set (avoided half-diamonds).
    pub sleep_skipped: usize,
    /// Visited states re-expanded because they were reached with a
    /// sleep set not covered by the stored one.
    pub re_explored: usize,
    /// States left unexpanded at the depth bound while choices remained.
    pub frontier_cut: usize,
    /// States in which no delivery or timer firing was enabled (the
    /// system had drained at its current fault level).
    pub quiescent: usize,
    /// Deepest schedule prefix expanded.
    pub max_depth_seen: usize,
    /// False when [`McConfig::max_states`] stopped the search early.
    pub complete: bool,
}

impl McStats {
    /// One-line rendering for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "explored {} states ({} transitions, {} deduped, {} sleep-skipped, {} re-explored), \
             {} quiescent, depth <= {}, frontier cut {}, complete: {}",
            self.explored,
            self.transitions,
            self.deduped,
            self.sleep_skipped,
            self.re_explored,
            self.quiescent,
            self.max_depth_seen,
            self.frontier_cut,
            self.complete
        )
    }
}

/// A violation with the exact schedule that produced it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Name of the violated invariant.
    pub invariant: String,
    /// The invariant's explanation of what went wrong.
    pub message: String,
    /// The choice schedule from the initial state to the violating
    /// state. Replay with [`replay`] over a fresh copy of the same
    /// initial host.
    pub schedule: Vec<Choice>,
    /// Human rendering of each schedule step (message payloads, timer
    /// kinds), produced by [`ControlledHost::describe`] during replay.
    pub steps: Vec<String>,
}

impl Counterexample {
    /// Multi-line rendering for logs and flight-recorder dumps.
    pub fn render(&self) -> String {
        let mut out = format!(
            "invariant '{}' violated after {} steps: {}\n",
            self.invariant,
            self.schedule.len(),
            self.message
        );
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {i:3}. {step}\n"));
        }
        out
    }
}

/// The outcome of one exploration.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Exploration counters.
    pub stats: McStats,
    /// The first violation found, if any (a shortest one under
    /// [`Search::Bfs`]).
    pub violation: Option<Counterexample>,
}

type CheckFn<N> = Box<dyn Fn(&ControlledHost<N>) -> Result<(), String>>;

struct Invariant<N: Process> {
    name: String,
    check: CheckFn<N>,
}

/// A message-delivery sleep entry: destination (for the independence
/// test) plus a canonical rendering of the message (stable across
/// branches, unlike sequence numbers).
#[derive(Clone, Debug, PartialEq, Eq)]
struct SleepEntry {
    to: SiteId,
    key: String,
}

struct WorkItem<N: Process> {
    host: ControlledHost<N>,
    path: Vec<Choice>,
    sleep: Vec<SleepEntry>,
}

/// The exhaustive checker: a set of invariants plus exploration bounds.
///
/// Per-state invariants run in **every** reachable state; quiescent
/// invariants run only in states where no delivery or timer firing is
/// enabled — the place to assert liveness-flavoured properties such as
/// "once everything that can happen has happened, every live site has
/// decided" (bounded termination).
pub struct Checker<N: Process + Clone + Fingerprint> {
    cfg: McConfig,
    invariants: Vec<Invariant<N>>,
    quiescent_invariants: Vec<Invariant<N>>,
}

impl<N: Process + Clone + Fingerprint> Checker<N> {
    /// A checker with no invariants (add them with
    /// [`Checker::invariant`] / [`Checker::quiescent_invariant`]).
    pub fn new(cfg: McConfig) -> Self {
        Checker {
            cfg,
            invariants: Vec::new(),
            quiescent_invariants: Vec::new(),
        }
    }

    /// Adds a per-state invariant: checked in every reachable state;
    /// `Err(why)` terminates the search with a counterexample.
    pub fn invariant(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&ControlledHost<N>) -> Result<(), String> + 'static,
    ) -> Self {
        self.invariants.push(Invariant {
            name: name.into(),
            check: Box::new(check),
        });
        self
    }

    /// Adds a quiescent-state invariant: checked only where no delivery
    /// or timer firing is enabled.
    pub fn quiescent_invariant(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&ControlledHost<N>) -> Result<(), String> + 'static,
    ) -> Self {
        self.quiescent_invariants.push(Invariant {
            name: name.into(),
            check: Box::new(check),
        });
        self
    }

    /// Explores every reachable state from `initial` within the bounds.
    ///
    /// Returns the counters and the first violation found (if any) with
    /// its replayable schedule.
    pub fn run(&self, initial: ControlledHost<N>) -> McReport {
        let mut stats = McStats {
            complete: true,
            ..McStats::default()
        };
        // fingerprint -> sleep set the state was (last) explored with.
        let mut visited: HashMap<u64, Vec<SleepEntry>> = HashMap::new();

        if let Some(v) = self.check_state(&initial, &[], &mut stats) {
            stats.explored = 1;
            return McReport {
                stats,
                violation: Some(self.render_cex(&initial, v)),
            };
        }
        visited.insert(initial.fingerprint(), Vec::new());
        stats.explored = 1;

        let mut work: VecDeque<WorkItem<N>> = VecDeque::new();
        work.push_back(WorkItem {
            host: initial.clone(),
            path: Vec::new(),
            sleep: Vec::new(),
        });

        while let Some(item) = match self.cfg.search {
            Search::Bfs => work.pop_front(),
            Search::Dfs => work.pop_back(),
        } {
            let choices = item.host.enabled_choices();
            let quiescent = !choices
                .iter()
                .any(|c| matches!(c, Choice::Deliver { .. } | Choice::Fire { .. }));
            if quiescent {
                stats.quiescent += 1;
                for inv in &self.quiescent_invariants {
                    if let Err(message) = (inv.check)(&item.host) {
                        return McReport {
                            stats,
                            violation: Some(self.render_cex(
                                &initial,
                                Violation {
                                    invariant: inv.name.clone(),
                                    message,
                                    schedule: item.path.clone(),
                                },
                            )),
                        };
                    }
                }
            }
            if item.path.len() >= self.cfg.max_depth {
                if !choices.is_empty() {
                    stats.frontier_cut += 1;
                }
                continue;
            }
            stats.max_depth_seen = stats.max_depth_seen.max(item.path.len() + 1);

            // Deliveries already explored at *this* state; a later
            // sibling's children may sleep on them if independent.
            let mut done: Vec<SleepEntry> = Vec::new();
            for &choice in &choices {
                let entry = self.deliver_entry(&item.host, choice);
                if let Some(e) = &entry {
                    if item.sleep.iter().any(|s| s.key == e.key) {
                        stats.sleep_skipped += 1;
                        continue;
                    }
                }

                let mut child = item.host.clone();
                child.apply(choice);
                stats.transitions += 1;

                let child_sleep: Vec<SleepEntry> = match &entry {
                    // Delivering to site `d` commutes with every
                    // sleeping delivery to a *different* site: keep
                    // those asleep.
                    Some(e) => item
                        .sleep
                        .iter()
                        .chain(done.iter())
                        .filter(|s| s.to != e.to)
                        .cloned()
                        .collect(),
                    // Drops, duplications, timer firings, crashes and
                    // recoveries do not commute with deliveries (they
                    // change budgets, the clock, or the up-map): wake
                    // everything.
                    None => Vec::new(),
                };

                let fp = child.fingerprint();
                match visited.get_mut(&fp) {
                    Some(stored) => {
                        if stored.iter().all(|s| child_sleep.contains(s)) {
                            // Stored sleep set is a subset of ours: the
                            // earlier visit explored at least as much.
                            stats.deduped += 1;
                        } else {
                            // Incomparable sleep sets: re-explore with
                            // the intersection (monotonically shrinking,
                            // so this terminates).
                            let merged: Vec<SleepEntry> = stored
                                .iter()
                                .filter(|s| child_sleep.contains(s))
                                .cloned()
                                .collect();
                            *stored = merged.clone();
                            stats.re_explored += 1;
                            let mut path = item.path.clone();
                            path.push(choice);
                            work.push_back(WorkItem {
                                host: child,
                                path,
                                sleep: merged,
                            });
                        }
                    }
                    None => {
                        let mut path = item.path.clone();
                        path.push(choice);
                        if let Some(v) = self.check_state(&child, &path, &mut stats) {
                            stats.explored = visited.len() + 1;
                            return McReport {
                                stats,
                                violation: Some(self.render_cex(&initial, v)),
                            };
                        }
                        visited.insert(fp, child_sleep.clone());
                        if visited.len() >= self.cfg.max_states {
                            stats.complete = false;
                            stats.explored = visited.len();
                            return McReport {
                                stats,
                                violation: None,
                            };
                        }
                        work.push_back(WorkItem {
                            host: child,
                            path,
                            sleep: child_sleep,
                        });
                    }
                }

                if self.cfg.por {
                    if let Some(e) = entry {
                        done.push(e);
                    }
                }
            }
        }

        stats.explored = visited.len();
        McReport {
            stats,
            violation: None,
        }
    }

    /// The sleep-set identity of a delivery choice in `host`'s current
    /// state, or `None` for every other choice kind (and whenever the
    /// reduction is disabled).
    fn deliver_entry(&self, host: &ControlledHost<N>, choice: Choice) -> Option<SleepEntry> {
        if !self.cfg.por {
            return None;
        }
        let Choice::Deliver { seq } = choice else {
            return None;
        };
        let m = host.in_flight().iter().find(|m| m.seq == seq)?;
        Some(SleepEntry {
            to: m.to,
            key: format!("{}>{}:{:?}", m.from.0, m.to.0, m.msg),
        })
    }

    fn check_state(
        &self,
        host: &ControlledHost<N>,
        path: &[Choice],
        _stats: &mut McStats,
    ) -> Option<Violation> {
        for inv in &self.invariants {
            if let Err(message) = (inv.check)(host) {
                return Some(Violation {
                    invariant: inv.name.clone(),
                    message,
                    schedule: path.to_vec(),
                });
            }
        }
        None
    }

    fn render_cex(&self, initial: &ControlledHost<N>, v: Violation) -> Counterexample {
        let (_, steps) = replay(initial.clone(), &v.schedule);
        Counterexample {
            invariant: v.invariant,
            message: v.message,
            schedule: v.schedule,
            steps,
        }
    }
}

struct Violation {
    invariant: String,
    message: String,
    schedule: Vec<Choice>,
}

/// Replays a recorded schedule over a fresh copy of the initial host,
/// returning the final state and a human rendering of each step.
///
/// Replay is deterministic: the same initial host and schedule always
/// reproduce the same states (sequence numbers included, because they
/// are assigned in event order).
pub fn replay<N: Process + Clone>(
    mut host: ControlledHost<N>,
    schedule: &[Choice],
) -> (ControlledHost<N>, Vec<String>) {
    let mut steps = Vec::with_capacity(schedule.len());
    for &c in schedule {
        steps.push(host.describe(c));
        host.apply(c);
    }
    (host, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_simnet::{Ctx, Duration, FastHasher, Label, Time, TimerId};
    use std::hash::Hasher;

    /// A toy 2PC: site 0 coordinates sites 1..n.
    #[derive(Clone, Debug, PartialEq)]
    enum M {
        Prepare,
        Yes,
        Commit,
        Abort,
    }
    impl Label for M {
        fn label(&self) -> &'static str {
            "M"
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum D {
        Commit,
        Abort,
    }

    /// `buggy`: a voted-yes participant unilaterally aborts on timeout —
    /// the classic 2PC mistake the checker must catch.
    #[derive(Clone, Debug)]
    struct Toy {
        n: u32,
        buggy: bool,
        voted: bool,
        yeses: u32,
        decision: Option<D>,
    }

    impl Toy {
        fn new(n: u32, buggy: bool) -> Self {
            Toy {
                n,
                buggy,
                voted: false,
                yeses: 0,
                decision: None,
            }
        }
    }

    impl Process for Toy {
        type Msg = M;
        type Timer = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, M, ()>) {
            if ctx.id() == SiteId(0) {
                for i in 1..self.n {
                    ctx.send(SiteId(i), M::Prepare);
                }
            }
            ctx.set_timer(Duration(10), ());
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, M, ()>, from: SiteId, msg: M) {
            match msg {
                M::Prepare => {
                    // A participant that already presumed abort on its
                    // own timeout must not vote yes afterwards.
                    if self.decision.is_none() {
                        self.voted = true;
                        ctx.send(from, M::Yes);
                    }
                }
                M::Yes => {
                    self.yeses += 1;
                    if self.yeses == self.n - 1 && self.decision.is_none() {
                        self.decision = Some(D::Commit);
                        for i in 1..self.n {
                            ctx.send(SiteId(i), M::Commit);
                        }
                    }
                }
                M::Commit => {
                    if self.decision.is_none() {
                        self.decision = Some(D::Commit);
                    }
                }
                M::Abort => {
                    if self.decision.is_none() {
                        self.decision = Some(D::Abort);
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, M, ()>, _id: TimerId, _t: ()) {
            if self.decision.is_some() {
                return;
            }
            if ctx.id() == SiteId(0) {
                if self.yeses < self.n - 1 {
                    self.decision = Some(D::Abort);
                    for i in 1..self.n {
                        ctx.send(SiteId(i), M::Abort);
                    }
                }
            } else if !self.voted || self.buggy {
                // Correct: only a participant that has not voted may
                // presume abort. Buggy: aborts even after voting yes.
                self.decision = Some(D::Abort);
            }
        }
    }

    impl Fingerprint for Toy {
        fn fingerprint(&self, _now: Time, h: &mut FastHasher) {
            h.write(format!("{}{}{:?}", self.voted, self.yeses, self.decision).as_bytes());
        }
    }

    fn toy_host(n: u32, buggy: bool) -> ControlledHost<Toy> {
        ControlledHost::new(
            HostConfig::default(),
            (0..n).map(|i| (SiteId(i), Toy::new(n, buggy))),
        )
    }

    fn checker(cfg: McConfig) -> Checker<Toy> {
        Checker::new(cfg).invariant("agreement", |h: &ControlledHost<Toy>| {
            let mut committed = None;
            let mut aborted = None;
            for s in h.sites() {
                match h.node(s).decision {
                    Some(D::Commit) => committed = Some(s),
                    Some(D::Abort) => aborted = Some(s),
                    None => {}
                }
            }
            match (committed, aborted) {
                (Some(c), Some(a)) => Err(format!("{c} committed while {a} aborted")),
                _ => Ok(()),
            }
        })
    }

    #[test]
    fn correct_toy_is_clean_and_terminates() {
        let report = checker(McConfig::default())
            .quiescent_invariant("all-decided", |h: &ControlledHost<Toy>| {
                for s in h.sites() {
                    if h.is_up(s) && h.node(s).decision.is_none() {
                        return Err(format!("{s} undecided at quiescence"));
                    }
                }
                Ok(())
            })
            .run(toy_host(3, false));
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.stats.complete);
        assert!(report.stats.explored > 10);
        assert!(report.stats.quiescent > 0, "{}", report.stats.summary());
    }

    #[test]
    fn buggy_toy_yields_minimal_replayable_counterexample() {
        let report = checker(McConfig::default()).run(toy_host(3, true));
        let cex = report.violation.expect("the seeded bug must be found");
        assert_eq!(cex.invariant, "agreement");
        assert_eq!(cex.schedule.len(), cex.steps.len());
        // Shortest violation: prepare+yes for one participant, commit
        // at the coordinator, then the *other* voted participant's
        // timeout fires... which needs both to have voted. BFS
        // guarantees no shorter schedule exists; pin a sane bound.
        assert!(
            (4..=8).contains(&cex.schedule.len()),
            "unexpected counterexample length:\n{}",
            cex.render()
        );
        // The schedule replays to a violating state.
        let (end, _) = replay(toy_host(3, true), &cex.schedule);
        let ds: Vec<Option<D>> = end.sites().map(|s| end.node(s).decision).collect();
        assert!(
            ds.contains(&Some(D::Commit)) && ds.contains(&Some(D::Abort)),
            "replayed end state must disagree: {ds:?}"
        );
    }

    #[test]
    fn por_preserves_verdict_and_prunes_transitions() {
        let with = checker(McConfig::default()).run(toy_host(3, false));
        let without = checker(McConfig {
            por: false,
            ..McConfig::default()
        })
        .run(toy_host(3, false));
        assert!(with.violation.is_none() && without.violation.is_none());
        assert_eq!(
            with.stats.explored, without.stats.explored,
            "sleep sets must prune transitions, never states"
        );
        assert!(
            with.stats.transitions < without.stats.transitions,
            "POR should avoid commuted half-diamonds: {} vs {}",
            with.stats.transitions,
            without.stats.transitions
        );
        assert!(with.stats.sleep_skipped > 0);
    }

    #[test]
    fn por_still_finds_the_bug() {
        let with = checker(McConfig::default()).run(toy_host(3, true));
        let without = checker(McConfig {
            por: false,
            ..McConfig::default()
        })
        .run(toy_host(3, true));
        assert!(with.violation.is_some());
        assert!(without.violation.is_some());
        // Both find a minimal-length counterexample.
        assert_eq!(
            with.violation.unwrap().schedule.len(),
            without.violation.unwrap().schedule.len()
        );
    }

    #[test]
    fn crash_budget_expands_the_state_space() {
        let plain = checker(McConfig::default()).run(toy_host(3, false));
        let faulty = checker(McConfig::default()).run(ControlledHost::new(
            HostConfig {
                crash_sites: vec![SiteId(0)],
                max_crashes: 1,
                ..HostConfig::default()
            },
            (0..3).map(|i| (SiteId(i), Toy::new(3, false))),
        ));
        assert!(faulty.violation.is_none());
        assert!(
            faulty.stats.explored > plain.stats.explored,
            "a crash point multiplies reachable states"
        );
    }

    #[test]
    fn max_states_valve_reports_incomplete() {
        let report = checker(McConfig {
            max_states: 5,
            ..McConfig::default()
        })
        .run(toy_host(3, false));
        assert!(!report.stats.complete);
        assert_eq!(report.stats.explored, 5);
    }

    #[test]
    fn dfs_finds_the_bug_too() {
        let report = checker(McConfig {
            search: Search::Dfs,
            ..McConfig::default()
        })
        .run(toy_host(3, true));
        assert!(report.violation.is_some());
    }
}
