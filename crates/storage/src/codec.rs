//! Record serialization for disk-backed WAL backends.
//!
//! The vendored `serde` is a compile-only stand-in (no wire format), so
//! the file WAL defines its own minimal codec contract: [`WalCodec`]
//! turns a record into bytes and back. Framing, checksumming and
//! torn-tail handling live in [`crate::FileWal`]; a codec only sees
//! whole, checksum-verified payloads, so [`WalCodec::decode`] failing
//! means a format bug or version skew — corruption never reaches it.
//!
//! The `put_*` helpers and [`Dec`] cursor implement the shared
//! primitive encoding (little-endian fixed-width integers,
//! length-prefixed byte strings) so record codecs in other crates stay
//! small and consistent.

/// A record type the file-backed WAL can persist.
pub trait WalCodec: Sized {
    /// Appends this record's encoding to `buf` (no framing — the WAL
    /// frames and checksums the payload).
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decodes a record from a whole payload previously produced by
    /// [`WalCodec::encode_into`]. `None` means the payload does not
    /// parse (format bug or version skew; checksums have already ruled
    /// out corruption).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Decoding cursor over an encoded payload. Every accessor returns
/// `None` on underflow instead of panicking; callers chain with `?`.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
}

impl<'a> Dec<'a> {
    /// A cursor over the whole payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Some(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// True when the whole payload has been consumed — decoders check
    /// this last so trailing garbage is rejected, not ignored.
    pub fn finished(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Bytes not yet consumed. Decoders use this to cap
    /// `Vec::with_capacity` before trusting a count field: a skewed or
    /// crafted count must fail with `None` when its elements run out,
    /// never pre-allocate gigabytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }
}

impl WalCodec for u32 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, *self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let v = d.u32()?;
        d.finished().then_some(v)
    }
}

impl WalCodec for u64 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let v = d.u64()?;
        d.finished().then_some(v)
    }
}

impl WalCodec for String {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let b = d.bytes()?;
        if !d.finished() {
            return None;
        }
        String::from_utf8(b.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_bytes(&mut buf, b"hello");
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX - 1));
        assert_eq!(d.i64(), Some(-42));
        assert_eq!(d.bytes(), Some(&b"hello"[..]));
        assert!(d.finished());
    }

    #[test]
    fn underflow_returns_none() {
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.u32(), None);
        let mut d = Dec::new(&[3, 0, 0, 0, b'a']);
        assert_eq!(d.bytes(), None, "length prefix exceeds remainder");
    }

    #[test]
    fn builtin_codecs_roundtrip() {
        let mut buf = Vec::new();
        42u32.encode_into(&mut buf);
        assert_eq!(u32::decode(&buf), Some(42));
        assert_eq!(u32::decode(&buf[..3]), None);
        let mut buf = Vec::new();
        "torn".to_string().encode_into(&mut buf);
        assert_eq!(String::decode(&buf).as_deref(), Some("torn"));
    }
}
