//! Disk-backed WAL: append-only segment files with checksummed framing.
//!
//! The paper's protocols are defined by what is *force-written to stable
//! storage* before each message is sent; [`FileWal`] makes that force a
//! real `fsync`. The on-disk format (documented in full in
//! `docs/wal-format.md`):
//!
//! * The log is a directory of **segment files** named
//!   `wal-<first-lsn:016x>.seg`, in LSN order with no gaps. The
//!   highest-named segment is *active* (appended to); lower ones are
//!   sealed read-only.
//! * Each record is one **frame**: `[len: u32 LE][crc: u32 LE][payload]`
//!   where `crc` is the CRC-32 (IEEE) of the payload and `payload` is
//!   the [`WalCodec`] encoding of the record.
//! * [`WalBackend::force`] writes every buffered frame plus a closing
//!   **force-boundary marker** (`[len=0xFFFF_FFFF][crc]["QBCF"][batch
//!   start: u64 LE]`, no LSN) with one `write_all` + `fdatasync`. When
//!   the active segment exceeds [`FileWalConfig::segment_bytes`] it is
//!   sealed and the next force opens a fresh segment (the directory is
//!   fsynced so the new entry is itself durable).
//! * On open, segments are scanned in order; intact markers advance the
//!   acknowledged watermark. Unreadable bytes in the **last** segment
//!   *after* its final intact marker are a *torn tail* — a crash
//!   mid-`write` — and the file is truncated back to that marker
//!   boundary (dropping even intact frames of the unacknowledged
//!   batch); the lost records were never acknowledged, so dropping
//!   them is exactly the [`WalBackend::lose_volatile`] contract.
//!   Damage anywhere else — a sealed segment, or before a later intact
//!   marker in the active one — is real corruption and open fails with
//!   [`WalError::Corrupt`].
//! * [`WalBackend::truncate_before`] unlinks sealed segments that lie
//!   entirely below the cutoff (whole-segment granularity: the backend
//!   may retain slightly more than asked, never less).
//!
//! The retained durable records are mirrored in memory (like the
//! in-memory model, which the simulator's recovery path reads), so
//! replay never re-reads the disk after open.

use crate::codec::WalCodec;
use crate::wal::{Lsn, WalBackend};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: `len: u32` + `crc: u32`.
const FRAME_HEADER: usize = 8;

/// Sentinel `len` value marking a **force-boundary marker** instead of
/// a record frame. No record payload may be 4 GiB, so the sentinel is
/// unambiguous.
const MARKER_LEN: u32 = u32::MAX;

/// Magic prefix of a marker payload (guards against a record payload
/// that happens to start with the sentinel after a misaligned scan).
const MARKER_MAGIC: &[u8; 4] = b"QBCF";

/// Total marker size on disk: `[len=MARKER_LEN][crc][magic][batch
/// start offset: u64 LE]`. The crc covers the 12 payload bytes.
pub(crate) const MARKER_SIZE: usize = FRAME_HEADER + 12;

/// Encodes the force-boundary marker closing a batch whose first frame
/// begins at `batch_start` (byte offset within the segment).
fn encode_marker(out: &mut Vec<u8>, batch_start: u64) {
    let mut payload = [0u8; 12];
    payload[..4].copy_from_slice(MARKER_MAGIC);
    payload[4..].copy_from_slice(&batch_start.to_le_bytes());
    out.extend_from_slice(&MARKER_LEN.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Scans raw segment bytes for an intact force-boundary marker starting
/// at or after `from`, at any byte alignment (a torn write can destroy
/// framing, so markers must be findable without it). An intact marker
/// beyond a damaged frame proves the damage sits inside *acknowledged*
/// bytes: the force that wrote the marker returned.
fn find_marker_after(data: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + MARKER_SIZE <= data.len() {
        if data[i..i + 4] == MARKER_LEN.to_le_bytes()
            && data[i + FRAME_HEADER..i + FRAME_HEADER + 4] == *MARKER_MAGIC
        {
            let crc = u32::from_le_bytes(data[i + 4..i + 8].try_into().unwrap());
            let payload = &data[i + FRAME_HEADER..i + MARKER_SIZE];
            if crc32(payload) == crc {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Why a [`FileWal`] operation failed.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The log is damaged somewhere a torn tail cannot explain (a bad
    /// frame that is not at the end of the last segment, a segment name
    /// that does not parse, or an LSN gap between segments).
    Corrupt {
        /// The segment file involved.
        segment: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { segment, reason } => {
                write!(f, "wal corrupt at {}: {reason}", segment.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Shape and durability knobs of a [`FileWal`].
#[derive(Clone, Debug)]
pub struct FileWalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Seal the active segment once it reaches this many bytes; smaller
    /// segments truncate sooner but cost more files.
    pub segment_bytes: u64,
    /// Call `fdatasync` on every force (and fsync the directory on
    /// segment create/delete). Disabling trades real durability for
    /// speed — only tests that crash *processes* logically (never the
    /// machine) may turn this off.
    pub fsync: bool,
}

impl FileWalConfig {
    /// Conventional defaults: 4 MiB segments, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileWalConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            fsync: true,
        }
    }

    /// Sets the segment roll threshold (builder style).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Disables per-force fsync (builder style; see
    /// [`FileWalConfig::fsync`]).
    pub fn without_fsync(mut self) -> Self {
        self.fsync = false;
        self
    }
}

/// A sealed (read-only) segment.
#[derive(Debug)]
struct Sealed {
    /// LSN of the segment's first record.
    first: u64,
    /// File size in bytes.
    bytes: u64,
}

/// The segment currently appended to.
#[derive(Debug)]
struct Active {
    file: File,
    /// LSN of the segment's first record.
    first: u64,
    /// Bytes written so far.
    bytes: u64,
}

/// A disk-backed [`WalBackend`]: append-only segment files, checksummed
/// frames, `fsync` on force, torn-tail repair on open and
/// whole-segment prefix truncation. See the module docs for the format.
#[derive(Debug)]
pub struct FileWal<R> {
    cfg: FileWalConfig,
    /// Sealed segments in LSN order, all strictly before `active`.
    sealed: Vec<Sealed>,
    /// The segment new frames go to (`None` until the first force after
    /// open-empty or a seal).
    active: Option<Active>,
    /// LSN of `records[0]`.
    start: u64,
    /// Retained durable records (in-memory mirror of the segments).
    records: Vec<R>,
    /// Buffered records: staged for the next force, lost on crash.
    pending: Vec<R>,
    /// Reused frame-encoding buffer.
    scratch: Vec<u8>,
    forces: u64,
}

impl<R: WalCodec> FileWal<R> {
    /// Opens (or creates) the log at `cfg.dir`, scanning every segment,
    /// repairing a torn tail, and mirroring the retained records in
    /// memory. Fails on I/O errors or non-tail damage.
    pub fn open(cfg: FileWalConfig) -> Result<Self, WalError> {
        fs::create_dir_all(&cfg.dir)?;
        let mut firsts: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix("wal-")
                .and_then(|n| n.strip_suffix(".seg"))
            else {
                continue;
            };
            let first = u64::from_str_radix(hex, 16).map_err(|_| WalError::Corrupt {
                segment: entry.path(),
                reason: format!("segment name {name:?} does not parse"),
            })?;
            firsts.push(first);
        }
        firsts.sort_unstable();

        let mut wal = FileWal {
            start: firsts.first().copied().unwrap_or(0),
            cfg,
            sealed: Vec::new(),
            active: None,
            records: Vec::new(),
            pending: Vec::new(),
            scratch: Vec::new(),
            forces: 0,
        };

        let mut expected = wal.start;
        for (i, &first) in firsts.iter().enumerate() {
            let path = wal.segment_path(first);
            if first != expected {
                return Err(WalError::Corrupt {
                    segment: path,
                    reason: format!("expected first LSN {expected}, segment claims {first}"),
                });
            }
            let is_last = i + 1 == firsts.len();
            let bytes = wal.scan_segment(&path, is_last)?;
            expected = wal.start + wal.records.len() as u64;
            if is_last {
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.seek(SeekFrom::Start(bytes))?;
                wal.active = Some(Active { file, first, bytes });
            } else {
                wal.sealed.push(Sealed { first, bytes });
            }
        }
        // An over-full recovered tail seals immediately so the next
        // force starts a fresh segment.
        wal.maybe_seal()?;
        Ok(wal)
    }

    fn segment_path(&self, first: u64) -> PathBuf {
        self.cfg.dir.join(format!("wal-{first:016x}.seg"))
    }

    /// Reads one segment into the mirror. Every force ends with a
    /// boundary marker, so the markers partition a segment into
    /// acknowledged batches plus (possibly) one unmarked tail that no
    /// caller was ever acknowledged for.
    ///
    /// Damage rules, in order of what a bad frame can mean:
    ///
    /// * in a non-last segment — corruption (sealed by a completed
    ///   force; a crash cannot explain it);
    /// * in the last segment, with an intact marker *after* the damage
    ///   — corruption inside acknowledged bytes (the marker's force
    ///   returned, so everything before it was acknowledged; silently
    ///   truncating it would un-happen acknowledged records);
    /// * in the last segment, after the final marker — a torn tail,
    ///   the expected remnant of a crash mid-`write`. The file is
    ///   truncated back to the last marker: the whole unmarked batch is
    ///   dropped, including any frames of it that happen to be intact
    ///   (a crashed multi-frame force can persist an arbitrary subset
    ///   of pages, so intact-looking frames past the tear are still
    ///   unacknowledged).
    ///
    /// Returns the retained byte length.
    fn scan_segment(&mut self, path: &Path, is_last: bool) -> Result<u64, WalError> {
        let data = fs::read(path)?;
        let mut pos = 0usize;
        // End of the most recent intact marker: everything at or below
        // this is acknowledged.
        let mut acked_bytes = 0usize;
        let mut acked_records = self.records.len();
        let corrupt = |reason: String| WalError::Corrupt {
            segment: path.to_path_buf(),
            reason,
        };
        let bad: Option<&str> = loop {
            if pos == data.len() {
                break None;
            }
            if pos + FRAME_HEADER > data.len() {
                break Some("short frame header");
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if len == MARKER_LEN {
                if pos + MARKER_SIZE > data.len() {
                    break Some("short boundary marker");
                }
                let payload = &data[pos + FRAME_HEADER..pos + MARKER_SIZE];
                if crc32(payload) != crc || &payload[..4] != MARKER_MAGIC {
                    break Some("boundary marker damaged");
                }
                pos += MARKER_SIZE;
                acked_bytes = pos;
                acked_records = self.records.len();
                continue;
            }
            let body = pos + FRAME_HEADER;
            let len = len as usize;
            if body + len > data.len() {
                break Some("short frame payload");
            }
            let payload = &data[body..body + len];
            if crc32(payload) != crc {
                break Some("frame checksum mismatch");
            }
            let rec = R::decode(payload)
                .ok_or_else(|| corrupt(format!("payload does not decode at offset {pos}")))?;
            self.records.push(rec);
            pos = body + len;
        };
        let Some(reason) = bad else {
            if is_last && pos > acked_bytes {
                // Intact frames with no closing marker: a crash
                // persisted an exact prefix of a batch whose force
                // never returned. Unacknowledged, so dropped — "survives
                // open" means exactly "was acknowledged".
                self.records.truncate(acked_records);
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(acked_bytes as u64)?;
                if self.cfg.fsync {
                    file.sync_all()?;
                }
                return Ok(acked_bytes as u64);
            }
            return Ok(pos as u64);
        };
        if !is_last {
            return Err(corrupt(format!("{reason} at offset {pos}")));
        }
        if find_marker_after(&data, pos + 1).is_some() {
            return Err(corrupt(format!(
                "{reason} at offset {pos} inside acknowledged bytes \
                 (an intact force-boundary marker follows the damage)"
            )));
        }
        // Torn tail: roll back to the last acknowledged force boundary.
        // The dropped records were never acknowledged (their force
        // never returned), so losing them is exactly `lose_volatile`.
        self.records.truncate(acked_records);
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(acked_bytes as u64)?;
        if self.cfg.fsync {
            file.sync_all()?;
        }
        Ok(acked_bytes as u64)
    }

    /// Seals the active segment if it has reached the roll threshold.
    fn maybe_seal(&mut self) -> Result<(), WalError> {
        if let Some(active) = &self.active {
            if active.bytes >= self.cfg.segment_bytes {
                let active = self.active.take().expect("checked");
                self.sealed.push(Sealed {
                    first: active.first,
                    bytes: active.bytes,
                });
            }
        }
        Ok(())
    }

    /// Fsyncs the log directory so segment creations/deletions are
    /// themselves durable.
    fn sync_dir(&self) -> Result<(), WalError> {
        if self.cfg.fsync {
            File::open(&self.cfg.dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Writes and fsyncs every pending frame. Split out of the trait
    /// method so the error path is testable; the trait wrapper panics,
    /// as a lost force has no safe continuation.
    pub fn try_force(&mut self) -> Result<usize, WalError> {
        let n = self.pending.len();
        if n == 0 {
            return Ok(0);
        }
        if self.active.is_none() {
            let first = self.start + self.records.len() as u64;
            let path = self.segment_path(first);
            let file = OpenOptions::new()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)?;
            self.active = Some(Active {
                file,
                first,
                bytes: 0,
            });
            self.sync_dir()?;
        }
        self.scratch.clear();
        for rec in &self.pending {
            let frame_start = self.scratch.len();
            self.scratch.extend_from_slice(&[0; FRAME_HEADER]);
            rec.encode_into(&mut self.scratch);
            let payload = &self.scratch[frame_start + FRAME_HEADER..];
            let len = payload.len() as u32;
            let crc = crc32(payload);
            self.scratch[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
            self.scratch[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
        }
        let active = self.active.as_mut().expect("ensured above");
        // The boundary marker rides the same `write_all`: once this
        // force is acknowledged, an intact marker sits after its frames,
        // and recovery can tell acknowledged damage from a torn tail.
        encode_marker(&mut self.scratch, active.bytes);
        active.file.write_all(&self.scratch)?;
        if self.cfg.fsync {
            active.file.sync_data()?;
        }
        active.bytes += self.scratch.len() as u64;
        self.records.append(&mut self.pending);
        self.forces += 1;
        self.maybe_seal()?;
        Ok(n)
    }

    /// Discards sealed segments entirely below `cutoff`. The active
    /// segment is never deleted; LSNs stay stable. See
    /// [`WalBackend::truncate_before`]. The trait wrapper panics on
    /// I/O errors; this form reports them.
    pub fn try_truncate_before(&mut self, cutoff: Lsn) -> Result<(), WalError> {
        // At least one segment always survives (the active one, or the
        // newest sealed one when nothing is active): the highest segment
        // name is what keeps LSNs stable across reopen.
        let removable = if self.active.is_some() {
            self.sealed.len()
        } else {
            self.sealed.len().saturating_sub(1)
        };
        let mut removed = 0usize;
        for i in 0..removable {
            // End of sealed[i] = first of the next segment in LSN order.
            let end = self
                .sealed
                .get(i + 1)
                .map(|s| s.first)
                .or_else(|| self.active.as_ref().map(|a| a.first))
                .unwrap_or(self.start + self.records.len() as u64);
            if end <= cutoff.0 {
                removed = i + 1;
            } else {
                break;
            }
        }
        if removed == 0 {
            return Ok(());
        }
        let new_start = self
            .sealed
            .get(removed)
            .map(|s| s.first)
            .or_else(|| self.active.as_ref().map(|a| a.first))
            .unwrap_or(self.start + self.records.len() as u64);
        let dropped: Vec<Sealed> = self.sealed.drain(..removed).collect();
        for seg in dropped {
            fs::remove_file(self.segment_path(seg.first))?;
        }
        self.sync_dir()?;
        self.records.drain(..(new_start - self.start) as usize);
        self.start = new_start;
        Ok(())
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }
}

impl<R: WalCodec> WalBackend<R> for FileWal<R> {
    fn buffer(&mut self, record: R) -> Lsn {
        let lsn = Lsn(self.start + (self.records.len() + self.pending.len()) as u64);
        self.pending.push(record);
        lsn
    }

    fn force(&mut self) -> usize {
        self.try_force()
            .unwrap_or_else(|e| panic!("WAL force failed: {e}"))
    }

    fn lose_volatile(&mut self) {
        self.pending.clear();
    }

    fn forces(&self) -> u64 {
        self.forces
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn start_lsn(&self) -> Lsn {
        Lsn(self.start)
    }

    fn records(&self) -> &[R] {
        &self.records
    }

    fn truncate_before(&mut self, cutoff: Lsn) {
        self.try_truncate_before(cutoff)
            .unwrap_or_else(|e| panic!("WAL truncation failed: {e}"))
    }

    fn storage_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>()
            + self.active.as_ref().map(|a| a.bytes).unwrap_or(0)
    }
}

/// A [`WalBackend`] chosen at runtime: the deterministic in-memory
/// model for the simulator, or the disk-backed log for durable runs.
/// This is the backend type `qbc-db` nodes carry.
#[derive(Debug)]
pub enum EitherWal<R> {
    /// In-memory durability model ([`crate::Wal`]).
    Mem(crate::Wal<R>),
    /// Disk-backed segments ([`FileWal`]).
    File(FileWal<R>),
}

/// Cloning is how the model checker branches a whole site state, and it
/// is only meaningful for the in-memory model: a [`FileWal`] owns file
/// handles on a single on-disk log, and two clones appending to the same
/// segments would corrupt it.
///
/// # Panics
/// On the [`EitherWal::File`] variant.
impl<R: Clone> Clone for EitherWal<R> {
    fn clone(&self) -> Self {
        match self {
            EitherWal::Mem(w) => EitherWal::Mem(w.clone()),
            EitherWal::File(_) => {
                panic!("EitherWal::File cannot be cloned (single on-disk log); use the in-memory backend for exploration")
            }
        }
    }
}

impl<R: Clone + WalCodec> WalBackend<R> for EitherWal<R> {
    fn buffer(&mut self, record: R) -> Lsn {
        match self {
            EitherWal::Mem(w) => WalBackend::buffer(w, record),
            EitherWal::File(w) => w.buffer(record),
        }
    }

    fn force(&mut self) -> usize {
        match self {
            EitherWal::Mem(w) => WalBackend::force(w),
            EitherWal::File(w) => WalBackend::force(w),
        }
    }

    fn lose_volatile(&mut self) {
        match self {
            EitherWal::Mem(w) => WalBackend::lose_volatile(w),
            EitherWal::File(w) => WalBackend::lose_volatile(w),
        }
    }

    fn forces(&self) -> u64 {
        match self {
            EitherWal::Mem(w) => WalBackend::forces(w),
            EitherWal::File(w) => WalBackend::forces(w),
        }
    }

    fn pending_len(&self) -> usize {
        match self {
            EitherWal::Mem(w) => WalBackend::pending_len(w),
            EitherWal::File(w) => WalBackend::pending_len(w),
        }
    }

    fn start_lsn(&self) -> Lsn {
        match self {
            EitherWal::Mem(w) => WalBackend::start_lsn(w),
            EitherWal::File(w) => WalBackend::start_lsn(w),
        }
    }

    fn records(&self) -> &[R] {
        match self {
            EitherWal::Mem(w) => WalBackend::records(w),
            EitherWal::File(w) => WalBackend::records(w),
        }
    }

    fn truncate_before(&mut self, cutoff: Lsn) {
        match self {
            EitherWal::Mem(w) => WalBackend::truncate_before(w, cutoff),
            EitherWal::File(w) => WalBackend::truncate_before(w, cutoff),
        }
    }

    fn storage_bytes(&self) -> u64 {
        match self {
            EitherWal::Mem(w) => WalBackend::storage_bytes(w),
            EitherWal::File(w) => WalBackend::storage_bytes(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    fn cfg(dir: &TempDir) -> FileWalConfig {
        // Logical-crash tests: fsync adds nothing (we never kill the
        // machine) but costs seconds of test time.
        FileWalConfig::new(dir.path()).without_fsync()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_persists_across_reopen() {
        let dir = TempDir::new("filewal-reopen");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            assert_eq!(wal.append(10), Lsn(0));
            assert_eq!(wal.append(20), Lsn(1));
            wal.buffer(30);
            // Buffered but never forced: must not survive.
        }
        let wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(wal.records(), &[10, 20]);
        assert_eq!(wal.start_lsn(), Lsn(0));
    }

    #[test]
    fn group_commit_is_one_frame_batch_per_force() {
        let dir = TempDir::new("filewal-batch");
        let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        for i in 0..10 {
            wal.buffer(i);
        }
        assert_eq!(WalBackend::force(&mut wal), 10);
        assert_eq!(wal.forces(), 1);
        let reopened: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(reopened.records(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn segments_roll_and_truncate() {
        let dir = TempDir::new("filewal-roll");
        let mut wal: FileWal<u64> = FileWal::open(cfg(&dir).with_segment_bytes(64)).unwrap();
        for i in 0..40u64 {
            wal.append(i);
        }
        assert!(wal.segment_count() > 2, "tiny segments must roll");
        let before = wal.storage_bytes();
        wal.truncate_before(Lsn(30));
        assert!(wal.storage_bytes() < before, "truncation frees bytes");
        // Whole-segment granularity: everything >= 30 retained, start
        // may be earlier but never later.
        assert!(wal.start_lsn() <= Lsn(30));
        assert_eq!(*wal.records().last().unwrap(), 39);
        assert_eq!(wal.get(Lsn(39)), Some(&39));
        // LSNs stay stable across reopen after truncation.
        drop(wal);
        let wal: FileWal<u64> = FileWal::open(cfg(&dir).with_segment_bytes(64)).unwrap();
        assert!(wal.start_lsn() <= Lsn(30));
        assert_eq!(wal.get(Lsn(39)), Some(&39));
        assert_eq!(wal.get(Lsn(0)), None);
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let dir = TempDir::new("filewal-torn");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1);
            wal.append(2);
        }
        // Simulate a crash mid-write: append half a frame.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[5, 0, 0, 0, 0xAA]).unwrap(); // len=5, partial crc
        drop(f);
        let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(wal.records(), &[1, 2], "whole frames survive the tear");
        // The log keeps working after repair.
        assert_eq!(wal.append(3), Lsn(2));
        drop(wal);
        let wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(wal.records(), &[1, 2, 3]);
    }

    #[test]
    fn checksum_damage_in_tail_is_torn_not_fatal() {
        let dir = TempDir::new("filewal-crc-tail");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1);
            wal.append(2);
        }
        // Flip a payload byte of the LAST frame.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(wal.records(), &[1], "damaged tail frame dropped");
    }

    #[test]
    fn damage_inside_acknowledged_bytes_of_the_active_segment_is_corruption() {
        let dir = TempDir::new("filewal-acked-rot");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1);
            wal.append(2);
            wal.append(3);
        }
        // Flip a payload byte of the FIRST record: two intact boundary
        // markers follow it, proving those bytes were acknowledged.
        // Pre-marker formats had to shrug this off as a "tear" and
        // silently truncate acknowledged records; now it is reported.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        data[FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let err = FileWal::<u64>::open(cfg(&dir)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("acknowledged"), "{err}");
    }

    #[test]
    fn damaged_marker_before_an_intact_one_is_corruption() {
        let dir = TempDir::new("filewal-marker-rot");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1);
            wal.append(2);
        }
        // Flip a byte inside the FIRST marker's payload (right after
        // frame 1): the second force's marker still proves the damage
        // is in acknowledged territory.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        let f1 = FRAME_HEADER + 8; // one u64 record frame
        data[f1 + FRAME_HEADER + 4] ^= 0xFF; // marker payload byte
        fs::write(&seg, &data).unwrap();
        let err = FileWal::<u64>::open(cfg(&dir)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn torn_tail_drops_intact_frames_of_the_unacknowledged_batch() {
        let dir = TempDir::new("filewal-torn-batch");
        let marker_end;
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1); // batch 1: acknowledged
            marker_end = wal.storage_bytes();
            wal.buffer(2);
            wal.buffer(3);
            wal.buffer(4);
            WalBackend::force(&mut wal); // batch 2
        }
        // Simulate a crash that persisted an arbitrary subset of batch
        // 2's pages: its closing marker is gone and its middle frame is
        // garbage, but its first frame (record 2) is intact.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        let f2_end = marker_end as usize + FRAME_HEADER + 8;
        data[f2_end + FRAME_HEADER] ^= 0xFF; // tear record 3
        data.truncate(f2_end + 2 * (FRAME_HEADER + 8)); // lose the marker
        fs::write(&seg, &data).unwrap();
        let wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(
            wal.records(),
            &[1],
            "the whole unacknowledged batch goes, intact frames included"
        );
    }

    #[test]
    fn clean_prefix_of_an_unmarked_batch_is_rolled_back() {
        let dir = TempDir::new("filewal-unmarked");
        let marker_end;
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
            wal.append(1);
            marker_end = wal.storage_bytes();
            wal.append(2);
        }
        // A crash that persisted exactly batch 2's record frame but not
        // its marker: frame-clean EOF, yet never acknowledged.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        data.truncate(marker_end as usize + FRAME_HEADER + 8);
        fs::write(&seg, &data).unwrap();
        let mut wal: FileWal<u64> = FileWal::open(cfg(&dir)).unwrap();
        assert_eq!(wal.records(), &[1], "unmarked tail is not acknowledged");
        assert_eq!(wal.append(5), Lsn(1), "the log continues from the boundary");
    }

    #[test]
    fn mid_log_damage_is_corruption() {
        let dir = TempDir::new("filewal-corrupt");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir).with_segment_bytes(16)).unwrap();
            for i in 0..8u64 {
                wal.append(i);
            }
            assert!(wal.segment_count() >= 2);
        }
        // Damage the FIRST segment (not the last): no torn-tail excuse.
        let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        data[FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let err = FileWal::<u64>::open(cfg(&dir).with_segment_bytes(16)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn lsn_gap_between_segments_is_corruption() {
        let dir = TempDir::new("filewal-gap");
        {
            let mut wal: FileWal<u64> = FileWal::open(cfg(&dir).with_segment_bytes(16)).unwrap();
            for i in 0..8u64 {
                wal.append(i);
            }
        }
        // Remove a middle segment.
        let mut segs: Vec<PathBuf> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        assert!(segs.len() >= 3);
        fs::remove_file(&segs[1]).unwrap();
        let err = FileWal::<u64>::open(cfg(&dir).with_segment_bytes(16)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn either_wal_switches_backends() {
        let dir = TempDir::new("filewal-either");
        let mut mem: EitherWal<u64> = EitherWal::Mem(crate::Wal::new());
        let mut file: EitherWal<u64> = EitherWal::File(FileWal::open(cfg(&dir)).unwrap());
        for w in [&mut mem, &mut file] {
            w.buffer(1);
            w.buffer(2);
            assert_eq!(w.force(), 2);
            assert_eq!(w.records(), &[1, 2]);
        }
        assert_eq!(mem.storage_bytes(), 0);
        assert!(file.storage_bytes() > 0);
    }
}
