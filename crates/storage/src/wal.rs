//! Write-ahead log: the backend contract and the in-memory model.
//!
//! Commit protocols are defined by what survives a crash: a participant
//! that answered an ack must still know, after recovering, that it did.
//! [`WalBackend`] is that durability contract behind a `buffer`/`force`
//! API; [`Wal`] is the deterministic in-memory model the simulator runs
//! on (see DESIGN.md §2), and [`crate::FileWal`] is the disk-backed
//! implementation whose `force` is a real `fsync`. The protocols depend
//! only on the contract — a forced record survives any crash, a
//! buffered one does not — which every backend preserves exactly.
//!
//! ## Group commit
//!
//! A force is the expensive operation on a real log device, and its cost
//! is per-*flush*, not per-record. [`WalBackend::buffer`] stages a
//! record without forcing it; [`WalBackend::force`] makes every staged
//! record durable in one flush. Records still buffered when the site
//! crashes are lost ([`WalBackend::lose_volatile`]) — exactly the window
//! a node must cover by withholding acknowledgements until the force
//! returns. [`WalBackend::forces`] counts flushes, which is the number
//! of `fsync`s a disk-backed log pays.
//!
//! ## Truncation
//!
//! [`WalBackend::truncate_before`] discards a durable prefix once a
//! checkpoint record has captured everything recovery would have learned
//! from it, bounding stable storage (see `docs/wal-format.md`). LSNs are
//! stable across truncation: the log's first retained record keeps its
//! original position ([`WalBackend::start_lsn`]).

use std::fmt;

/// Log sequence number: position of a record in the log, starting at 0.
/// Stable across truncation — truncating a prefix never renumbers the
/// suffix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// Iterator over a log's retained durable records with their LSNs,
/// returned by [`WalBackend::replay`].
#[derive(Debug)]
pub struct WalReplay<'a, R> {
    start: u64,
    iter: std::iter::Enumerate<std::slice::Iter<'a, R>>,
}

impl<'a, R> Iterator for WalReplay<'a, R> {
    type Item = (Lsn, &'a R);

    fn next(&mut self) -> Option<Self::Item> {
        self.iter
            .next()
            .map(|(i, r)| (Lsn(self.start + i as u64), r))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// The durability contract of an append-only, force-written log.
///
/// Implementations: [`Wal`] (in-memory, deterministic), [`crate::FileWal`]
/// (segment files + `fsync`), [`crate::EitherWal`] (runtime choice of
/// the two).
pub trait WalBackend<R> {
    /// Stages a record for the next [`WalBackend::force`]. The returned
    /// [`Lsn`] is the position the record will occupy once forced; until
    /// then it is volatile and a crash discards it.
    fn buffer(&mut self, record: R) -> Lsn;

    /// Flushes every buffered record to durable storage in one force.
    /// Returns the number of records made durable; zero means the buffer
    /// was empty and no force was paid.
    fn force(&mut self) -> usize;

    /// Discards buffered (not yet forced) records: the crash semantics
    /// of the volatile half of the log.
    fn lose_volatile(&mut self);

    /// Number of forces (flushes) performed so far.
    fn forces(&self) -> u64;

    /// Number of records staged but not yet durable.
    fn pending_len(&self) -> usize;

    /// LSN of the oldest retained durable record (0 until the first
    /// truncation).
    fn start_lsn(&self) -> Lsn;

    /// The retained durable records in log order; element `i` sits at
    /// LSN `start_lsn + i`.
    fn records(&self) -> &[R];

    /// Discards durable records below `cutoff`, keeping LSNs stable.
    /// A backend may retain *more* than asked (e.g. whole-segment
    /// granularity) but never less; replaying extra already-superseded
    /// prefix is always safe, losing suffix never is.
    fn truncate_before(&mut self, cutoff: Lsn);

    /// Bytes of stable storage currently occupied (0 for in-memory
    /// models) — the quantity truncation bounds.
    fn storage_bytes(&self) -> u64;

    /// Force-appends a record; durable on return. Any buffered records
    /// are flushed first (they precede this one in the log), all in the
    /// same single force.
    fn append(&mut self, record: R) -> Lsn {
        let lsn = self.buffer(record);
        self.force();
        lsn
    }

    /// Number of retained durable records in the log.
    fn len(&self) -> usize {
        self.records().len()
    }

    /// True when the log holds no retained durable records.
    fn is_empty(&self) -> bool {
        self.records().is_empty()
    }

    /// The LSN the next buffered record would occupy.
    fn next_lsn(&self) -> Lsn {
        Lsn(self.start_lsn().0 + self.records().len() as u64 + self.pending_len() as u64)
    }

    /// Replays the retained log from its start (recovery).
    fn replay(&self) -> WalReplay<'_, R> {
        WalReplay {
            start: self.start_lsn().0,
            iter: self.records().iter().enumerate(),
        }
    }

    /// The most recent durable record, if any.
    fn last(&self) -> Option<&R> {
        self.records().last()
    }

    /// The durable record at `lsn`, if retained.
    fn get(&self, lsn: Lsn) -> Option<&R> {
        let start = self.start_lsn().0;
        lsn.0
            .checked_sub(start)
            .and_then(|i| self.records().get(i as usize))
    }
}

/// The in-memory write-ahead log: the deterministic durability *model*
/// the simulator runs on. Durable records survive [`Wal::lose_volatile`]
/// (the crash operator); buffered records do not.
#[derive(Clone, Debug)]
pub struct Wal<R> {
    /// Durable records: survive any crash. `records[i]` is at LSN
    /// `start + i`.
    records: Vec<R>,
    /// Buffered records: staged for the next force, lost on crash.
    pending: Vec<R>,
    /// Number of flushes performed (the fsync count of a disk log).
    forces: u64,
    /// LSN of `records[0]` (0 until the first truncation).
    start: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            records: Vec::new(),
            pending: Vec::new(),
            forces: 0,
            start: 0,
        }
    }
}

impl<R: Clone> Wal<R> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force-appends a record; durable on return. Any buffered records
    /// are flushed first (they precede this one in the log), all in the
    /// same single force.
    pub fn append(&mut self, record: R) -> Lsn {
        self.pending.push(record);
        self.force();
        Lsn(self.start + self.records.len() as u64 - 1)
    }

    /// Stages a record for the next [`Wal::force`]. The returned [`Lsn`]
    /// is the position the record will occupy once forced; until then it
    /// is volatile and a crash discards it.
    pub fn buffer(&mut self, record: R) -> Lsn {
        let lsn = Lsn(self.start + (self.records.len() + self.pending.len()) as u64);
        self.pending.push(record);
        lsn
    }

    /// Flushes every buffered record to durable storage in one force.
    /// Returns the number of records made durable; zero means the buffer
    /// was empty and no force was paid.
    pub fn force(&mut self) -> usize {
        let n = self.pending.len();
        if n > 0 {
            self.records.append(&mut self.pending);
            self.forces += 1;
        }
        n
    }

    /// Discards buffered (not yet forced) records: the crash semantics
    /// of the volatile half of the log.
    pub fn lose_volatile(&mut self) {
        self.pending.clear();
    }

    /// Number of forces (flushes) performed so far.
    pub fn forces(&self) -> u64 {
        self.forces
    }

    /// Number of records staged but not yet durable.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of retained durable records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no retained durable records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// LSN of the oldest retained record (0 until the first truncation).
    pub fn start_lsn(&self) -> Lsn {
        Lsn(self.start)
    }

    /// Discards durable records below `cutoff` (exact; LSNs stay
    /// stable). Out-of-range cutoffs clamp: at most the whole durable
    /// log is discarded, never buffered records.
    pub fn truncate_before(&mut self, cutoff: Lsn) {
        let cut = cutoff
            .0
            .clamp(self.start, self.start + self.records.len() as u64);
        self.records.drain(..(cut - self.start) as usize);
        self.start = cut;
    }

    /// Replays the retained log from its start (recovery).
    pub fn replay(&self) -> impl Iterator<Item = (Lsn, &R)> {
        let start = self.start;
        self.records
            .iter()
            .enumerate()
            .map(move |(i, r)| (Lsn(start + i as u64), r))
    }

    /// Replays records at or after `from`.
    pub fn replay_from(&self, from: Lsn) -> impl Iterator<Item = (Lsn, &R)> {
        self.replay().filter(move |(l, _)| *l >= from)
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&R> {
        self.records.last()
    }

    /// The record at `lsn`, if retained.
    pub fn get(&self, lsn: Lsn) -> Option<&R> {
        lsn.0
            .checked_sub(self.start)
            .and_then(|i| self.records.get(i as usize))
    }
}

impl<R: Clone> WalBackend<R> for Wal<R> {
    fn buffer(&mut self, record: R) -> Lsn {
        Wal::buffer(self, record)
    }

    fn force(&mut self) -> usize {
        Wal::force(self)
    }

    fn lose_volatile(&mut self) {
        Wal::lose_volatile(self)
    }

    fn forces(&self) -> u64 {
        Wal::forces(self)
    }

    fn pending_len(&self) -> usize {
        Wal::pending_len(self)
    }

    fn start_lsn(&self) -> Lsn {
        Wal::start_lsn(self)
    }

    fn records(&self) -> &[R] {
        &self.records
    }

    fn truncate_before(&mut self, cutoff: Lsn) {
        Wal::truncate_before(self, cutoff)
    }

    fn storage_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_returns_consecutive_lsns() {
        let mut wal = Wal::new();
        assert_eq!(wal.append("a"), Lsn(0));
        assert_eq!(wal.append("b"), Lsn(1));
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn replay_preserves_order() {
        let mut wal = Wal::new();
        for r in ["x", "y", "z"] {
            wal.append(r);
        }
        let replayed: Vec<&str> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec!["x", "y", "z"]);
    }

    #[test]
    fn replay_from_skips_prefix() {
        let mut wal = Wal::new();
        for r in 0..5 {
            wal.append(r);
        }
        let tail: Vec<i32> = wal.replay_from(Lsn(3)).map(|(_, r)| *r).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn buffered_records_are_volatile_until_forced() {
        let mut wal = Wal::new();
        wal.buffer("a");
        wal.buffer("b");
        assert_eq!(wal.len(), 0);
        assert_eq!(wal.pending_len(), 2);
        assert_eq!(wal.force(), 2);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.forces(), 1);
        wal.buffer("c");
        wal.lose_volatile();
        assert_eq!(wal.force(), 0, "lost records must not be forced");
        assert_eq!(wal.forces(), 1, "empty force is free");
        let replayed: Vec<&str> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec!["a", "b"]);
    }

    #[test]
    fn append_flushes_buffer_in_one_force() {
        let mut wal = Wal::new();
        wal.buffer(1);
        wal.buffer(2);
        assert_eq!(wal.append(3), Lsn(2));
        assert_eq!(wal.forces(), 1);
        let replayed: Vec<i32> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec![1, 2, 3]);
    }

    #[test]
    fn buffer_lsn_anticipates_position() {
        let mut wal = Wal::new();
        wal.append("x");
        assert_eq!(wal.buffer("y"), Lsn(1));
        assert_eq!(wal.buffer("z"), Lsn(2));
        wal.force();
        assert_eq!(wal.get(Lsn(2)), Some(&"z"));
    }

    #[test]
    fn last_and_get() {
        let mut wal = Wal::new();
        assert!(wal.last().is_none());
        wal.append(10);
        wal.append(20);
        assert_eq!(wal.last(), Some(&20));
        assert_eq!(wal.get(Lsn(0)), Some(&10));
        assert_eq!(wal.get(Lsn(9)), None);
    }

    #[test]
    fn truncation_keeps_lsns_stable() {
        let mut wal = Wal::new();
        for r in 0..6 {
            wal.append(r);
        }
        wal.truncate_before(Lsn(4));
        assert_eq!(wal.start_lsn(), Lsn(4));
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.get(Lsn(3)), None, "truncated records are gone");
        assert_eq!(wal.get(Lsn(4)), Some(&4));
        let replayed: Vec<(Lsn, i32)> = wal.replay().map(|(l, r)| (l, *r)).collect();
        assert_eq!(replayed, vec![(Lsn(4), 4), (Lsn(5), 5)]);
        // New appends continue the original numbering.
        assert_eq!(wal.append(6), Lsn(6));
    }

    #[test]
    fn truncation_clamps_and_never_touches_pending() {
        let mut wal = Wal::new();
        wal.append(0);
        wal.buffer(1);
        wal.truncate_before(Lsn(99));
        assert_eq!(wal.len(), 0);
        assert_eq!(wal.pending_len(), 1, "buffered records are untouched");
        assert_eq!(wal.force(), 1);
        assert_eq!(wal.get(Lsn(1)), Some(&1));
        // Truncating below the start is a no-op.
        wal.truncate_before(Lsn(0));
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn trait_object_view_matches_inherent() {
        let mut wal: Wal<u32> = Wal::new();
        let w: &mut dyn WalBackend<u32> = &mut wal;
        w.buffer(7);
        assert_eq!(w.next_lsn(), Lsn(1));
        w.force();
        assert_eq!(w.len(), 1);
        assert_eq!(w.last(), Some(&7));
        assert_eq!(w.storage_bytes(), 0);
    }
}
