//! Write-ahead log.
//!
//! Commit protocols are defined by what survives a crash: a participant
//! that answered an ack must still know, after recovering, that it did.
//! The WAL models force-written stable storage — every [`Wal::append`]
//! is durable at return. The in-memory representation is a substitution
//! for a disk log (see DESIGN.md §2): the protocols depend only on the
//! *durability contract*, which `crash()`/`replay()` preserve exactly.
//!
//! ## Group commit
//!
//! A force is the expensive operation on a real log device, and its cost
//! is per-*flush*, not per-record. [`Wal::buffer`] stages a record
//! without forcing it; [`Wal::force`] makes every staged record durable
//! in one flush. Records still buffered when the site crashes are lost
//! ([`Wal::lose_volatile`]) — exactly the window a node must cover by
//! withholding acknowledgements until the force returns. [`Wal::forces`]
//! counts flushes, which is the number a disk-backed log would pay
//! an fsync for.

use std::fmt;

/// Log sequence number: position of a record in the log, starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// An append-only, force-written log of records `R`.
#[derive(Clone, Debug)]
pub struct Wal<R> {
    /// Durable records: survive any crash.
    records: Vec<R>,
    /// Buffered records: staged for the next force, lost on crash.
    pending: Vec<R>,
    /// Number of flushes performed (the fsync count of a disk log).
    forces: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            records: Vec::new(),
            pending: Vec::new(),
            forces: 0,
        }
    }
}

impl<R: Clone> Wal<R> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force-appends a record; durable on return. Any buffered records
    /// are flushed first (they precede this one in the log), all in the
    /// same single force.
    pub fn append(&mut self, record: R) -> Lsn {
        self.pending.push(record);
        self.force();
        Lsn(self.records.len() as u64 - 1)
    }

    /// Stages a record for the next [`Wal::force`]. The returned [`Lsn`]
    /// is the position the record will occupy once forced; until then it
    /// is volatile and a crash discards it.
    pub fn buffer(&mut self, record: R) -> Lsn {
        let lsn = Lsn((self.records.len() + self.pending.len()) as u64);
        self.pending.push(record);
        lsn
    }

    /// Flushes every buffered record to durable storage in one force.
    /// Returns the number of records made durable; zero means the buffer
    /// was empty and no force was paid.
    pub fn force(&mut self) -> usize {
        let n = self.pending.len();
        if n > 0 {
            self.records.append(&mut self.pending);
            self.forces += 1;
        }
        n
    }

    /// Discards buffered (not yet forced) records: the crash semantics
    /// of the volatile half of the log.
    pub fn lose_volatile(&mut self) {
        self.pending.clear();
    }

    /// Number of forces (flushes) performed so far.
    pub fn forces(&self) -> u64 {
        self.forces
    }

    /// Number of records staged but not yet durable.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of durable records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no durable records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replays the log from the beginning (recovery).
    pub fn replay(&self) -> impl Iterator<Item = (Lsn, &R)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (Lsn(i as u64), r))
    }

    /// Replays records at or after `from`.
    pub fn replay_from(&self, from: Lsn) -> impl Iterator<Item = (Lsn, &R)> {
        self.replay().filter(move |(l, _)| *l >= from)
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&R> {
        self.records.last()
    }

    /// The record at `lsn`.
    pub fn get(&self, lsn: Lsn) -> Option<&R> {
        self.records.get(lsn.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_returns_consecutive_lsns() {
        let mut wal = Wal::new();
        assert_eq!(wal.append("a"), Lsn(0));
        assert_eq!(wal.append("b"), Lsn(1));
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn replay_preserves_order() {
        let mut wal = Wal::new();
        for r in ["x", "y", "z"] {
            wal.append(r);
        }
        let replayed: Vec<&str> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec!["x", "y", "z"]);
    }

    #[test]
    fn replay_from_skips_prefix() {
        let mut wal = Wal::new();
        for r in 0..5 {
            wal.append(r);
        }
        let tail: Vec<i32> = wal.replay_from(Lsn(3)).map(|(_, r)| *r).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn buffered_records_are_volatile_until_forced() {
        let mut wal = Wal::new();
        wal.buffer("a");
        wal.buffer("b");
        assert_eq!(wal.len(), 0);
        assert_eq!(wal.pending_len(), 2);
        assert_eq!(wal.force(), 2);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.forces(), 1);
        wal.buffer("c");
        wal.lose_volatile();
        assert_eq!(wal.force(), 0, "lost records must not be forced");
        assert_eq!(wal.forces(), 1, "empty force is free");
        let replayed: Vec<&str> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec!["a", "b"]);
    }

    #[test]
    fn append_flushes_buffer_in_one_force() {
        let mut wal = Wal::new();
        wal.buffer(1);
        wal.buffer(2);
        assert_eq!(wal.append(3), Lsn(2));
        assert_eq!(wal.forces(), 1);
        let replayed: Vec<i32> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec![1, 2, 3]);
    }

    #[test]
    fn buffer_lsn_anticipates_position() {
        let mut wal = Wal::new();
        wal.append("x");
        assert_eq!(wal.buffer("y"), Lsn(1));
        assert_eq!(wal.buffer("z"), Lsn(2));
        wal.force();
        assert_eq!(wal.get(Lsn(2)), Some(&"z"));
    }

    #[test]
    fn last_and_get() {
        let mut wal = Wal::new();
        assert!(wal.last().is_none());
        wal.append(10);
        wal.append(20);
        assert_eq!(wal.last(), Some(&20));
        assert_eq!(wal.get(Lsn(0)), Some(&10));
        assert_eq!(wal.get(Lsn(9)), None);
    }
}
