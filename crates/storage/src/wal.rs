//! Write-ahead log.
//!
//! Commit protocols are defined by what survives a crash: a participant
//! that answered an ack must still know, after recovering, that it did.
//! The WAL models force-written stable storage — every [`Wal::append`]
//! is durable at return. The in-memory representation is a substitution
//! for a disk log (see DESIGN.md §2): the protocols depend only on the
//! *durability contract*, which `crash()`/`replay()` preserve exactly.

use std::fmt;

/// Log sequence number: position of a record in the log, starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// An append-only, force-written log of records `R`.
#[derive(Clone, Debug)]
pub struct Wal<R> {
    records: Vec<R>,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            records: Vec::new(),
        }
    }
}

impl<R: Clone> Wal<R> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force-appends a record; durable on return.
    pub fn append(&mut self, record: R) -> Lsn {
        let lsn = Lsn(self.records.len() as u64);
        self.records.push(record);
        lsn
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replays the log from the beginning (recovery).
    pub fn replay(&self) -> impl Iterator<Item = (Lsn, &R)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (Lsn(i as u64), r))
    }

    /// Replays records at or after `from`.
    pub fn replay_from(&self, from: Lsn) -> impl Iterator<Item = (Lsn, &R)> {
        self.replay().filter(move |(l, _)| *l >= from)
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&R> {
        self.records.last()
    }

    /// The record at `lsn`.
    pub fn get(&self, lsn: Lsn) -> Option<&R> {
        self.records.get(lsn.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_returns_consecutive_lsns() {
        let mut wal = Wal::new();
        assert_eq!(wal.append("a"), Lsn(0));
        assert_eq!(wal.append("b"), Lsn(1));
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn replay_preserves_order() {
        let mut wal = Wal::new();
        for r in ["x", "y", "z"] {
            wal.append(r);
        }
        let replayed: Vec<&str> = wal.replay().map(|(_, r)| *r).collect();
        assert_eq!(replayed, vec!["x", "y", "z"]);
    }

    #[test]
    fn replay_from_skips_prefix() {
        let mut wal = Wal::new();
        for r in 0..5 {
            wal.append(r);
        }
        let tail: Vec<i32> = wal.replay_from(Lsn(3)).map(|(_, r)| *r).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn last_and_get() {
        let mut wal = Wal::new();
        assert!(wal.last().is_none());
        wal.append(10);
        wal.append(20);
        assert_eq!(wal.last(), Some(&20));
        assert_eq!(wal.get(Lsn(0)), Some(&10));
        assert_eq!(wal.get(Lsn(9)), None);
    }
}
