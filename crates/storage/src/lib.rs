//! # qbc-storage — per-site stable storage
//!
//! The durability substrate beneath the commit protocols: a force-written
//! [`Wal`] (what a participant knows after recovering is exactly what it
//! logged before crashing), a [`VersionedStore`] implementing Gifford's
//! version-number currency rule, and [`SiteStorage`] combining both with
//! crash/incarnation semantics.
//!
//! The WAL is a pluggable [`WalBackend`]: the paper assumes disk-based
//! stable storage, which [`FileWal`] provides directly (append-only
//! segment files, checksummed frames, `fsync` on force, torn-tail
//! repair, checkpoint-driven prefix truncation — see
//! `docs/wal-format.md`), while the in-memory [`Wal`] models the same
//! durable/volatile split deterministically for the simulator
//! (DESIGN.md §2). The protocols depend only on the durability
//! contract — a logged record survives any crash, an unlogged state
//! does not — which every backend preserves exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
mod file;
mod site;
mod store;
pub mod temp;
mod wal;

pub use codec::WalCodec;
pub use file::{crc32, EitherWal, FileWal, FileWalConfig, WalError};
pub use site::SiteStorage;
pub use store::{StoreError, VersionedStore};
pub use temp::TempDir;
pub use wal::{Lsn, Wal, WalBackend, WalReplay};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbc_votes::{ItemId, Version};

    proptest! {
        /// Replay returns exactly the appended sequence, in order, for
        /// any append pattern interleaved with crashes.
        #[test]
        fn replay_is_exact_history(
            ops in proptest::collection::vec((0u8..3, 0u32..100), 0..60)
        ) {
            let mut st: SiteStorage<u32, i64> = SiteStorage::new();
            let mut expected = Vec::new();
            for (kind, val) in ops {
                match kind {
                    0 | 1 => {
                        st.log(val);
                        expected.push(val);
                    }
                    _ => st.crash(),
                }
            }
            let replayed: Vec<u32> = st.wal().replay().map(|(_, r)| *r).collect();
            prop_assert_eq!(replayed, expected);
        }

        /// Group commit changes *when* records become durable, never
        /// *what* the durable log contains: for any interleaving of
        /// buffered appends, forces, forced appends and crashes, the
        /// batched WAL replays byte-identically to an unbatched WAL that
        /// receives each record at its force point.
        #[test]
        fn batched_replay_equals_unbatched_replay(
            ops in proptest::collection::vec((0u8..4, 0u32..100), 0..80)
        ) {
            let mut batched: SiteStorage<u32, i64> = SiteStorage::new();
            let mut unbatched: SiteStorage<u32, i64> = SiteStorage::new();
            // Records staged in `batched` but not yet forced; the
            // unbatched reference receives them only at the force.
            let mut staged: Vec<u32> = Vec::new();
            for (kind, val) in ops {
                match kind {
                    0 => {
                        batched.log_buffered(val);
                        staged.push(val);
                    }
                    1 => {
                        let n = batched.force_log();
                        prop_assert_eq!(n, staged.len());
                        for r in staged.drain(..) {
                            unbatched.log(r);
                        }
                    }
                    2 => {
                        // Forced append: flushes the batch, then itself.
                        batched.log(val);
                        for r in staged.drain(..) {
                            unbatched.log(r);
                        }
                        unbatched.log(val);
                    }
                    _ => {
                        // Crash: buffered records die with the site.
                        batched.crash();
                        unbatched.crash();
                        staged.clear();
                    }
                }
                let b: Vec<u32> =
                    batched.wal().replay().map(|(_, r)| *r).collect();
                let u: Vec<u32> =
                    unbatched.wal().replay().map(|(_, r)| *r).collect();
                prop_assert_eq!(b, u);
            }
        }

        /// A force is paid only when records are pending, so the force
        /// count never exceeds the record count — batching can only
        /// reduce flushes relative to one-force-per-record.
        #[test]
        fn forces_never_exceed_durable_records(
            ops in proptest::collection::vec((0u8..3, 0u32..100), 0..80)
        ) {
            let mut st: SiteStorage<u32, i64> = SiteStorage::new();
            for (kind, val) in ops {
                match kind {
                    0 => {
                        st.log_buffered(val);
                    }
                    1 => {
                        st.force_log();
                    }
                    _ => {
                        st.log(val);
                    }
                }
            }
            st.force_log();
            prop_assert!(st.wal_forces() <= st.wal().len() as u64);
        }

        /// A disk log is the same log: for any interleaving of buffered
        /// appends, forces, forced appends, logical crashes and
        /// truncations, [`FileWal`] replays exactly what the in-memory
        /// model replays (file truncation is whole-segment, so the file
        /// may retain a longer prefix — the in-memory log's records must
        /// be a suffix of the file's), and a reopen recovers the same
        /// durable records.
        #[test]
        fn file_backend_replays_like_memory(
            ops in proptest::collection::vec((0u8..5, 0u32..100), 0..60)
        ) {
            let dir = TempDir::new("storage-prop");
            let cfg = FileWalConfig::new(dir.path())
                .without_fsync()
                .with_segment_bytes(48);
            let mut mem: Wal<u32> = Wal::new();
            let mut file: FileWal<u32> = FileWal::open(cfg.clone()).unwrap();
            for (kind, val) in ops {
                match kind {
                    0 => {
                        mem.buffer(val);
                        WalBackend::buffer(&mut file, val);
                    }
                    1 => {
                        mem.force();
                        WalBackend::force(&mut file);
                    }
                    2 => {
                        mem.append(val);
                        WalBackend::append(&mut file, val);
                    }
                    3 => {
                        mem.lose_volatile();
                        WalBackend::lose_volatile(&mut file);
                    }
                    _ => {
                        let cutoff = Lsn(val as u64 % (mem.len() as u64 + 1)
                            + mem.start_lsn().0);
                        mem.truncate_before(cutoff);
                        WalBackend::truncate_before(&mut file, cutoff);
                    }
                }
                prop_assert!(file.start_lsn() <= mem.start_lsn());
                let fr = WalBackend::records(&file);
                let tail = &fr[fr.len() - mem.len()..];
                prop_assert_eq!(tail, WalBackend::records(&mem));
            }
            // A reopen (process restart) recovers the same durable log.
            let end = file.start_lsn().0 + WalBackend::len(&file) as u64;
            let survivors: Vec<u32> = WalBackend::records(&file).to_vec();
            let start = file.start_lsn();
            drop(file);
            let reopened: FileWal<u32> = FileWal::open(cfg).unwrap();
            prop_assert_eq!(reopened.start_lsn(), start);
            prop_assert_eq!(
                reopened.start_lsn().0 + WalBackend::len(&reopened) as u64,
                end
            );
            prop_assert_eq!(WalBackend::records(&reopened), &survivors[..]);
        }

        /// Force-boundary markers make torn-tail recovery *exact*: for
        /// any batch pattern, truncating the file anywhere inside the
        /// final (possibly multi-frame) batch region recovers exactly
        /// the acknowledged records — never a partial batch, never an
        /// acknowledged record lost.
        #[test]
        fn torn_tails_recover_exactly_the_acknowledged_batches(
            batches in proptest::collection::vec(1usize..4, 1..6),
            tear_pct in 0u64..100,
        ) {
            let dir = TempDir::new("storage-torn-prop");
            let cfg = FileWalConfig::new(dir.path()).without_fsync();
            let mut file: FileWal<u32> = FileWal::open(cfg.clone()).unwrap();
            let mut next = 0u32;
            let mut acked: Vec<u32> = Vec::new();
            let (tail, head) = batches.split_last().unwrap();
            for &n in head {
                for _ in 0..n {
                    WalBackend::buffer(&mut file, next);
                    acked.push(next);
                    next += 1;
                }
                WalBackend::force(&mut file);
            }
            let acked_bytes = file.storage_bytes();
            for _ in 0..*tail {
                WalBackend::buffer(&mut file, next);
                next += 1;
            }
            WalBackend::force(&mut file);
            let total = file.storage_bytes();
            drop(file);
            // Tear at an arbitrary point inside the final batch: at
            // least its closing marker's last byte is lost, so it was
            // never acknowledged.
            let keep = acked_bytes + (total - acked_bytes) * tear_pct / 100;
            let keep = keep.min(total - 1);
            let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
            let mut data = std::fs::read(&seg).unwrap();
            data.truncate(keep as usize);
            std::fs::write(&seg, &data).unwrap();
            let reopened: FileWal<u32> = FileWal::open(cfg).unwrap();
            prop_assert_eq!(WalBackend::records(&reopened), &acked[..]);
        }

        /// Any single-bit flip strictly before the final force-boundary
        /// marker damages *acknowledged* bytes, and open reports
        /// `WalError::Corrupt` instead of silently truncating the log.
        #[test]
        fn acknowledged_damage_is_always_reported(
            batches in proptest::collection::vec(1usize..4, 1..6),
            pos_pct in 0u64..100,
            bit in 0u32..8,
        ) {
            let dir = TempDir::new("storage-rot-prop");
            let cfg = FileWalConfig::new(dir.path()).without_fsync();
            let mut file: FileWal<u32> = FileWal::open(cfg.clone()).unwrap();
            let mut next = 0u32;
            for &n in &batches {
                for _ in 0..n {
                    WalBackend::buffer(&mut file, next);
                    next += 1;
                }
                WalBackend::force(&mut file);
            }
            let total = file.storage_bytes();
            drop(file);
            // Flip one bit anywhere before the final marker (which
            // stays intact and proves everything before it was acked).
            let span = total - crate::file::MARKER_SIZE as u64;
            let pos = ((span - 1) * pos_pct / 100) as usize;
            let seg = dir.path().join(format!("wal-{:016x}.seg", 0));
            let mut data = std::fs::read(&seg).unwrap();
            data[pos] ^= 1 << bit;
            std::fs::write(&seg, &data).unwrap();
            let err = FileWal::<u32>::open(cfg).unwrap_err();
            prop_assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
        }

        /// The store never goes backwards: after any sequence of applies,
        /// the stored version equals the maximum successfully applied.
        #[test]
        fn versions_are_monotone(
            versions in proptest::collection::vec(1u64..50, 1..40)
        ) {
            let mut st: SiteStorage<u32, u64> = SiteStorage::new();
            st.initialize_item(ItemId(0), 0);
            let mut high = 0u64;
            for v in versions {
                let res = st.apply_update(ItemId(0), Version(v), v);
                if v > high {
                    prop_assert!(res.is_ok());
                    high = v;
                } else {
                    prop_assert!(res.is_err());
                }
                prop_assert_eq!(st.item_version(ItemId(0)), Some(Version(high)));
            }
        }
    }
}
