//! # qbc-storage — per-site stable storage
//!
//! The durability substrate beneath the commit protocols: a force-written
//! [`Wal`] (what a participant knows after recovering is exactly what it
//! logged before crashing), a [`VersionedStore`] implementing Gifford's
//! version-number currency rule, and [`SiteStorage`] combining both with
//! crash/incarnation semantics.
//!
//! Substitution note (DESIGN.md §2): the paper assumes disk-based stable
//! storage; we model it in memory with an explicit durable/volatile
//! split. The protocols depend only on the durability contract — a
//! logged record survives any crash, an unlogged state does not — which
//! this crate preserves exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod site;
mod store;
mod wal;

pub use site::SiteStorage;
pub use store::{StoreError, VersionedStore};
pub use wal::{Lsn, Wal};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbc_votes::{ItemId, Version};

    proptest! {
        /// Replay returns exactly the appended sequence, in order, for
        /// any append pattern interleaved with crashes.
        #[test]
        fn replay_is_exact_history(
            ops in proptest::collection::vec((0u8..3, 0u32..100), 0..60)
        ) {
            let mut st: SiteStorage<u32, i64> = SiteStorage::new();
            let mut expected = Vec::new();
            for (kind, val) in ops {
                match kind {
                    0 | 1 => {
                        st.log(val);
                        expected.push(val);
                    }
                    _ => st.crash(),
                }
            }
            let replayed: Vec<u32> = st.wal().replay().map(|(_, r)| *r).collect();
            prop_assert_eq!(replayed, expected);
        }

        /// The store never goes backwards: after any sequence of applies,
        /// the stored version equals the maximum successfully applied.
        #[test]
        fn versions_are_monotone(
            versions in proptest::collection::vec(1u64..50, 1..40)
        ) {
            let mut st: SiteStorage<u32, u64> = SiteStorage::new();
            st.initialize_item(ItemId(0), 0);
            let mut high = 0u64;
            for v in versions {
                let res = st.apply_update(ItemId(0), Version(v), v);
                if v > high {
                    prop_assert!(res.is_ok());
                    high = v;
                } else {
                    prop_assert!(res.is_err());
                }
                prop_assert_eq!(st.item_version(ItemId(0)), Some(Version(high)));
            }
        }
    }
}
