//! Versioned item store.
//!
//! Each site durably stores the copies it replicates, tagged with
//! Gifford version numbers: "Version numbers are used to identify the
//! most recent copy" (paper, §2). Writes carry the version computed by
//! the writing transaction (max version read + 1); the store rejects
//! regressions, making replica divergence detectable.
//!
//! The store is multi-version: each item keeps a bounded chain of
//! committed `(version, value)` pairs in ascending version order, so
//! snapshot reads can answer at a commit-stable watermark while the
//! newest version is still pinned by the commit protocol. The chain
//! length is bounded by `retention` (default 1, i.e. the classic
//! single-slot behaviour) and further trimmed by [`VersionedStore::
//! gc_below`] once a watermark has passed a version.

use qbc_votes::{FastMap, ItemId, Version};

/// Error applying a versioned write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An update carried a version not newer than the stored copy.
    VersionRegression {
        /// Item being written.
        item: ItemId,
        /// Version currently stored.
        stored: Version,
        /// Version offered by the write.
        offered: Version,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::VersionRegression {
                item,
                stored,
                offered,
            } => write!(
                f,
                "version regression on {item}: stored {stored:?}, offered {offered:?}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// A durable map from item to a bounded chain of `(version, value)`
/// pairs (ascending, newest last) for the copies a site replicates.
/// Copies are keyed by a deterministic hash map: the store sits on the
/// per-message hot path (version witnesses, update installs) and is
/// only ever read by key; [`VersionedStore::items`] sorts, so no
/// observer sees hash order and determinism is unaffected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedStore<V> {
    copies: FastMap<ItemId, Vec<(Version, V)>>,
    retention: usize,
}

impl<V> Default for VersionedStore<V> {
    fn default() -> Self {
        VersionedStore {
            copies: FastMap::default(),
            retention: 1,
        }
    }
}

impl<V: Clone> VersionedStore<V> {
    /// An empty store retaining one version per item (the classic
    /// single-slot behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store retaining up to `retention` versions per item
    /// (clamped to at least 1).
    pub fn with_retention(retention: usize) -> Self {
        VersionedStore {
            copies: FastMap::default(),
            retention: retention.max(1),
        }
    }

    /// Changes the retention bound (clamped to at least 1). Existing
    /// chains are trimmed lazily on the next write to each item.
    pub fn set_retention(&mut self, retention: usize) {
        self.retention = retention.max(1);
    }

    /// Maximum number of versions retained per item.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Initialises a copy at `Version::INITIAL` (database load time).
    pub fn initialize(&mut self, item: ItemId, value: V) {
        self.copies.insert(item, vec![(Version::INITIAL, value)]);
    }

    /// The newest stored `(version, value)` of an item, if this site
    /// has a copy.
    pub fn read(&self, item: ItemId) -> Option<(Version, &V)> {
        self.copies
            .get(&item)
            .and_then(|chain| chain.last())
            .map(|(v, val)| (*v, val))
    }

    /// The newest stored version ≤ `at`, or — when every retained
    /// version is newer — the oldest retained version. The fallback
    /// keeps reads total (a copy always answers) and monotone per
    /// site: a chain's oldest entry only ever advances.
    pub fn read_at(&self, item: ItemId, at: Version) -> Option<(Version, &V)> {
        let chain = self.copies.get(&item)?;
        chain
            .iter()
            .rev()
            .find(|(v, _)| *v <= at)
            .or_else(|| chain.first())
            .map(|(v, val)| (*v, val))
    }

    /// The newest stored version only.
    pub fn version(&self, item: ItemId) -> Option<Version> {
        self.read(item).map(|(v, _)| v)
    }

    /// The full retained chain of an item, ascending by version.
    pub fn versions(&self, item: ItemId) -> Option<&[(Version, V)]> {
        self.copies.get(&item).map(|chain| chain.as_slice())
    }

    /// Applies a committed write. The offered version must exceed the
    /// newest stored one (write quorums make concurrent equal versions
    /// impossible; a regression indicates a protocol bug). Superseded
    /// versions beyond the retention bound are dropped oldest-first.
    pub fn apply(&mut self, item: ItemId, version: Version, value: V) -> Result<(), StoreError> {
        match self.copies.get_mut(&item) {
            Some(chain) => {
                if let Some((stored, _)) = chain.last() {
                    if *stored >= version {
                        return Err(StoreError::VersionRegression {
                            item,
                            stored: *stored,
                            offered: version,
                        });
                    }
                }
                chain.push((version, value));
                if chain.len() > self.retention {
                    let excess = chain.len() - self.retention;
                    chain.drain(..excess);
                }
                Ok(())
            }
            None => {
                self.copies.insert(item, vec![(version, value)]);
                Ok(())
            }
        }
    }

    /// Drops versions made unreachable by a watermark: for each item,
    /// entries strictly older than the newest version ≤ `watermark`
    /// can never be returned by [`VersionedStore::read_at`] again (the
    /// watermark is monotone) and are discarded. Entries newer than
    /// the watermark, and the newest-≤-watermark entry itself, stay.
    pub fn gc_below(&mut self, watermark: Version) {
        for chain in self.copies.values_mut() {
            if let Some(keep_from) = chain.iter().rposition(|(v, _)| *v <= watermark) {
                chain.drain(..keep_from);
            }
        }
    }

    /// Installs a recovered chain wholesale (checkpoint recovery). The
    /// chain must be ascending; entries at or below the newest already
    /// stored version are ignored via [`VersionedStore::apply`] rules.
    pub fn install_chain(&mut self, item: ItemId, chain: &[(Version, V)]) {
        for (v, val) in chain {
            let _ = self.apply(item, *v, val.clone());
        }
    }

    /// Items this site holds copies of, in id order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> {
        let mut items: Vec<ItemId> = self.copies.keys().copied().collect();
        items.sort_unstable();
        items.into_iter()
    }

    /// Number of items with at least one copy stored.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True when no copies are stored.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialize_and_read() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 100i64);
        assert_eq!(s.read(ItemId(1)), Some((Version::INITIAL, &100)));
        assert_eq!(s.read(ItemId(2)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_advances_version() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 0i64);
        s.apply(ItemId(1), Version(1), 5).unwrap();
        assert_eq!(s.read(ItemId(1)), Some((Version(1), &5)));
        assert_eq!(s.version(ItemId(1)), Some(Version(1)));
    }

    #[test]
    fn regression_rejected() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 0i64);
        s.apply(ItemId(1), Version(3), 5).unwrap();
        let err = s.apply(ItemId(1), Version(3), 9).unwrap_err();
        assert!(matches!(err, StoreError::VersionRegression { .. }));
        let err = s.apply(ItemId(1), Version(2), 9).unwrap_err();
        assert!(matches!(err, StoreError::VersionRegression { .. }));
        // Value unchanged.
        assert_eq!(s.read(ItemId(1)), Some((Version(3), &5)));
    }

    #[test]
    fn apply_to_missing_item_creates_copy() {
        // A site may receive a copy it did not originally host (e.g. on
        // catalog extension); apply installs it.
        let mut s = VersionedStore::new();
        s.apply(ItemId(9), Version(4), "v").unwrap();
        assert_eq!(s.read(ItemId(9)), Some((Version(4), &"v")));
    }

    #[test]
    fn default_retention_keeps_single_slot_semantics() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 0i64);
        for v in 1..=5u64 {
            s.apply(ItemId(1), Version(v), v as i64).unwrap();
            assert_eq!(s.versions(ItemId(1)).unwrap().len(), 1);
        }
        assert_eq!(s.read(ItemId(1)), Some((Version(5), &5)));
        // With only the newest retained, read_at below it falls back
        // to the oldest retained entry (which is the newest).
        assert_eq!(s.read_at(ItemId(1), Version(2)), Some((Version(5), &5)));
    }

    #[test]
    fn retention_bounds_chain_and_read_at_picks_newest_leq() {
        let mut s = VersionedStore::with_retention(3);
        s.initialize(ItemId(1), 0i64);
        for v in 1..=5u64 {
            s.apply(ItemId(1), Version(v), v as i64 * 10).unwrap();
        }
        // Chain holds versions 3, 4, 5.
        let chain: Vec<Version> = s
            .versions(ItemId(1))
            .unwrap()
            .iter()
            .map(|(v, _)| *v)
            .collect();
        assert_eq!(chain, vec![Version(3), Version(4), Version(5)]);
        assert_eq!(s.read_at(ItemId(1), Version(4)), Some((Version(4), &40)));
        assert_eq!(s.read_at(ItemId(1), Version(9)), Some((Version(5), &50)));
        // Below the oldest retained: fall back to the oldest.
        assert_eq!(s.read_at(ItemId(1), Version(1)), Some((Version(3), &30)));
        assert_eq!(s.read_at(ItemId(2), Version(1)), None);
    }

    #[test]
    fn gc_below_drops_superseded_versions_only() {
        let mut s = VersionedStore::with_retention(8);
        s.initialize(ItemId(1), 0i64);
        for v in 1..=4u64 {
            s.apply(ItemId(1), Version(v), v as i64).unwrap();
        }
        s.gc_below(Version(2));
        let chain: Vec<Version> = s
            .versions(ItemId(1))
            .unwrap()
            .iter()
            .map(|(v, _)| *v)
            .collect();
        // Version 2 (newest ≤ watermark) and everything newer survive.
        assert_eq!(chain, vec![Version(2), Version(3), Version(4)]);
        assert_eq!(s.read_at(ItemId(1), Version(2)), Some((Version(2), &2)));
        // A watermark below every entry drops nothing.
        let mut s2 = VersionedStore::with_retention(4);
        s2.apply(ItemId(1), Version(5), 1i64).unwrap();
        s2.apply(ItemId(1), Version(6), 2).unwrap();
        s2.gc_below(Version(3));
        assert_eq!(s2.versions(ItemId(1)).unwrap().len(), 2);
    }

    #[test]
    fn install_chain_is_idempotent_and_ordered() {
        let mut s = VersionedStore::with_retention(4);
        s.install_chain(ItemId(1), &[(Version(1), 10i64), (Version(3), 30)]);
        // Re-installing (recovery replay) is a no-op.
        s.install_chain(ItemId(1), &[(Version(1), 10), (Version(3), 30)]);
        let chain: Vec<Version> = s
            .versions(ItemId(1))
            .unwrap()
            .iter()
            .map(|(v, _)| *v)
            .collect();
        assert_eq!(chain, vec![Version(1), Version(3)]);
        assert_eq!(s.read_at(ItemId(1), Version(2)), Some((Version(1), &10)));
    }
}
