//! Versioned item store.
//!
//! Each site durably stores the copies it replicates, tagged with
//! Gifford version numbers: "Version numbers are used to identify the
//! most recent copy" (paper, §2). Writes carry the version computed by
//! the writing transaction (max version read + 1); the store rejects
//! regressions, making replica divergence detectable.

use qbc_votes::{FastMap, ItemId, Version};

/// Error applying a versioned write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An update carried a version not newer than the stored copy.
    VersionRegression {
        /// Item being written.
        item: ItemId,
        /// Version currently stored.
        stored: Version,
        /// Version offered by the write.
        offered: Version,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::VersionRegression {
                item,
                stored,
                offered,
            } => write!(
                f,
                "version regression on {item}: stored {stored:?}, offered {offered:?}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// A durable map from item to `(version, value)` for the copies a site
/// replicates.
/// Copies are keyed by a deterministic hash map: the store sits on the
/// per-message hot path (version witnesses, update installs) and is
/// only ever read by key; [`VersionedStore::items`] sorts, so no
/// observer sees hash order and determinism is unaffected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionedStore<V> {
    copies: FastMap<ItemId, (Version, V)>,
}

impl<V: Clone> VersionedStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore {
            copies: FastMap::default(),
        }
    }

    /// Initialises a copy at `Version::INITIAL` (database load time).
    pub fn initialize(&mut self, item: ItemId, value: V) {
        self.copies.insert(item, (Version::INITIAL, value));
    }

    /// The stored `(version, value)` of an item, if this site has a copy.
    pub fn read(&self, item: ItemId) -> Option<(Version, &V)> {
        self.copies.get(&item).map(|(v, val)| (*v, val))
    }

    /// The stored version only.
    pub fn version(&self, item: ItemId) -> Option<Version> {
        self.copies.get(&item).map(|(v, _)| *v)
    }

    /// Applies a committed write. The offered version must exceed the
    /// stored one (write quorums make concurrent equal versions
    /// impossible; a regression indicates a protocol bug).
    pub fn apply(&mut self, item: ItemId, version: Version, value: V) -> Result<(), StoreError> {
        match self.copies.get(&item) {
            Some((stored, _)) if *stored >= version => Err(StoreError::VersionRegression {
                item,
                stored: *stored,
                offered: version,
            }),
            _ => {
                self.copies.insert(item, (version, value));
                Ok(())
            }
        }
    }

    /// Items this site holds copies of, in id order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> {
        let mut items: Vec<ItemId> = self.copies.keys().copied().collect();
        items.sort_unstable();
        items.into_iter()
    }

    /// Number of copies stored.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True when no copies are stored.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialize_and_read() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 100i64);
        assert_eq!(s.read(ItemId(1)), Some((Version::INITIAL, &100)));
        assert_eq!(s.read(ItemId(2)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_advances_version() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 0i64);
        s.apply(ItemId(1), Version(1), 5).unwrap();
        assert_eq!(s.read(ItemId(1)), Some((Version(1), &5)));
        assert_eq!(s.version(ItemId(1)), Some(Version(1)));
    }

    #[test]
    fn regression_rejected() {
        let mut s = VersionedStore::new();
        s.initialize(ItemId(1), 0i64);
        s.apply(ItemId(1), Version(3), 5).unwrap();
        let err = s.apply(ItemId(1), Version(3), 9).unwrap_err();
        assert!(matches!(err, StoreError::VersionRegression { .. }));
        let err = s.apply(ItemId(1), Version(2), 9).unwrap_err();
        assert!(matches!(err, StoreError::VersionRegression { .. }));
        // Value unchanged.
        assert_eq!(s.read(ItemId(1)), Some((Version(3), &5)));
    }

    #[test]
    fn apply_to_missing_item_creates_copy() {
        // A site may receive a copy it did not originally host (e.g. on
        // catalog extension); apply installs it.
        let mut s = VersionedStore::new();
        s.apply(ItemId(9), Version(4), "v").unwrap();
        assert_eq!(s.read(ItemId(9)), Some((Version(4), &"v")));
    }
}
