//! Per-site stable storage: WAL + item store + crash semantics.
//!
//! [`SiteStorage`] is the durable half of a database site. The volatile
//! half (protocol engines, lock tables, in-flight buffers) lives in the
//! node and is destroyed by `crash()`; everything in here survives.
//! The `incarnation` counter distinguishes pre- and post-crash lifetimes
//! of a site (useful for debugging and for ignoring stale state).
//!
//! The WAL half is generic over its [`WalBackend`]: the deterministic
//! in-memory [`Wal`] by default (the simulator's durability model), or
//! a disk-backed [`crate::FileWal`]/[`crate::EitherWal`] when forces
//! should hit a real device.

use crate::store::{StoreError, VersionedStore};
use crate::wal::{Lsn, Wal, WalBackend};
use qbc_votes::{ItemId, Version};
use std::marker::PhantomData;

/// Durable state of one database site, generic over the log backend
/// `W` (in-memory [`Wal`] unless chosen otherwise).
#[derive(Clone, Debug, Default)]
pub struct SiteStorage<R, V, W = Wal<R>> {
    wal: W,
    items: VersionedStore<V>,
    incarnation: u32,
    _record: PhantomData<fn() -> R>,
}

impl<R, V: Clone, W: WalBackend<R> + Default> SiteStorage<R, V, W> {
    /// Empty storage for a fresh site (backends with a default empty
    /// state; a [`crate::FileWal`] is opened first and passed to
    /// [`SiteStorage::with_wal`]).
    pub fn new() -> Self {
        Self::with_wal(W::default())
    }
}

impl<R, V: Clone, W: WalBackend<R>> SiteStorage<R, V, W> {
    /// Storage over an already-opened log backend. A reopened disk log
    /// arrives with its recovered records; the caller replays them.
    pub fn with_wal(wal: W) -> Self {
        SiteStorage {
            wal,
            items: VersionedStore::new(),
            incarnation: 0,
            _record: PhantomData,
        }
    }

    /// Force-appends a log record (durable on return).
    pub fn log(&mut self, record: R) -> Lsn {
        self.wal.append(record)
    }

    /// Stages a log record for the next [`SiteStorage::force_log`]
    /// (group commit). Volatile until forced: a crash discards it.
    pub fn log_buffered(&mut self, record: R) -> Lsn {
        self.wal.buffer(record)
    }

    /// Forces every staged log record durable in one flush. Returns the
    /// number of records flushed (zero: nothing pending, no force paid).
    pub fn force_log(&mut self) -> usize {
        self.wal.force()
    }

    /// Number of WAL forces paid so far.
    pub fn wal_forces(&self) -> u64 {
        self.wal.forces()
    }

    /// Read-only view of the log for recovery.
    pub fn wal(&self) -> &W {
        &self.wal
    }

    /// Discards durable log records below `cutoff` (after a checkpoint
    /// record has captured everything recovery needed from them). See
    /// [`WalBackend::truncate_before`].
    pub fn truncate_log_before(&mut self, cutoff: Lsn) {
        self.wal.truncate_before(cutoff);
    }

    /// Installs an initial copy of an item (database load time).
    pub fn initialize_item(&mut self, item: ItemId, value: V) {
        self.items.initialize(item, value);
    }

    /// Applies a committed update durably.
    pub fn apply_update(
        &mut self,
        item: ItemId,
        version: Version,
        value: V,
    ) -> Result<(), StoreError> {
        self.items.apply(item, version, value)
    }

    /// Reads the newest local copy of an item.
    pub fn read_item(&self, item: ItemId) -> Option<(Version, &V)> {
        self.items.read(item)
    }

    /// Reads the newest local copy at or below `at` (snapshot read);
    /// falls back to the oldest retained version when all are newer.
    pub fn read_item_at(&self, item: ItemId, at: Version) -> Option<(Version, &V)> {
        self.items.read_at(item, at)
    }

    /// Version of the newest local copy of an item.
    pub fn item_version(&self, item: ItemId) -> Option<Version> {
        self.items.version(item)
    }

    /// Full retained version chain of an item, ascending.
    pub fn item_versions(&self, item: ItemId) -> Option<&[(Version, V)]> {
        self.items.versions(item)
    }

    /// Sets how many versions each item retains (≥ 1; default 1).
    pub fn set_version_retention(&mut self, retention: usize) {
        self.items.set_retention(retention);
    }

    /// Drops item versions a monotone watermark has made unreachable.
    pub fn gc_versions_below(&mut self, watermark: Version) {
        self.items.gc_below(watermark);
    }

    /// Installs a recovered version chain wholesale (checkpoint
    /// recovery); already-present versions are skipped.
    pub fn install_item_chain(&mut self, item: ItemId, chain: &[(Version, V)]) {
        self.items.install_chain(item, chain);
    }

    /// Items stored at this site.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.items()
    }

    /// Marks a crash: durable state is retained, buffered (unforced) log
    /// records are lost, and the incarnation counter is bumped. The
    /// caller is responsible for discarding its volatile state (the
    /// simulator invokes `Process::on_crash`).
    pub fn crash(&mut self) {
        self.wal.lose_volatile();
        self.incarnation += 1;
    }

    /// How many times this site has crashed.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Rec {
        Voted(u32),
        Committed(u32),
    }

    #[test]
    fn log_survives_crash() {
        let mut st: SiteStorage<Rec, i64> = SiteStorage::new();
        st.log(Rec::Voted(1));
        st.log(Rec::Committed(1));
        st.crash();
        let recs: Vec<&Rec> = st.wal().replay().map(|(_, r)| r).collect();
        assert_eq!(recs, vec![&Rec::Voted(1), &Rec::Committed(1)]);
        assert_eq!(st.incarnation(), 1);
    }

    #[test]
    fn items_survive_crash() {
        let mut st: SiteStorage<Rec, i64> = SiteStorage::new();
        st.initialize_item(ItemId(1), 7);
        st.apply_update(ItemId(1), Version(1), 9).unwrap();
        st.crash();
        st.crash();
        assert_eq!(st.read_item(ItemId(1)), Some((Version(1), &9)));
        assert_eq!(st.incarnation(), 2);
    }

    #[test]
    fn item_listing() {
        let mut st: SiteStorage<Rec, i64> = SiteStorage::new();
        st.initialize_item(ItemId(3), 0);
        st.initialize_item(ItemId(1), 0);
        let items: Vec<ItemId> = st.items().collect();
        assert_eq!(items, vec![ItemId(1), ItemId(3)]);
    }

    #[test]
    fn truncation_is_reachable_through_site_storage() {
        let mut st: SiteStorage<u32, i64> = SiteStorage::new();
        for r in 0..4 {
            st.log(r);
        }
        st.truncate_log_before(Lsn(2));
        let recs: Vec<u32> = st.wal().replay().map(|(_, r)| *r).collect();
        assert_eq!(recs, vec![2, 3]);
        assert_eq!(st.wal().start_lsn(), Lsn(2));
    }
}
