//! Minimal unique temporary directories for tests and benches.
//!
//! The build is offline (no `tempfile` crate); this is the small subset
//! the workspace needs: a uniquely named directory under the system
//! temp root, removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`], deleted
/// (best-effort) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `TMPDIR/qbc-<prefix>-<pid>-<nanos>-<n>`. Unique across
    /// processes (pid + clock) and within one (counter).
    ///
    /// # Panics
    /// On filesystem errors — tests have no useful recovery.
    pub fn new(prefix: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path =
            std::env::temp_dir().join(format!("qbc-{prefix}-{}-{nanos}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("create temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_dirs_and_cleanup() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
