//! # qbc-db — the distributed database site node
//!
//! Ties every substrate together into a runnable database site
//! ([`SiteNode`]): the commit/termination engines of `qbc-core`, the
//! bully election of `qbc-election`, strict no-wait 2PL from
//! `qbc-locks`, the WAL and versioned store of `qbc-storage`, and
//! Gifford quorum reads over `qbc-votes` — all driven by the
//! deterministic simulator (or the threaded transport) of `qbc-simnet`.
//!
//! ## Lifecycle of a transaction
//!
//! 1. A client submits a writeset at some site
//!    ([`SiteNode::begin_transaction`]); that site coordinates.
//! 2. `VOTE-REQ` distributes the spec; each participant X-locks its
//!    local copies (no-wait: conflict ⇒ vote no) and votes.
//! 3. The commit point depends on the protocol (2PC / 3PC / Skeen `[16]`
//!    / QC1 / QC2 — see `qbc-core`).
//! 4. On coordinator silence (`3T`), participants elect a termination
//!    coordinator per partition and run the configured termination
//!    protocol; rounds repeat (re-entrancy) until decided or blocked.
//! 5. The decision releases locks and (for commit) installs the new
//!    versioned values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod envelope;
mod node;

pub use config::{NodeConfig, WalBackendConfig};
pub use envelope::{NetMsg, NodeTimer};
pub use node::{build_cluster, DecisionEvent, ReadResult, SiteNode, Violation};
