//! The database site node: protocol engines wired to the network, the
//! lock manager and stable storage.
//!
//! A [`SiteNode`] implements [`Process`] and can run on the
//! deterministic simulator or the threaded transport. Per transaction it
//! hosts:
//!
//! * a [`Participant`] engine (always),
//! * a [`Coordinator`] engine (at the site where the client submitted),
//! * an [`Elector`] plus a [`Termination`] engine while the termination
//!   protocol runs (any site of the partition can end up coordinator —
//!   including several at once),
//!
//! and integrates them with:
//!
//! * **strict 2PL (no-wait)** — voting yes requires X-locks on every
//!   local copy of the writeset; a conflict makes the site vote no;
//!   locks are held until the decision, which is what makes *blocked*
//!   transactions reduce availability (the paper's Section 1 argument);
//! * **stable storage** — every engine `Log` action is force-written
//!   before subsequent sends; recovery replays the log and re-enters the
//!   termination path;
//! * **quorum reads** — `r(x)` votes collected over live, unlocked
//!   copies, returning the max-version value (Gifford's currency rule).

use crate::config::{NodeConfig, WalBackendConfig};
use crate::envelope::{NetMsg, NodeTimer};
use qbc_core::{
    last_checkpoint, recover_paxos, recover_state, recover_xstate, Action, Coordinator, Decision,
    LocalState, LogRecord, Msg, Participant, ParticipantConfig, PaxosAcceptor, PaxosLeader,
    ProtocolKind, RetiredOutcome, Termination, TimerKind, Transition, TxnId, TxnSpec, WriteSet,
    XRetiredOutcome, XTxnCoordinator,
};
use qbc_election::{Action as ElAction, ElectionMsg, Elector, Input as ElInput};
use qbc_locks::{LockManager, LockMode, LockOutcome};
use qbc_obs::{EventKind, TraceEvent, TraceSink};
use qbc_simnet::{Ctx, Label, Process, SiteId, Time, TimerId};
use qbc_storage::{EitherWal, FileWal, FileWalConfig, Lsn, SiteStorage, Wal, WalBackend};
use qbc_votes::{Catalog, FastMap, ItemId, Version};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// The WAL backend a site node runs on: in-memory for the simulator,
/// file-backed for durable runs (see [`WalBackendConfig`]).
pub type NodeWal = EitherWal<LogRecord>;

/// Outcome of a quorum read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadResult {
    /// Still collecting replies.
    Pending,
    /// Read quorum assembled; max-version value returned.
    Success {
        /// Version of the newest copy in the quorum.
        version: Version,
        /// Its value.
        value: i64,
    },
    /// The collection window expired below quorum (partition, crashes,
    /// or copies pinned by blocked transactions).
    Unavailable,
}

#[derive(Clone, Debug)]
struct ReadCollect {
    item: ItemId,
    votes: u32,
    best: Option<(Version, i64)>,
    result: ReadResult,
}

/// A snapshot read in flight: copy sites are tried one at a time (the
/// answer needs one live copy, not a quorum), with a timeout advancing
/// to the next site. Exhausting `targets` — only possible through real
/// crashes or partitions, never pinned copies — yields `Unavailable`.
#[derive(Clone, Debug)]
struct SnapReadCollect {
    item: ItemId,
    targets: Vec<SiteId>,
    /// Next entry of `targets` to try when the current attempt times out.
    next_target: usize,
    result: ReadResult,
}

/// Per-transaction state hosted at this site.
#[derive(Clone, Debug)]
struct TxnState {
    spec: Arc<TxnSpec>,
    participant: Participant,
    coordinator: Option<Coordinator>,
    /// The Paxos Commit leader (at the submitting site, ballot 0) or
    /// recovery candidate (any participant whose watchdog fired, at a
    /// positive ballot) — the [`ProtocolKind::PaxosCommit`] peer of
    /// `coordinator`. A later candidacy replaces an earlier engine;
    /// ballots only grow.
    paxos: Option<PaxosLeader>,
    termination: Option<Termination>,
    elector: Option<Elector>,
    last_coord_contact: Time,
    watchdog_armed: bool,
    decided: Option<Decision>,
    decided_at: Option<Time>,
    /// Commit version adopted with an engine-less decision (a recovered
    /// copy-less branch coordinator learning `X-DECIDE` directly): the
    /// participant never saw a command, so the version must be kept
    /// here for retirement records and `Decided` re-announces.
    decided_version: Option<Version>,
    blocked: bool,
    termination_rounds: u64,
    started_at: Time,
    /// Coordinators of the sibling branches of a cross-shard
    /// transaction (from `X-BRANCH-REQ`). Outcome discovery asks them
    /// alongside the parent: any branch that learned the top-level
    /// decision can answer, so a crashed parent no longer blocks this
    /// shard until recovery. Volatile — a branch coordinator that
    /// crashes falls back to parent-only discovery.
    x_siblings: Vec<SiteId>,
}

impl TxnState {
    /// The commit version to re-announce with this entry's decision,
    /// whichever role learned it.
    fn commit_version(&self) -> Option<Version> {
        self.participant
            .commit_version()
            .or_else(|| self.coordinator.as_ref().and_then(|c| c.commit_version()))
            .or_else(|| self.paxos.as_ref().and_then(|p| p.commit_version()))
            .or(self.decided_version)
    }
}

/// Compact outcome of a retired (decided, past the re-announce window)
/// transaction: everything a straggler's question can still need,
/// without the engines, spec and audit trail of a live [`TxnState`].
#[derive(Clone, Copy, Debug)]
struct RetiredTxn {
    decision: Decision,
    commit_version: Option<Version>,
    decided_at: Time,
}

/// Compact outcome of a retired cross-shard coordination: enough to
/// keep answering `X-OUTCOME-REQ` from late orphans (per-branch
/// membership and commit versions) after the engine and its specs are
/// dropped.
#[derive(Clone, Debug)]
struct XRetired {
    decision: Decision,
    /// `(coordinator, participants, in-shard commit version)` per branch.
    branches: Vec<(SiteId, BTreeSet<SiteId>, Option<Version>)>,
}

impl XRetired {
    fn xdecide_for(&self, to: SiteId, txn: TxnId) -> Msg {
        let commit_version = match self.decision {
            Decision::Commit => self
                .branches
                .iter()
                .find(|(c, p, _)| *c == to || p.contains(&to))
                .and_then(|(_, _, v)| *v),
            Decision::Abort => None,
        };
        Msg::XDecide {
            txn,
            decision: self.decision,
            commit_version,
        }
    }
}

/// One local decision transition, recorded for
/// [`SiteNode::drain_decision_events`] when
/// [`NodeConfig::decision_events`] is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Transaction that decided.
    pub txn: TxnId,
    /// The outcome.
    pub decision: Decision,
    /// Commit version, when the outcome is a commit and this site
    /// learned the version alongside it.
    pub commit_version: Option<Version>,
}

/// A diagnostic violation note recorded by the engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Transaction involved.
    pub txn: TxnId,
    /// What happened.
    pub note: &'static str,
}

/// An effect withheld until the WAL records it depends on are forced:
/// the "logged before told" half of the durability contract. Protocol
/// messages and decision applications queue here while their log
/// records sit in the group-commit buffer or an in-flight force.
#[derive(Clone, Debug)]
enum DeferredOp {
    Send {
        to: SiteId,
        msg: NetMsg,
    },
    Apply {
        txn: TxnId,
        decision: Decision,
        commit_version: Option<Version>,
    },
    /// Truncate the log prefix below `cutoff` — queued behind the force
    /// that makes its justifying checkpoint record durable (truncating
    /// before the checkpoint survives a crash would lose history).
    Truncate {
        cutoff: Lsn,
    },
}

/// One full database site.
///
/// `Clone` is how the model checker branches on a choice point: it
/// duplicates the entire site (engines, lock table, storage). Only
/// meaningful on the in-memory WAL backend — cloning a site with a
/// file-backed log panics (see [`qbc_storage::EitherWal`]).
#[derive(Clone)]
pub struct SiteNode {
    cfg: NodeConfig,
    catalog: Arc<Catalog>,
    storage: SiteStorage<LogRecord, i64, NodeWal>,
    locks: LockManager<ItemId, TxnId>,
    /// Per-transaction state. A (deterministic) hash map: the table
    /// grows with every transaction the site ever hosted and sits on
    /// every message's path; nothing iterates it in an order-sensitive
    /// way (accessors sort), so O(1) lookups are free determinism-wise.
    txns: FastMap<TxnId, TxnState>,
    /// Cross-shard (top-level 2PC) coordinations hosted at this site.
    xcoords: FastMap<TxnId, XTxnCoordinator>,
    /// Paxos Commit acceptor state, one per transaction this site
    /// co-hosts an acceptor for (every participant site). Spec-free and
    /// keyed separately from `txns`: a recovering site re-installs it
    /// straight from its `PaxosPromise`/`PaxosAccept` records, and a
    /// candidate's 1a can be answered before the site ever saw the
    /// `VOTE-REQ`. Dropped at retirement alongside the `txns` entry.
    acceptors: FastMap<TxnId, PaxosAcceptor>,
    /// Compact outcomes of retired transactions (see
    /// [`NodeConfig::retire_after`]); rebuilt from the WAL on recovery.
    retired: FastMap<TxnId, RetiredTxn>,
    /// Compact outcomes of retired cross-shard coordinations.
    xretired: FastMap<TxnId, XRetired>,
    /// Decisions awaiting retirement, in decision-time order (times are
    /// event times, hence monotonic — a plain queue, no heap needed).
    retire_queue: VecDeque<(Time, TxnId)>,
    /// Retired outcomes queued for aging out entirely (only with
    /// [`NodeConfig::retire_horizon`]); retirement-time order, so the
    /// sweep stops at the first young entry.
    age_queue: VecDeque<(Time, TxnId)>,
    reads: BTreeMap<u64, ReadCollect>,
    /// Snapshot-read collectors. Kept apart from `reads` (different
    /// resolution machinery) but sharing its request-id space; both
    /// tables are bounded by the same `ReadRetire` timers.
    snap_reads: BTreeMap<u64, SnapReadCollect>,
    violations: Vec<Violation>,
    /// Self-addressed messages processed synchronously (local delivery).
    local_queue: VecDeque<NetMsg>,
    /// Virtual time at which the serial log device becomes idle.
    wal_free_at: Time,
    /// Ops gated on records still in the group-commit buffer.
    gated_on_buffer: Vec<DeferredOp>,
    /// Ops gated on an in-flight force, keyed by batch id (FIFO device:
    /// batches complete in id order).
    inflight_forces: BTreeMap<u64, Vec<DeferredOp>>,
    next_force_batch: u64,
    /// Pending batch-window timer, cancelled on early (batch-full) flush.
    flush_timer: Option<TimerId>,
    /// Emptied deferred-op buffers kept for reuse, so the steady-state
    /// group-commit cycle (defer → force → run) allocates nothing.
    spare_deferred: Vec<Vec<DeferredOp>>,
    /// Emptied engine-action scratch buffers kept for reuse: engines
    /// push into a caller-supplied buffer, `apply_actions` drains it
    /// and returns it here, so the steady-state message path allocates
    /// no `Vec<Action>` per event.
    spare_actions: Vec<Vec<Action>>,
    /// Host-drainable record of local decision transitions (only with
    /// [`NodeConfig::decision_events`]); push-style front-ends drain it
    /// after every delivery to answer waiting client sessions.
    decision_events: Vec<DecisionEvent>,
    /// First log record of every *live* transaction — the LSNs a
    /// checkpoint's truncation cutoff must stay below. Entries are
    /// dropped at retirement (the checkpoint record then carries the
    /// outcome instead).
    first_lsn: FastMap<TxnId, Lsn>,
    /// Whether a [`NodeTimer::Checkpoint`] tick is outstanding (armed
    /// lazily by the first record after a quiet period, so an idle site
    /// quiesces instead of ticking forever).
    checkpoint_armed: bool,
    /// Log end as of the last checkpoint (including the checkpoint
    /// record itself); no new checkpoint until the log outgrows it.
    last_checkpoint_end: Lsn,
    /// Encoded bytes of log records appended since the last checkpoint
    /// (the [`NodeConfig::checkpoint_bytes`] trigger). Only maintained
    /// when that threshold is configured; volatile (a post-recovery
    /// checkpoint re-baselines it).
    bytes_since_checkpoint: u64,
    /// Recursion guard: the checkpoint record itself passes through
    /// `log_record`, which must not re-enter the byte-threshold
    /// checkpoint while one is being written.
    checkpointing: bool,
    /// This site's commit-stable watermark: every version at or below
    /// it on a local copy belongs to a *decided* transaction. Monotone;
    /// maintained only when [`NodeConfig::snapshot_reads`] is on.
    local_wm: Version,
    /// Highest version ever installed on a local copy.
    vmax: Version,
    /// Per-undecided-pinning-transaction floor on its eventual commit
    /// version: a yes vote reporting local max `m` proves the commit
    /// version, if any, exceeds `m`; a PreCommit record raises the floor
    /// to `commit_version - 1`. The watermark may not pass the smallest
    /// floor while its transaction's outcome is open here.
    stable_floors: FastMap<TxnId, Version>,
    /// Latest watermark heard from each peer, piggybacked on protocol
    /// messages ([`NetMsg::ProtoW`]); max-merged so a stale delivery
    /// never regresses it.
    peer_watermarks: FastMap<SiteId, Version>,
    /// The peers whose watermarks bound this site's *shard* watermark:
    /// every other site holding a copy of any item this site hosts
    /// (computed once from the catalog; unheard peers count as
    /// [`Version::INITIAL`]).
    wm_peers: Vec<SiteId>,
    /// Shard watermark below which version GC already ran.
    last_gc_wm: Version,
}

impl SiteNode {
    /// Builds a site and loads the initial value of every local copy.
    ///
    /// With a file-backed WAL ([`WalBackendConfig::File`]) the log
    /// directory is opened, recovering any existing segments; a node
    /// whose reopened log is non-empty then replays it automatically
    /// in `on_start` (both substrates invoke it before delivering
    /// anything), so restarting over an existing directory needs no
    /// manual recovery scheduling.
    ///
    /// # Panics
    /// When the file-backed log cannot be opened (I/O error or non-tail
    /// corruption): a site without its log has no safe way to run.
    pub fn new(cfg: NodeConfig, initial_values: impl Fn(ItemId) -> i64) -> Self {
        let catalog = Arc::new(cfg.catalog.clone());
        let wal = match &cfg.wal_backend {
            WalBackendConfig::Memory => EitherWal::Mem(Wal::new()),
            WalBackendConfig::File {
                dir,
                segment_bytes,
                fsync,
            } => {
                let mut fw_cfg = FileWalConfig::new(dir.clone()).with_segment_bytes(*segment_bytes);
                if !fsync {
                    fw_cfg = fw_cfg.without_fsync();
                }
                EitherWal::File(
                    FileWal::open(fw_cfg)
                        .unwrap_or_else(|e| panic!("open WAL at {}: {e}", dir.display())),
                )
            }
        };
        let mut storage = SiteStorage::with_wal(wal);
        storage.set_version_retention(cfg.version_retention.max(1));
        for item in catalog.items_at(cfg.site) {
            storage.initialize_item(item, initial_values(item));
        }
        // The shard watermark is bounded by every other site that holds
        // a copy of anything this site hosts: those are exactly the
        // sites whose in-flight transactions can pin a local copy.
        let wm_peers: Vec<SiteId> = if cfg.snapshot_reads {
            let mut peers: BTreeSet<SiteId> = BTreeSet::new();
            for item in catalog.items_at(cfg.site) {
                if let Some(spec) = catalog.item(item) {
                    peers.extend(spec.sites());
                }
            }
            peers.remove(&cfg.site);
            peers.into_iter().collect()
        } else {
            Vec::new()
        };
        SiteNode {
            cfg,
            catalog,
            storage,
            locks: LockManager::new(),
            txns: FastMap::default(),
            xcoords: FastMap::default(),
            acceptors: FastMap::default(),
            retired: FastMap::default(),
            xretired: FastMap::default(),
            retire_queue: VecDeque::new(),
            age_queue: VecDeque::new(),
            reads: BTreeMap::new(),
            snap_reads: BTreeMap::new(),
            violations: Vec::new(),
            local_queue: VecDeque::new(),
            wal_free_at: Time::ZERO,
            gated_on_buffer: Vec::new(),
            inflight_forces: BTreeMap::new(),
            next_force_batch: 0,
            flush_timer: None,
            spare_deferred: Vec::new(),
            spare_actions: Vec::new(),
            decision_events: Vec::new(),
            first_lsn: FastMap::default(),
            checkpoint_armed: false,
            last_checkpoint_end: Lsn(0),
            bytes_since_checkpoint: 0,
            checkpointing: false,
            local_wm: Version::INITIAL,
            vmax: Version::INITIAL,
            stable_floors: FastMap::default(),
            peer_watermarks: FastMap::default(),
            wm_peers,
            last_gc_wm: Version::INITIAL,
        }
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.cfg.site
    }

    // ---- public inspection API (used by the harness and tests) --------

    /// The decision reached for a transaction at this site, if any
    /// (retired transactions keep answering from their compact record).
    pub fn decision(&self, txn: TxnId) -> Option<Decision> {
        self.txns
            .get(&txn)
            .and_then(|t| t.decided)
            .or_else(|| self.retired.get(&txn).map(|r| r.decision))
    }

    /// Virtual time at which this site decided the transaction.
    pub fn decided_at(&self, txn: TxnId) -> Option<Time> {
        self.txns
            .get(&txn)
            .and_then(|t| t.decided_at)
            .or_else(|| self.retired.get(&txn).map(|r| r.decided_at))
    }

    /// The local participant state for a transaction.
    pub fn local_state(&self, txn: TxnId) -> Option<LocalState> {
        self.txns
            .get(&txn)
            .map(|t| t.participant.state())
            .or_else(|| {
                self.retired.get(&txn).map(|r| match r.decision {
                    Decision::Commit => LocalState::Committed,
                    Decision::Abort => LocalState::Aborted,
                })
            })
    }

    /// Number of live (unretired) per-transaction state entries — the
    /// table the retention policy ([`NodeConfig::retire_after`]) bounds.
    pub fn txn_table_len(&self) -> usize {
        self.txns.len()
    }

    /// Number of transactions retired to compact outcome records.
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Number of cross-shard coordinations retired to compact records.
    pub fn xretired_len(&self) -> usize {
        self.xretired.len()
    }

    /// Drains the decision transitions recorded since the last drain
    /// into `out` (only populated with
    /// [`NodeConfig::decision_events`]). Front-ends call this after
    /// every delivery: each event is the moment this site first learned
    /// a transaction's outcome.
    pub fn drain_decision_events(&mut self, out: &mut Vec<DecisionEvent>) {
        out.append(&mut self.decision_events);
    }

    /// Records a local decision transition for
    /// [`SiteNode::drain_decision_events`]. Call sites are exactly the
    /// `st.decided` `None -> Some` assignments, so one event fires per
    /// transaction per site lifetime.
    fn note_decision(&mut self, txn: TxnId, decision: Decision, commit_version: Option<Version>) {
        if self.cfg.decision_events {
            self.decision_events.push(DecisionEvent {
                txn,
                decision,
                commit_version,
            });
        }
    }

    /// The top-level decision of a cross-shard transaction coordinated
    /// at this site, if reached.
    pub fn x_decision(&self, txn: TxnId) -> Option<Decision> {
        self.xcoords
            .get(&txn)
            .and_then(|x| x.decision())
            .or_else(|| self.xretired.get(&txn).map(|x| x.decision))
    }

    /// True while the transaction is declared blocked at this site.
    pub fn is_blocked(&self, txn: TxnId) -> bool {
        self.txns.get(&txn).map(|t| t.blocked).unwrap_or(false)
    }

    /// The commit version this site associates with its decision for
    /// `txn`, whichever role learned it (participant command, coordinator
    /// decision, engine-less `X-DECIDE` adoption, or a retired record).
    pub fn commit_version_of(&self, txn: TxnId) -> Option<Version> {
        self.txns
            .get(&txn)
            .and_then(|t| t.commit_version())
            .or_else(|| self.retired.get(&txn).and_then(|r| r.commit_version))
    }

    /// All transactions this site knows about, in id order.
    pub fn known_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self.txns.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// The audit trail of participant state transitions (experiment E6).
    pub fn transitions(&self, txn: TxnId) -> &[Transition] {
        self.txns
            .get(&txn)
            .map(|t| t.participant.transitions())
            .unwrap_or(&[])
    }

    /// Diagnostic violations recorded by the engines (empty in correct
    /// runs).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The durable value of a local copy.
    pub fn item_value(&self, item: ItemId) -> Option<(Version, i64)> {
        self.storage.read_item(item).map(|(v, val)| (v, *val))
    }

    /// True when the local copy of `item` is pinned by an undecided
    /// transaction's lock.
    pub fn is_item_locked(&self, item: ItemId) -> bool {
        self.locks.is_locked(&item)
    }

    /// The result of a quorum read started with [`SiteNode::start_read`].
    ///
    /// Collectors are retired a couple of collection windows after they
    /// resolve (see [`NodeTimer::ReadRetire`]); `None` for an unknown or
    /// already-retired request id.
    pub fn read_result(&self, req_id: u64) -> Option<ReadResult> {
        self.reads.get(&req_id).map(|r| r.result)
    }

    /// The result of a snapshot read started with
    /// [`SiteNode::start_snapshot_read`]; retired like quorum reads.
    pub fn snap_read_result(&self, req_id: u64) -> Option<ReadResult> {
        self.snap_reads.get(&req_id).map(|r| r.result)
    }

    /// Number of live quorum-read collectors (bounded by retirement).
    pub fn reads_table_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of live snapshot-read collectors (bounded by retirement).
    pub fn snap_reads_table_len(&self) -> usize {
        self.snap_reads.len()
    }

    /// This site's own commit-stable watermark (monotone;
    /// [`Version::INITIAL`] when snapshot reads are off).
    pub fn local_watermark(&self) -> Version {
        self.local_wm
    }

    /// The shard watermark this site currently serves snapshot reads
    /// at: its own watermark bounded by the latest one heard from every
    /// copy-sharing peer (unheard peers count as [`Version::INITIAL`]).
    pub fn shard_watermark(&self) -> Version {
        let mut wm = self.local_wm;
        for p in &self.wm_peers {
            let pw = self
                .peer_watermarks
                .get(p)
                .copied()
                .unwrap_or(Version::INITIAL);
            wm = wm.min(pw);
        }
        wm
    }

    /// Read-only access to the durable log (for experiments and tests).
    pub fn log_records(&self) -> impl Iterator<Item = &LogRecord> + '_ {
        self.storage.wal().replay().map(|(_, r)| r)
    }

    /// The largest transaction id with any durable trace at this site —
    /// in per-transaction records or folded into a checkpoint's retired
    /// outcomes. A cluster reopening durable logs primes its id
    /// allocator above the maximum across sites, so restarted workloads
    /// never re-issue an id the old incarnation already used.
    pub fn max_durable_txn(&self) -> Option<TxnId> {
        let mut max: Option<TxnId> = None;
        let mut note = |t: TxnId| {
            if max.map(|m| t > m).unwrap_or(true) {
                max = Some(t);
            }
        };
        for rec in self.log_records() {
            match rec {
                LogRecord::Checkpoint {
                    retired, xretired, ..
                } => {
                    for o in retired {
                        note(o.txn);
                    }
                    for o in xretired {
                        note(o.txn);
                    }
                }
                other => {
                    if let Some(t) = other.txn() {
                        note(t);
                    }
                }
            }
        }
        max
    }

    /// Number of termination rounds this site initiated for `txn`.
    pub fn termination_rounds(&self, txn: TxnId) -> u64 {
        self.txns
            .get(&txn)
            .map(|t| t.termination_rounds)
            .unwrap_or(0)
    }

    /// Number of WAL forces this site has paid (one per flush; with
    /// group commit many records share one force).
    pub fn wal_forces(&self) -> u64 {
        self.storage.wal_forces()
    }

    /// Number of *retained* durable WAL records at this site
    /// (checkpoint truncation shrinks this; see
    /// [`SiteNode::wal_appended`] for the cumulative count).
    pub fn wal_len(&self) -> usize {
        self.storage.wal().len()
    }

    /// Number of records ever made durable at this site — the durable
    /// end LSN, which truncation never moves. This is the denominator
    /// of batching metrics (`records / forces`), so it must not shrink
    /// when checkpoints free the prefix.
    pub fn wal_appended(&self) -> u64 {
        let wal = self.storage.wal();
        wal.start_lsn().0 + wal.len() as u64
    }

    /// Outstanding work on the serial log device as of `now`: how long a
    /// force issued now would wait before even starting. Zero when the
    /// device is idle.
    pub fn wal_backlog(&self, now: Time) -> qbc_simnet::Duration {
        self.wal_free_at.since(now)
    }

    /// Bytes of stable storage the WAL currently occupies (0 on the
    /// in-memory backend) — the quantity checkpoint truncation bounds.
    pub fn wal_storage_bytes(&self) -> u64 {
        self.storage.wal().storage_bytes()
    }

    /// LSN of the oldest retained WAL record: 0 until the first
    /// checkpoint truncation, then climbing as prefixes are freed.
    pub fn wal_start_lsn(&self) -> Lsn {
        self.storage.wal().start_lsn()
    }

    // ---- client entry points -------------------------------------------

    /// Submits a transaction at this site (this site coordinates).
    ///
    /// Invoke inside the simulation via `Sim::schedule_call`.
    pub fn begin_transaction(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        txn: TxnId,
        writeset: WriteSet,
        protocol: ProtocolKind,
    ) {
        debug_assert!(self.cfg.validate_for(protocol).is_ok());
        // Built once; every VOTE-REQ copy, log record and engine shares
        // this one allocation for the life of the transaction.
        let spec = Arc::new(TxnSpec::from_catalog(
            txn,
            self.cfg.site,
            writeset,
            protocol,
            &self.catalog,
        ));
        let state = self.ensure_txn(ctx.now(), &spec);
        state.started_at = ctx.now();
        self.emit(ctx.now(), Some(txn), EventKind::Submitted { protocol });
        let mut actions = self.take_actions();
        if protocol == ProtocolKind::PaxosCommit {
            let mut leader = PaxosLeader::new(spec);
            if self.cfg.mutation_weaken_paxos {
                leader = leader.with_weakened_quorum();
            }
            leader.start(&mut actions);
            self.txns.get_mut(&txn).expect("just ensured").paxos = Some(leader);
        } else {
            let mut coord = Coordinator::new(spec, self.cfg.site_votes.clone());
            if self.cfg.mutation_weaken_qc1 {
                coord = coord.with_weakened_qc1();
            }
            coord.start(&mut actions);
            self.txns.get_mut(&txn).expect("just ensured").coordinator = Some(coord);
        }
        self.apply_actions(ctx, txn, self.cfg.site, actions);
        self.pump(ctx);
    }

    /// Submits a *cross-shard* transaction at this site (this site runs
    /// the top-level 2PC over the given per-shard branches and also
    /// coordinates the branch whose spec names it).
    ///
    /// The branch specs are pre-split by the cluster layer — only it
    /// holds every shard's catalog — each with `parent` set to this
    /// site. Invoke inside the simulation via `Sim::schedule_call`, or
    /// over the wire via [`NetMsg::BeginXTxn`].
    pub fn begin_xshard(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        txn: TxnId,
        branches: Vec<Arc<TxnSpec>>,
    ) {
        if self.xcoords.contains_key(&txn) || self.xretired.contains_key(&txn) {
            return; // duplicate submission
        }
        if let Some(b) = branches.first() {
            self.emit(
                ctx.now(),
                Some(txn),
                EventKind::Submitted {
                    protocol: b.protocol,
                },
            );
        }
        let mut x = XTxnCoordinator::new(txn, branches);
        let actions = x.start();
        self.xcoords.insert(txn, x);
        self.apply_actions(ctx, txn, self.cfg.site, actions);
        self.pump(ctx);
    }

    /// Starts coordinating one branch of a cross-shard transaction
    /// (`X-BRANCH-REQ` arrived, possibly self-addressed).
    fn start_branch(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        spec: &Arc<TxnSpec>,
        siblings: &[SiteId],
    ) {
        debug_assert_eq!(spec.coordinator, self.cfg.site, "misrouted X-BRANCH-REQ");
        debug_assert!(self.cfg.validate_for(spec.protocol).is_ok());
        let txn = spec.id;
        if self.retired.contains_key(&txn) {
            return; // long decided; duplicate request
        }
        let state = self.ensure_txn(ctx.now(), spec);
        state.started_at = ctx.now();
        let st = self.txns.get_mut(&txn).expect("just ensured");
        // Remember the sibling coordinators even on a duplicate request:
        // a retried solicitation may be the first one that arrives after
        // this entry was created by an in-shard message.
        st.x_siblings = siblings.to_vec();
        if st.coordinator.is_some() || st.paxos.is_some() || st.decided.is_some() {
            return; // duplicate request
        }
        if spec.protocol == ProtocolKind::PaxosCommit {
            // A Paxos branch behaves like 2PC toward the parent: all
            // yes → held + X-VOTE yes; the parent is the only outcome
            // authority, so no Paxos rounds ever run in-shard.
            let mut leader = PaxosLeader::new(Arc::clone(spec));
            if self.cfg.mutation_weaken_paxos {
                leader = leader.with_weakened_quorum();
            }
            st.paxos = Some(leader);
        } else {
            let mut coord = Coordinator::new(Arc::clone(spec), self.cfg.site_votes.clone());
            if self.cfg.mutation_weaken_qc1 {
                coord = coord.with_weakened_qc1();
            }
            st.coordinator = Some(coord);
        }
        let mut actions = self.take_actions();
        let st = self.txns.get_mut(&txn).expect("just ensured");
        if let Some(leader) = st.paxos.as_mut() {
            leader.start(&mut actions);
        } else if let Some(coord) = st.coordinator.as_mut() {
            coord.start(&mut actions);
        }
        self.apply_actions(ctx, txn, self.cfg.site, actions);
        // A held branch coordinator may be left orphaned by a crashed
        // parent: the watchdog drives its outcome discovery.
        self.arm_watchdog(ctx, txn);
    }

    /// Starts a quorum read of `item`, collecting `r(item)` votes.
    pub fn start_read(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, req_id: u64, item: ItemId) {
        let Some(spec) = self.catalog.item(item) else {
            // Unknown item: an immediately-Unavailable collector, on the
            // same retirement path as every other read (it used to leak
            // here forever — no timer ever referenced it).
            self.reads.insert(
                req_id,
                ReadCollect {
                    item,
                    votes: 0,
                    best: None,
                    result: ReadResult::Unavailable,
                },
            );
            self.arm_read_retire(ctx, req_id);
            return;
        };
        self.reads.insert(
            req_id,
            ReadCollect {
                item,
                votes: 0,
                best: None,
                result: ReadResult::Pending,
            },
        );
        let targets: Vec<SiteId> = spec.sites().collect();
        for to in targets {
            self.send_net(ctx, to, NetMsg::ReadReq { req_id, item });
        }
        ctx.set_timer(self.cfg.window_2t(), NodeTimer::ReadTimeout { req_id });
        self.pump(ctx);
    }

    /// Starts a snapshot read of `item` at the shard watermark.
    ///
    /// Locks and pins are never consulted: any single live copy site
    /// can answer from its multi-version store, so — unlike the quorum
    /// read — blocked transactions cannot make the item unavailable. A
    /// local copy answers synchronously; otherwise copy sites are tried
    /// one at a time ([`NodeTimer::SnapReadTimeout`] advances), and only
    /// exhausting them all (crashes/partition) yields `Unavailable`.
    pub fn start_snapshot_read(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        req_id: u64,
        item: ItemId,
    ) {
        let Some(spec) = self.catalog.item(item) else {
            self.snap_reads.insert(
                req_id,
                SnapReadCollect {
                    item,
                    targets: Vec::new(),
                    next_target: 0,
                    result: ReadResult::Unavailable,
                },
            );
            self.emit(ctx.now(), None, EventKind::SnapshotReadUnavailable { item });
            self.arm_read_retire(ctx, req_id);
            return;
        };
        if let Some((version, value)) = self.storage.read_item_at(item, self.shard_watermark()) {
            // Local copy: answered without any network round.
            self.snap_reads.insert(
                req_id,
                SnapReadCollect {
                    item,
                    targets: Vec::new(),
                    next_target: 0,
                    result: ReadResult::Success {
                        version,
                        value: *value,
                    },
                },
            );
            self.emit(
                ctx.now(),
                None,
                EventKind::SnapshotRead { item, local: true },
            );
            self.arm_read_retire(ctx, req_id);
            return;
        }
        let me = self.cfg.site;
        let targets: Vec<SiteId> = spec.sites().filter(|&s| s != me).collect();
        self.snap_reads.insert(
            req_id,
            SnapReadCollect {
                item,
                targets: targets.clone(),
                next_target: 1,
                result: ReadResult::Pending,
            },
        );
        match targets.first() {
            Some(&to) => {
                self.send_net(ctx, to, NetMsg::SnapReadReq { req_id, item });
                ctx.set_timer(self.cfg.window_2t(), NodeTimer::SnapReadTimeout { req_id });
            }
            None => {
                // No copy anywhere (catalog lists only this copyless
                // site): nothing can ever answer.
                self.snap_reads
                    .get_mut(&req_id)
                    .expect("just inserted")
                    .result = ReadResult::Unavailable;
                self.emit(ctx.now(), None, EventKind::SnapshotReadUnavailable { item });
                self.arm_read_retire(ctx, req_id);
            }
        }
        self.pump(ctx);
    }

    /// Arms the retirement timer that bounds both read tables: the
    /// collector stays pollable for a couple of collection windows after
    /// resolving, then is dropped.
    fn arm_read_retire(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, req_id: u64) {
        let ttl = qbc_simnet::Duration(self.cfg.window_2t().0.saturating_mul(2).max(1));
        ctx.set_timer(ttl, NodeTimer::ReadRetire { req_id });
    }

    /// The current snapshot-read target stayed silent (crashed or
    /// partitioned): try the next copy site, or give up once every one
    /// has been asked.
    fn on_snap_read_timeout(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, req_id: u64) {
        enum Next {
            Try(SiteId, ItemId),
            Exhausted(ItemId),
            Done,
        }
        let next = match self.snap_reads.get_mut(&req_id) {
            Some(r) if r.result == ReadResult::Pending => {
                match r.targets.get(r.next_target).copied() {
                    Some(to) => {
                        r.next_target += 1;
                        Next::Try(to, r.item)
                    }
                    None => {
                        r.result = ReadResult::Unavailable;
                        Next::Exhausted(r.item)
                    }
                }
            }
            _ => Next::Done,
        };
        match next {
            Next::Try(to, item) => {
                self.send_net(ctx, to, NetMsg::SnapReadReq { req_id, item });
                ctx.set_timer(self.cfg.window_2t(), NodeTimer::SnapReadTimeout { req_id });
            }
            Next::Exhausted(item) => {
                self.emit(ctx.now(), None, EventKind::SnapshotReadUnavailable { item });
                self.arm_read_retire(ctx, req_id);
            }
            Next::Done => {}
        }
    }

    // ---- internals -----------------------------------------------------

    /// Emits one protocol trace event when observability is wired
    /// (`NodeConfig::obs`); free otherwise.
    #[inline]
    fn emit(&self, at: Time, txn: Option<TxnId>, kind: EventKind) {
        if let Some(obs) = &self.cfg.obs {
            obs.record(TraceEvent {
                at,
                site: self.cfg.site,
                txn,
                kind,
            });
        }
    }

    /// Maps an engine action onto the trace event model. Called once
    /// per action from [`SiteNode::apply_actions`]; the gate on
    /// `cfg.obs` keeps the uninstrumented path to a single branch.
    fn obs_action(&self, at: Time, txn: TxnId, a: &Action) {
        if self.cfg.obs.is_none() {
            return;
        }
        let kind = match a {
            Action::Broadcast(_, Msg::VoteReq { .. }) => Some(EventKind::VoteReqOut),
            Action::Broadcast(_, Msg::PrepareCommit { .. }) => {
                Some(EventKind::PrepareOut { abort: false })
            }
            Action::Broadcast(_, Msg::PrepareAbort { .. }) => {
                Some(EventKind::PrepareOut { abort: true })
            }
            Action::Broadcast(_, Msg::PaxosP2a { bal, .. }) => {
                Some(EventKind::PaxosProposalOut { bal: *bal })
            }
            Action::Broadcast(_, Msg::PaxosP1a { bal, .. }) => {
                Some(EventKind::PaxosRecoveryOut { bal: *bal })
            }
            Action::Broadcast(_, Msg::Commit { .. }) => Some(EventKind::DecisionOut {
                decision: Decision::Commit,
            }),
            Action::Broadcast(_, Msg::Abort { .. }) => Some(EventKind::DecisionOut {
                decision: Decision::Abort,
            }),
            Action::Reply(Msg::Vote { yes, .. }) => Some(EventKind::VoteOut { yes: *yes }),
            Action::Send(_, Msg::XVote { yes, .. }) => Some(EventKind::XVoteOut { yes: *yes }),
            Action::Send(_, Msg::XDecide { decision, .. })
            | Action::Broadcast(_, Msg::XDecide { decision, .. }) => Some(EventKind::XDecideOut {
                decision: *decision,
            }),
            Action::Log(LogRecord::Decided { decision, .. })
            | Action::Log(LogRecord::XDecision { decision, .. }) => {
                Some(EventKind::DecisionLogged {
                    decision: *decision,
                })
            }
            Action::DeclareBlocked { .. } => Some(EventKind::Blocked),
            _ => None,
        };
        if let Some(kind) = kind {
            // The commit point: the site driving the protocol (commit
            // or termination coordinator, or the cross-shard parent)
            // forcing a commit decision — past this force the
            // transaction can no longer abort.
            if kind
                == (EventKind::DecisionLogged {
                    decision: Decision::Commit,
                })
            {
                let driving = self
                    .txns
                    .get(&txn)
                    .map(|st| {
                        st.coordinator.is_some() || st.termination.is_some() || st.paxos.is_some()
                    })
                    .unwrap_or(false)
                    || self.xcoords.contains_key(&txn);
                if driving {
                    self.emit(at, Some(txn), EventKind::CommitPoint);
                }
            }
            self.emit(at, Some(txn), kind);
        }
        // A branch voting yes upward is *held* at its in-shard commit
        // point until the top-level outcome arrives.
        if let Action::Send(_, Msg::XVote { yes: true, .. }) = a {
            self.emit(at, Some(txn), EventKind::Held);
        }
    }

    fn ensure_txn(&mut self, now: Time, spec: &Arc<TxnSpec>) -> &mut TxnState {
        let site = self.cfg.site;
        let faulty = self.cfg.faulty;
        self.txns.entry(spec.id).or_insert_with(|| TxnState {
            spec: Arc::clone(spec),
            participant: Participant::new(
                site,
                spec.id,
                ParticipantConfig {
                    vote_yes: true,
                    faulty,
                },
            ),
            coordinator: None,
            paxos: None,
            termination: None,
            elector: None,
            last_coord_contact: now,
            watchdog_armed: false,
            decided: None,
            decided_at: None,
            decided_version: None,
            blocked: false,
            termination_rounds: 0,
            started_at: now,
            x_siblings: Vec::new(),
        })
    }

    /// Sends a message, or withholds it while a durability barrier is up:
    /// no message may overtake a log record staged or forced before it.
    fn send_net(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, to: SiteId, msg: NetMsg) {
        if self.durability_barrier() {
            self.defer(DeferredOp::Send { to, msg });
        } else {
            self.send_net_now(ctx, to, msg);
        }
    }

    /// Routes a self-addressed message through the local queue instead of
    /// the network: a site never loses messages to itself.
    ///
    /// With snapshot reads on, outbound protocol messages carry this
    /// site's watermark piggybacked ([`NetMsg::ProtoW`]). The wrap
    /// happens here — the last moment before the wire — so messages
    /// deferred behind a durability barrier ship the watermark as of
    /// the send, not as of when they were queued.
    fn send_net_now(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, to: SiteId, msg: NetMsg) {
        if to == self.cfg.site {
            self.local_queue.push_back(msg);
        } else {
            let msg = match msg {
                NetMsg::Proto(m) if self.cfg.snapshot_reads => NetMsg::ProtoW {
                    msg: m,
                    wm: self.local_wm,
                },
                other => other,
            };
            if let Some(obs) = &self.cfg.obs {
                obs.note_msg(msg.label());
            }
            ctx.send(to, msg);
        }
    }

    /// True while some log record is staged or being forced; outbound
    /// effects must queue behind it to preserve logged-before-told.
    fn durability_barrier(&self) -> bool {
        self.storage.wal().pending_len() > 0 || !self.inflight_forces.is_empty()
    }

    /// Queues an op behind the youngest durability barrier: the buffer
    /// if records are staged, else the latest in-flight force.
    fn defer(&mut self, op: DeferredOp) {
        if self.storage.wal().pending_len() > 0 {
            if self.gated_on_buffer.capacity() == 0 {
                if let Some(spare) = self.spare_deferred.pop() {
                    self.gated_on_buffer = spare;
                }
            }
            self.gated_on_buffer.push(op);
        } else {
            let batch = *self
                .inflight_forces
                .keys()
                .next_back()
                .expect("barrier implies an in-flight force");
            self.inflight_forces
                .get_mut(&batch)
                .expect("key just read")
                .push(op);
        }
    }

    /// Forces the staged batch (if any) and models the device time it
    /// costs. Ops gated on the buffer move behind the new force; with an
    /// instant device they run immediately (the force is still one
    /// flush, so batching still saves forces).
    fn flush_wal(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        if let Some(id) = self.flush_timer.take() {
            ctx.cancel_timer(id);
        }
        let forced = self.storage.force_log();
        if forced == 0 {
            return;
        }
        self.emit(
            ctx.now(),
            None,
            EventKind::WalForce {
                records: forced as u64,
            },
        );
        let ops = std::mem::take(&mut self.gated_on_buffer);
        if self.cfg.force_latency == qbc_simnet::Duration::ZERO {
            self.run_deferred(ctx, ops);
            return;
        }
        // Serial device: this force starts when the previous completes.
        let start = Time(ctx.now().0.max(self.wal_free_at.0));
        let done = start + self.cfg.force_latency;
        self.wal_free_at = done;
        let batch = self.next_force_batch;
        self.next_force_batch += 1;
        self.inflight_forces.insert(batch, ops);
        ctx.set_timer(done.since(ctx.now()), NodeTimer::WalForceDone { batch });
    }

    /// Executes ops whose durability dependency has been satisfied.
    fn run_deferred(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, mut ops: Vec<DeferredOp>) {
        for op in ops.drain(..) {
            match op {
                DeferredOp::Send { to, msg } => self.send_net_now(ctx, to, msg),
                DeferredOp::Apply {
                    txn,
                    decision,
                    commit_version,
                } => self.apply_decision(ctx.now(), txn, decision, commit_version),
                DeferredOp::Truncate { cutoff } => {
                    self.storage.truncate_log_before(cutoff);
                }
            }
        }
        if ops.capacity() > 0 && self.spare_deferred.len() < 4 {
            self.spare_deferred.push(ops);
        }
    }

    /// Records one engine log action under the configured force policy.
    fn log_record(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, rec: LogRecord) {
        let txn = rec.txn();
        // Sized before the record moves into the WAL; skipped entirely
        // (a constant zero) unless the byte threshold is configured.
        let rec_bytes = if self.cfg.checkpoint_bytes.is_some() {
            qbc_core::encoded_len(&rec) as u64
        } else {
            0
        };
        let lsn = if self.cfg.group_commit {
            let lsn = self.storage.log_buffered(rec);
            if self.storage.wal().pending_len() >= self.cfg.group_commit_max_batch {
                self.flush_wal(ctx);
            } else if self.flush_timer.is_none() {
                // Adaptive sizing: stretch the window only as far as the
                // log device's observed backlog — waiting is free while
                // no force could start anyway — and collapse it to one
                // tick on an idle device so light load pays almost no
                // batching latency. Clamped by the static window, the
                // upper bound `storage_slack` budgets for.
                let window = if self.cfg.adaptive_commit_window {
                    let backlog = self.wal_backlog(ctx.now());
                    qbc_simnet::Duration(backlog.0.clamp(1, self.cfg.group_commit_window.0.max(1)))
                } else {
                    self.cfg.group_commit_window
                };
                self.flush_timer = Some(ctx.set_timer(window, NodeTimer::FlushWal));
            }
            lsn
        } else if self.cfg.force_latency.0 > 0 {
            // Per-record forcing on a slow device: durable now, but the
            // completion (and everything gated on it) costs device time.
            let lsn = self.storage.log_buffered(rec);
            self.flush_wal(ctx);
            lsn
        } else {
            // Seed model: instant force per record.
            let lsn = self.storage.log(rec);
            self.emit(ctx.now(), None, EventKind::WalForce { records: 1 });
            lsn
        };
        // Track the live transaction's earliest record: the truncation
        // cutoff must never pass it. (`None`: the record is itself a
        // checkpoint.) Only the checkpointer reads this map, so the
        // common no-checkpoint configuration pays nothing on the
        // logging hot path.
        if self.checkpoints_enabled() {
            if let Some(txn) = txn {
                self.first_lsn.entry(txn).or_insert(lsn);
            }
            self.arm_checkpoint(ctx);
        }
        // Byte-threshold trigger: a site with a skewed write rate
        // checkpoints when the log *grows* enough, not merely when the
        // clock ticks. The guard keeps the checkpoint record itself
        // (which passes through here) from re-entering.
        if let Some(limit) = self.cfg.checkpoint_bytes {
            self.bytes_since_checkpoint += rec_bytes;
            if self.bytes_since_checkpoint >= limit && !self.checkpointing {
                self.do_checkpoint(ctx);
            }
        }
    }

    /// True when any checkpoint trigger (periodic tick or byte
    /// threshold) is configured — the gate on truncation bookkeeping.
    fn checkpoints_enabled(&self) -> bool {
        self.cfg.checkpoint_interval.is_some() || self.cfg.checkpoint_bytes.is_some()
    }

    /// Arms the periodic checkpoint tick if configured and not already
    /// outstanding. Lazy (armed by record arrival, not free-running) so
    /// an idle site quiesces.
    fn arm_checkpoint(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        if let Some(interval) = self.cfg.checkpoint_interval {
            if !self.checkpoint_armed {
                self.checkpoint_armed = true;
                ctx.set_timer(interval, NodeTimer::Checkpoint);
            }
        }
    }

    /// The checkpoint tick: if the log grew since the last checkpoint,
    /// force a [`LogRecord::Checkpoint`] carrying every retired outcome
    /// and truncate the prefix no live transaction (and no recovery)
    /// needs any more. Under group commit the truncation waits behind
    /// the force that makes the checkpoint durable, like every other
    /// effect that depends on a staged record.
    fn on_checkpoint_tick(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        self.checkpoint_armed = false;
        if self.cfg.checkpoint_interval.is_none() {
            return;
        }
        if self.do_checkpoint(ctx) {
            // Keep ticking while the site keeps logging.
            self.arm_checkpoint(ctx);
        }
    }

    /// Writes and forces one checkpoint record, then truncates. Shared
    /// by the periodic tick and the byte-threshold trigger. Returns
    /// `false` (without logging anything) when the log has not grown
    /// since the last checkpoint — stay quiet until the next record.
    fn do_checkpoint(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) -> bool {
        if self.checkpointing || self.storage.wal().next_lsn() <= self.last_checkpoint_end {
            return false;
        }
        // Compact outcomes, sorted for a canonical on-disk encoding.
        let mut retired: Vec<RetiredOutcome> = self
            .retired
            .iter()
            .map(|(&txn, r)| RetiredOutcome {
                txn,
                decision: r.decision,
                commit_version: r.commit_version,
            })
            .collect();
        retired.sort_unstable_by_key(|r| r.txn);
        let mut xretired: Vec<XRetiredOutcome> = self
            .xretired
            .iter()
            .map(|(&txn, x)| XRetiredOutcome {
                txn,
                decision: x.decision,
                branches: x
                    .branches
                    .iter()
                    .map(|(c, p, v)| (*c, p.iter().copied().collect(), *v))
                    .collect(),
            })
            .collect();
        xretired.sort_unstable_by_key(|x| x.txn);
        // Snapshot the versioned copies — the full retained chain per
        // item, so a recovered multi-version store can keep serving
        // snapshot reads below its watermark: committed values whose
        // records are truncated survive only here (the durable page
        // store of a real site, folded into the log).
        let item_ids: Vec<ItemId> = self.storage.items().collect();
        let items: Vec<(ItemId, qbc_core::ItemChain)> = item_ids
            .into_iter()
            .filter_map(|i| self.storage.item_versions(i).map(|c| (i, c.to_vec())))
            .collect();
        // Everything below the oldest live transaction's first record
        // AND below this checkpoint is dead: retired outcomes live in
        // the checkpoint now, decided-but-unretired transactions still
        // have their Decided record above their first_lsn.
        let checkpoint_lsn = self.storage.wal().next_lsn();
        let live_min = self
            .txns
            .keys()
            .chain(self.xcoords.keys())
            .filter_map(|t| self.first_lsn.get(t))
            .min()
            .copied()
            .unwrap_or(checkpoint_lsn);
        let cutoff = live_min.min(checkpoint_lsn);
        self.checkpointing = true;
        self.log_record(
            ctx,
            LogRecord::Checkpoint {
                retired,
                xretired,
                items,
            },
        );
        self.checkpointing = false;
        self.bytes_since_checkpoint = 0;
        self.last_checkpoint_end = self.storage.wal().next_lsn();
        if self.durability_barrier() {
            self.defer(DeferredOp::Truncate { cutoff });
        } else {
            self.storage.truncate_log_before(cutoff);
        }
        true
    }

    /// Drains locally queued (self-addressed) messages.
    fn pump(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        let me = self.cfg.site;
        while let Some(msg) = self.local_queue.pop_front() {
            self.handle_net(ctx, me, msg);
        }
    }

    fn handle_net(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, from: SiteId, msg: NetMsg) {
        match msg {
            NetMsg::Proto(m) => self.handle_proto(ctx, from, m),
            NetMsg::ProtoW { msg: m, wm } => {
                // Piggybacked watermark: max-merge (deliveries can
                // reorder; a watermark never regresses) then dispatch
                // the protocol message as if it arrived bare.
                if self.cfg.snapshot_reads {
                    let e = self.peer_watermarks.entry(from).or_insert(Version::INITIAL);
                    if wm > *e {
                        *e = wm;
                    }
                }
                self.handle_proto(ctx, from, m);
            }
            NetMsg::SnapReadReq { req_id, item } => {
                // Serve from the multi-version store at this site's own
                // shard watermark — locks and pins are never consulted.
                let wm = self.shard_watermark();
                let copy = self
                    .storage
                    .read_item_at(item, wm)
                    .map(|(v, val)| (v, *val));
                self.send_net(
                    ctx,
                    from,
                    NetMsg::SnapReadRep {
                        req_id,
                        item,
                        copy,
                        wm,
                    },
                );
            }
            NetMsg::SnapReadRep {
                req_id,
                item,
                copy,
                wm,
            } => {
                if self.cfg.snapshot_reads {
                    let e = self.peer_watermarks.entry(from).or_insert(Version::INITIAL);
                    if wm > *e {
                        *e = wm;
                    }
                }
                let resolved = match self.snap_reads.get_mut(&req_id) {
                    Some(r) if r.result == ReadResult::Pending && r.item == item => {
                        match copy {
                            Some((version, value)) => {
                                r.result = ReadResult::Success { version, value };
                                true
                            }
                            // A copyless answer (catalog drift): stay
                            // pending, the timeout advances to the next
                            // target.
                            None => false,
                        }
                    }
                    _ => false,
                };
                if resolved {
                    self.emit(
                        ctx.now(),
                        None,
                        EventKind::SnapshotRead { item, local: false },
                    );
                    self.arm_read_retire(ctx, req_id);
                }
            }
            NetMsg::Election { txn, spec, msg } => {
                self.handle_election_msg(ctx, from, txn, spec, msg)
            }
            NetMsg::ReadReq { req_id, item } => {
                let copy = if self.locks.is_locked(&item) {
                    // Pinned by an undecided transaction: inaccessible.
                    None
                } else {
                    self.storage.read_item(item).map(|(v, val)| (v, *val))
                };
                self.send_net(ctx, from, NetMsg::ReadRep { req_id, item, copy });
            }
            NetMsg::BeginTxn {
                txn,
                writeset,
                protocol,
            } => {
                // Wire form of `begin_transaction` for front-ends on
                // transports without direct node access.
                self.begin_transaction(ctx, txn, writeset, protocol);
            }
            NetMsg::BeginXTxn { txn, branches } => {
                self.begin_xshard(ctx, txn, branches);
            }
            NetMsg::BeginSnapRead { req_id, item } => {
                // Wire form of `start_snapshot_read` for front-ends on
                // transports without direct node access.
                self.start_snapshot_read(ctx, req_id, item);
            }
            NetMsg::ReadRep { req_id, item, copy } => {
                let Some(weight) = self.catalog.item(item).map(|spec| spec.weight_at(from)) else {
                    return;
                };
                let read_quorum = self
                    .catalog
                    .item(item)
                    .map(|s| s.read_quorum)
                    .unwrap_or(u32::MAX);
                if let Some(r) = self.reads.get_mut(&req_id) {
                    if r.result != ReadResult::Pending || r.item != item {
                        return;
                    }
                    if let Some((version, value)) = copy {
                        r.votes += weight;
                        if r.best.map(|(bv, _)| version > bv).unwrap_or(true) {
                            r.best = Some((version, value));
                        }
                        if r.votes >= read_quorum {
                            let (version, value) = r.best.expect("at least one copy");
                            r.result = ReadResult::Success { version, value };
                        }
                    }
                }
            }
        }
    }

    fn handle_proto(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, from: SiteId, m: Msg) {
        let txn = m.txn();
        // Cross-shard messages first: they address the X coordinator or
        // the branch machinery, not the per-transaction participant
        // table (and must work even when that table knows nothing yet).
        match &m {
            Msg::XBranchReq { spec, siblings } => {
                self.start_branch(ctx, spec, siblings);
                return;
            }
            Msg::XVote {
                yes,
                commit_version,
                ..
            } => {
                if let Some(x) = self.xcoords.get_mut(&txn) {
                    let was_decided = x.decision().is_some();
                    let actions = x.on_vote(from, *yes, *commit_version);
                    let now_decided = x.decision().is_some();
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                    // Only the None→Some transition queues retirement;
                    // late votes after the decision must not re-enqueue.
                    if now_decided && !was_decided {
                        self.schedule_retire(ctx.now(), txn);
                    }
                } else if let Some(xr) = self.xretired.get(&txn) {
                    let reply = xr.xdecide_for(from, txn);
                    self.send_net(ctx, from, NetMsg::Proto(reply));
                }
                return;
            }
            Msg::XOutcomeReq { .. } => {
                if let Some(x) = self.xcoords.get_mut(&txn) {
                    let actions = x.on_outcome_req(from);
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                } else if let Some(xr) = self.xretired.get(&txn) {
                    let reply = xr.xdecide_for(from, txn);
                    self.send_net(ctx, from, NetMsg::Proto(reply));
                } else if let Some(decision) = self
                    .txns
                    .get(&txn)
                    .and_then(|st| st.decided)
                    .or_else(|| self.retired.get(&txn).map(|r| r.decision))
                {
                    // Cooperative discovery: not the parent, but a
                    // decided branch of the same transaction (a branch
                    // only ever decides with the top-level outcome —
                    // via the parent's X-DECIDE or by aborting before
                    // voting yes, which forces a top-level abort). A
                    // sibling cannot know the asker's *branch* commit
                    // version, so the answer carries none; the asker's
                    // engine keeps its own held version, and an
                    // engine-less asker falls back to its locally
                    // learned PC version.
                    let reply = Msg::XDecide {
                        txn,
                        decision,
                        commit_version: None,
                    };
                    self.send_net(ctx, from, NetMsg::Proto(reply));
                }
                return;
            }
            Msg::XDecide {
                decision,
                commit_version,
                ..
            } => {
                self.handle_x_decide(ctx, from, txn, *decision, *commit_version);
                return;
            }
            _ => {}
        }
        // A retired transaction answers every straggler with its outcome
        // instead of resurrecting state (`Decided` itself needs no
        // answer — and must not echo into a reply loop).
        if !self.txns.contains_key(&txn) {
            if let Some(r) = self.retired.get(&txn) {
                if !matches!(m, Msg::Decided { .. }) {
                    let reply = Msg::Decided {
                        txn,
                        decision: r.decision,
                        commit_version: r.commit_version,
                    };
                    self.send_net(ctx, from, NetMsg::Proto(reply));
                }
                return;
            }
        }
        // Learn the spec from spec-carrying messages (a recovery
        // candidate's 1a may be the first word this site ever hears of
        // the transaction).
        match &m {
            Msg::VoteReq { spec } | Msg::StateReq { spec, .. } | Msg::PaxosP1a { spec, .. } => {
                self.ensure_txn(ctx.now(), spec);
            }
            _ => {}
        }
        if !self.txns.contains_key(&txn) {
            // A message about a transaction this site knows nothing of
            // (e.g. a stray ack to a recovered coordinator): ignore.
            return;
        }

        // Paxos acceptor role: 1a/2a address the co-located acceptor,
        // never the participant engine. The acceptor entry is created on
        // demand; its force-logged promise/acceptance records rebuild it
        // after a crash ([`recover_paxos`]). A decided site answers with
        // the outcome instead — an acceptor that kept promising would
        // leave a late candidate chasing a consensus that is already
        // over. A *remote* candidate's contact counts as coordinator
        // liveness for the watchdog; a candidate's own broadcast must
        // not, or a stale-ballot candidacy being ignored by every peer
        // would pet its own watchdog forever instead of escalating.
        if matches!(m, Msg::PaxosP1a { .. } | Msg::PaxosP2a { .. }) {
            if let Some(st) = self.txns.get_mut(&txn) {
                if let Some(decision) = st.decided {
                    let commit_version = st.commit_version();
                    self.send_net(
                        ctx,
                        from,
                        NetMsg::Proto(Msg::Decided {
                            txn,
                            decision,
                            commit_version,
                        }),
                    );
                    return;
                }
                if from != self.cfg.site {
                    st.last_coord_contact = ctx.now();
                }
            }
        }
        match &m {
            Msg::PaxosP1a { bal, .. } => {
                let mut actions = self.take_actions();
                self.acceptors
                    .entry(txn)
                    .or_default()
                    .on_p1a(txn, *bal, &mut actions);
                self.apply_actions(ctx, txn, from, actions);
                self.arm_watchdog(ctx, txn);
                return;
            }
            Msg::PaxosP2a { bal, votes, .. } => {
                let mut actions = self.take_actions();
                self.acceptors
                    .entry(txn)
                    .or_default()
                    .on_p2a(txn, *bal, votes, &mut actions);
                self.apply_actions(ctx, txn, from, actions);
                return;
            }
            _ => {}
        }

        // Dynamic vote decision: scripted no-votes and lock conflicts.
        if let Msg::VoteReq { spec } = &m {
            if self.txns[&txn].participant.state() == LocalState::Initial {
                let scripted_no = self.cfg.vote_no_on.contains(&txn);
                let locked = scripted_no || !self.try_lock_writeset(ctx.now(), txn, spec);
                let st = self.txns.get_mut(&txn).expect("ensured");
                st.participant.set_vote(!locked);
                if !locked && self.cfg.snapshot_reads {
                    // A yes vote pins local copies whose eventual commit
                    // version (if any) exceeds the local max it reports:
                    // that max floors the watermark until the decision.
                    let floor = spec
                        .writeset
                        .items()
                        .filter_map(|i| self.storage.item_version(i))
                        .max();
                    if let Some(floor) = floor {
                        self.stable_floors.insert(txn, floor);
                    }
                }
            }
        }
        if let Msg::Vote { yes, .. } = &m {
            self.emit(ctx.now(), Some(txn), EventKind::VoteIn { yes: *yes });
        }

        // The highest local version among writeset copies (reported in
        // yes votes; basis of the commit version). Only `VOTE-REQ`
        // handling reads it — a vote is the only reply that carries a
        // version — so every other message skips the writeset walk.
        let local_max_version = if matches!(m, Msg::VoteReq { .. }) {
            let st = &self.txns[&txn];
            st.spec
                .writeset
                .items()
                .filter_map(|i| self.storage.item_version(i))
                .max()
                .unwrap_or(Version::INITIAL)
        } else {
            Version::INITIAL
        };

        let catalog = Arc::clone(&self.catalog);
        let mut actions = self.take_actions();
        {
            let st = self.txns.get_mut(&txn).expect("checked");
            st.last_coord_contact = ctx.now();
            match &m {
                Msg::Vote {
                    yes, max_version, ..
                } => {
                    if let Some(c) = st.coordinator.as_mut() {
                        c.on_vote(from, *yes, *max_version, &catalog, &mut actions);
                    } else if let Some(p) = st.paxos.as_mut() {
                        p.on_vote(from, *yes, *max_version, &mut actions);
                    }
                }
                Msg::PaxosP1b { bal, accepted, .. } => {
                    if let Some(p) = st.paxos.as_mut() {
                        p.on_p1b(from, *bal, accepted, &mut actions);
                    }
                }
                Msg::PaxosP2b { bal, .. } => {
                    if let Some(p) = st.paxos.as_mut() {
                        p.on_p2b(from, *bal, &mut actions);
                    }
                }
                Msg::PcAck { .. } => {
                    if let Some(c) = st.coordinator.as_mut() {
                        c.on_pc_ack(from, &catalog, &mut actions);
                    }
                    if let Some(t) = st.termination.as_mut() {
                        actions.extend(t.on_pc_ack(from, &catalog));
                    }
                }
                Msg::PaAck { .. } => {
                    if let Some(t) = st.termination.as_mut() {
                        actions.extend(t.on_pa_ack(from, &catalog));
                    }
                }
                Msg::StateRep {
                    round,
                    state,
                    pc_version,
                    ..
                } => {
                    if let Some(t) = st.termination.as_mut() {
                        actions.extend(t.on_state_rep(from, *round, *state, *pc_version, &catalog));
                    }
                }
                Msg::Decided {
                    decision,
                    commit_version,
                    ..
                } => {
                    if let Some(t) = st.termination.as_mut() {
                        actions.extend(t.on_decided(*decision, *commit_version));
                    }
                    if let Some(p) = st.paxos.as_mut() {
                        // A straggler's answer terminates a live Paxos
                        // candidacy quietly: the participant path below
                        // applies the outcome locally, and the engine
                        // must stop re-broadcasting its round.
                        p.adopt_decision(*decision, *commit_version);
                    }
                    st.participant
                        .on_msg(from, &m, local_max_version, &mut actions);
                }
                // Participant-role messages.
                Msg::VoteReq { .. }
                | Msg::PrepareCommit { .. }
                | Msg::PrepareAbort { .. }
                | Msg::Commit { .. }
                | Msg::Abort { .. }
                | Msg::StateReq { .. } => {
                    st.participant
                        .on_msg(from, &m, local_max_version, &mut actions);
                }
                // Cross-shard and Paxos acceptor messages returned
                // early above.
                Msg::XBranchReq { .. }
                | Msg::XVote { .. }
                | Msg::XDecide { .. }
                | Msg::XOutcomeReq { .. }
                | Msg::PaxosP1a { .. }
                | Msg::PaxosP2a { .. } => unreachable!("dispatched before the engine match"),
            }
        }
        self.apply_actions(ctx, txn, from, actions);
        self.adopt_coordinator_decision(ctx.now(), txn);
        self.arm_watchdog(ctx, txn);
    }

    /// The cross-shard decision arrived at a branch site: terminate the
    /// branch with the parent's outcome. At the branch coordinator the
    /// engine broadcasts the command in-shard; a site without an engine
    /// (a recovered coordinator, or a discovering participant) applies
    /// or relays it directly. Idempotent once decided.
    fn handle_x_decide(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        from: SiteId,
        txn: TxnId,
        decision: Decision,
        commit_version: Option<Version>,
    ) {
        let site = self.cfg.site;
        enum Route {
            Engine(Vec<Action>),
            Rebroadcast(Arc<TxnSpec>, Option<Version>),
            Participant(Vec<Action>),
            Ignore,
        }
        let mut scratch = self.take_actions();
        let route = match self.txns.get_mut(&txn) {
            None => Route::Ignore, // unknown or retired: nothing held here
            Some(st) if st.decided.is_some() => Route::Ignore,
            Some(st) => {
                st.last_coord_contact = ctx.now();
                if let Some(c) = st.coordinator.as_mut() {
                    c.on_x_decide(decision, commit_version, &mut scratch);
                    Route::Engine(std::mem::take(&mut scratch))
                } else if let Some(p) = st.paxos.as_mut() {
                    p.on_x_decide(decision, commit_version, &mut scratch);
                    Route::Engine(std::mem::take(&mut scratch))
                } else if st.spec.coordinator == site {
                    // The parent's echo carries the branch version; a
                    // sibling's answer does not — fall back to the
                    // locally learned PC version.
                    let v = commit_version.or(st.participant.commit_version());
                    Route::Rebroadcast(Arc::clone(&st.spec), v)
                } else {
                    // A discovering participant: obey the command. The
                    // version falls back to the locally learned PC
                    // version; a commit without either is undeliverable
                    // (cannot happen: the parent echoes the version our
                    // branch reported) and is dropped defensively.
                    let v = commit_version.or(st.participant.commit_version());
                    let msg = match decision {
                        Decision::Commit => v.map(|v| Msg::Commit {
                            txn,
                            commit_version: v,
                        }),
                        Decision::Abort => Some(Msg::Abort { txn }),
                    };
                    match msg {
                        Some(m) if st.participant.state() != LocalState::Initial => {
                            st.participant
                                .on_msg(from, &m, Version::INITIAL, &mut scratch);
                            Route::Participant(std::mem::take(&mut scratch))
                        }
                        _ => Route::Ignore,
                    }
                }
            }
        };
        self.recycle_actions(scratch);
        match route {
            Route::Ignore => {}
            Route::Engine(actions) | Route::Participant(actions) => {
                self.apply_actions(ctx, txn, self.cfg.site, actions);
                self.adopt_coordinator_decision(ctx.now(), txn);
            }
            Route::Rebroadcast(spec, version) => {
                // Recovered branch coordinator without an engine:
                // re-issue the in-shard command (idempotent at every
                // receiver; self-addressed copy terminates the local
                // participant).
                let msg = match decision {
                    Decision::Commit => match version {
                        Some(v) => Msg::Commit {
                            txn,
                            commit_version: v,
                        },
                        // A sibling's versionless commit answer with no
                        // local PC version either: the in-shard command
                        // cannot be built yet. Drop it — the watchdog
                        // re-arms, and the parent's echo (which carries
                        // the version) answers a later retry.
                        None => return,
                    },
                    Decision::Abort => Msg::Abort { txn },
                };
                for to in spec.participants.iter().copied() {
                    self.send_net(ctx, to, NetMsg::Proto(msg.clone()));
                }
                if !spec.participants.contains(&site) {
                    if let Some(st) = self.txns.get_mut(&txn) {
                        let fresh = st.decided.is_none();
                        st.decided = Some(decision);
                        st.decided_at = Some(ctx.now());
                        st.decided_version = version;
                        if fresh {
                            self.note_decision(txn, decision, version);
                        }
                    }
                    self.schedule_retire(ctx.now(), txn);
                }
            }
        }
    }

    /// A coordinator that holds no copies (it is a client, not a
    /// participant — Example 3's s1) never receives the commit/abort
    /// command it broadcasts; its bookkeeping adopts the engine's
    /// decision directly. Participant coordinators are handled by the
    /// normal participant path (which also applies the updates), so
    /// they are excluded here.
    fn adopt_coordinator_decision(&mut self, now: Time, txn: TxnId) {
        if let Some(st) = self.txns.get_mut(&txn) {
            if st.decided.is_none() && !st.spec.participants.contains(&self.cfg.site) {
                let decided = match st.coordinator.as_ref().map(|c| c.phase()) {
                    Some(qbc_core::CoordPhase::Decided(d)) => Some(d),
                    _ => match st.paxos.as_ref().map(|p| p.phase()) {
                        Some(qbc_core::PaxosPhase::Decided(d)) => Some(d),
                        _ => None,
                    },
                };
                if let Some(d) = decided {
                    let version = st.decided_version;
                    st.decided = Some(d);
                    st.decided_at = Some(now);
                    self.schedule_retire(now, txn);
                    self.note_decision(txn, d, version);
                }
            }
        }
    }

    /// Queues a decided transaction (or cross-shard coordination) for
    /// retirement after the re-announce window. No-op without a
    /// configured [`NodeConfig::retire_after`].
    fn schedule_retire(&mut self, now: Time, txn: TxnId) {
        if self.cfg.retire_after.is_some() {
            self.retire_queue.push_back((now, txn));
        }
    }

    /// Retires everything decided longer than `retire_after` ago: the
    /// heavy per-transaction entry (engines, spec, audit trail) is
    /// replaced by a compact outcome record that keeps answering
    /// stragglers, bounding the live tables on long-running sites. Runs
    /// at the top of every message/timer delivery; the queue is in
    /// decision-time order, so the scan stops at the first young entry.
    fn sweep_retired(&mut self, now: Time) {
        let Some(after) = self.cfg.retire_after else {
            return;
        };
        while let Some(&(t, txn)) = self.retire_queue.front() {
            if now.since(t) < after {
                break;
            }
            self.retire_queue.pop_front();
            let mut retired_any = false;
            if let Some(st) = self.txns.get(&txn) {
                if let (Some(decision), Some(decided_at)) = (st.decided, st.decided_at) {
                    let commit_version = st.commit_version();
                    self.retired.insert(
                        txn,
                        RetiredTxn {
                            decision,
                            commit_version,
                            decided_at,
                        },
                    );
                    self.txns.remove(&txn);
                    retired_any = true;
                }
            }
            if let Some(x) = self.xcoords.get(&txn) {
                if let Some(decision) = x.decision() {
                    let versions = x.branch_versions();
                    let branches = x
                        .branches()
                        .iter()
                        .zip(versions)
                        .map(|(b, (_, v))| (b.coordinator, b.participants.clone(), v))
                        .collect();
                    self.xretired.insert(txn, XRetired { decision, branches });
                    self.xcoords.remove(&txn);
                    retired_any = true;
                }
            }
            // The acceptor's promise/accept state is only needed while
            // recovery candidates may still ask; a retired outcome
            // answers them directly.
            if !self.txns.contains_key(&txn) {
                self.acceptors.remove(&txn);
            }
            // Fully retired: the next checkpoint carries the outcome, so
            // this transaction no longer pins the truncation cutoff.
            if !self.txns.contains_key(&txn) && !self.xcoords.contains_key(&txn) {
                self.first_lsn.remove(&txn);
            }
            if retired_any && self.cfg.retire_horizon.is_some() {
                self.age_queue.push_back((now, txn));
            }
        }
        self.sweep_aged(now);
    }

    /// Ages retired outcomes out entirely once they have sat in the
    /// compact maps for [`NodeConfig::retire_horizon`]: the maps — and
    /// every checkpoint record serializing them — stay O(live +
    /// horizon) instead of O(history). A straggler asking after the
    /// horizon gets silence instead of the outcome, which is why the
    /// horizon must dwarf every retry window (see the config doc).
    fn sweep_aged(&mut self, now: Time) {
        let Some(horizon) = self.cfg.retire_horizon else {
            return;
        };
        while let Some(&(t, txn)) = self.age_queue.front() {
            if now.since(t) < horizon {
                break;
            }
            self.age_queue.pop_front();
            self.retired.remove(&txn);
            self.xretired.remove(&txn);
        }
    }

    fn try_lock_writeset(&mut self, now: Time, txn: TxnId, spec: &TxnSpec) -> bool {
        // No-wait 2PL: X-lock every local copy of the writeset; any
        // conflict means vote no (prevents distributed deadlock).
        let local_items: Vec<ItemId> = spec
            .writeset
            .items()
            .filter(|&i| {
                self.catalog
                    .item(i)
                    .map(|s| s.copies.contains_key(&self.cfg.site))
                    .unwrap_or(false)
            })
            .collect();
        for (k, item) in local_items.iter().enumerate() {
            match self.locks.acquire(txn, *item, LockMode::Exclusive) {
                LockOutcome::Granted => {}
                LockOutcome::Waiting => {
                    // Roll back the partial acquisition (and the queued
                    // request).
                    for it in &local_items[..=k] {
                        self.locks.release(&txn, it);
                    }
                    return false;
                }
            }
        }
        // The yes vote pins every local copy until the decision: the
        // pin-time clock starts here.
        for &item in &local_items {
            self.emit(now, Some(txn), EventKind::PinStart { item });
        }
        true
    }

    /// Consumes a filled action buffer (typically from [`take_actions`])
    /// and recycles it into the spare pool, so the steady-state message
    /// path allocates no `Vec<Action>` per event. Reentrancy
    /// (`RequestTermination` → election → nested `apply_actions`) is
    /// safe: each level pops its own buffer from the pool.
    ///
    /// [`take_actions`]: SiteNode::take_actions
    fn apply_actions(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        txn: TxnId,
        reply_to: SiteId,
        mut actions: Vec<Action>,
    ) {
        for a in actions.drain(..) {
            self.obs_action(ctx.now(), txn, &a);
            match a {
                Action::Reply(m) => self.send_net(ctx, reply_to, NetMsg::Proto(m)),
                Action::Send(to, m) => self.send_net(ctx, to, NetMsg::Proto(m)),
                Action::Broadcast(targets, m) => {
                    for to in targets {
                        self.send_net(ctx, to, NetMsg::Proto(m.clone()));
                    }
                }
                Action::Log(rec) => {
                    if self.cfg.snapshot_reads {
                        // A PreCommit fixes the commit version: the pin
                        // now guards exactly `commit_version`, so the
                        // floor rises to just below it (a decided-commit
                        // neighbor at `commit_version - 1` is stable).
                        if let LogRecord::PreCommit {
                            txn: pc_txn,
                            commit_version,
                        } = &rec
                        {
                            let floor = Version(commit_version.0.saturating_sub(1));
                            let e = self
                                .stable_floors
                                .entry(*pc_txn)
                                .or_insert(Version::INITIAL);
                            if floor > *e {
                                *e = floor;
                            }
                        }
                    }
                    self.log_record(ctx, rec)
                }
                Action::ApplyAndDecide {
                    decision,
                    commit_version,
                } => {
                    if self.durability_barrier() {
                        // The decision's log record is not durable yet;
                        // installing values and freeing locks waits for
                        // the force, like the messages announcing it.
                        self.defer(DeferredOp::Apply {
                            txn,
                            decision,
                            commit_version,
                        });
                    } else {
                        self.apply_decision(ctx.now(), txn, decision, commit_version)
                    }
                }
                Action::SetTimer(kind) => {
                    let span = match kind {
                        TimerKind::VoteCollection { .. }
                        | TimerKind::AckCollection { .. }
                        | TimerKind::StateCollection { .. }
                        | TimerKind::TerminationAcks { .. }
                        | TimerKind::Paxos1bCollection { .. }
                        | TimerKind::Paxos2bCollection { .. } => self.cfg.window_2t(),
                        TimerKind::CoordinatorWatch { .. } => self.cfg.watchdog_3t(),
                        TimerKind::BlockedRetry { .. } => self.cfg.blocked_retry,
                        TimerKind::XVoteCollection { .. } => self.cfg.x_window(),
                    };
                    ctx.set_timer(span, NodeTimer::Proto(kind));
                }
                Action::RequestTermination { txn } => {
                    self.start_termination_election(ctx, txn);
                }
                Action::DeclareBlocked { txn } => {
                    if let Some(st) = self.txns.get_mut(&txn) {
                        st.blocked = true;
                    }
                    if self.cfg.retry_blocked {
                        ctx.set_timer(
                            self.cfg.blocked_retry,
                            NodeTimer::Proto(TimerKind::BlockedRetry { txn }),
                        );
                    }
                }
                Action::ViolationNote { txn, note } => {
                    self.violations.push(Violation { txn, note });
                }
            }
        }
        self.recycle_actions(actions);
    }

    /// Pops a spare engine-action scratch buffer (empty, capacity
    /// retained from earlier events) or allocates the pool's first.
    fn take_actions(&mut self) -> Vec<Action> {
        self.spare_actions.pop().unwrap_or_default()
    }

    /// Returns an emptied action buffer to the pool (bounded, so a
    /// one-off burst does not pin memory forever).
    fn recycle_actions(&mut self, buf: Vec<Action>) {
        debug_assert!(buf.is_empty());
        if buf.capacity() > 0 && self.spare_actions.len() < 4 {
            self.spare_actions.push(buf);
        }
    }

    fn apply_decision(
        &mut self,
        now: Time,
        txn: TxnId,
        decision: Decision,
        commit_version: Option<Version>,
    ) {
        let mut applied = false;
        if let Some(st) = self.txns.get_mut(&txn) {
            if st.decided.is_some() {
                return;
            }
            applied = true;
            st.decided = Some(decision);
            st.decided_at = Some(now);
            st.blocked = false;
            if decision == Decision::Commit {
                let version = commit_version.expect("commit carries version");
                let spec = Arc::clone(&st.spec);
                for (&item, &value) in spec.writeset.updates.iter() {
                    if self.storage.read_item(item).is_some() {
                        // Regression errors mean the update was already
                        // applied (recovery replay): idempotent.
                        if self.storage.apply_update(item, version, value).is_ok()
                            && version > self.vmax
                        {
                            self.vmax = version;
                        }
                    }
                }
            }
            self.schedule_retire(now, txn);
            self.note_decision(txn, decision, commit_version);
        }
        // Pin-time clocks stop with the release; the walk over held
        // locks is skipped entirely when no sink is wired.
        if self.cfg.obs.is_some() {
            for (item, _) in self.locks.held_by(&txn) {
                self.emit(now, Some(txn), EventKind::PinEnd { item });
            }
        }
        self.locks.release_all(&txn);
        if applied {
            self.emit(now, Some(txn), EventKind::DecisionApplied { decision });
        }
        if self.cfg.snapshot_reads {
            // The decision frees this transaction's pins: its floor no
            // longer binds the watermark, which may now advance (and the
            // shard watermark with it, unlocking version GC).
            self.stable_floors.remove(&txn);
            self.refresh_watermark();
            self.gc_versions();
        }
    }

    /// Recomputes the local commit-stable watermark: everything at or
    /// below `vmax` is stable except what an undecided pinning
    /// transaction's floor still protects. Monotone by construction
    /// (only ever raised).
    fn refresh_watermark(&mut self) {
        let mut wm = self.vmax;
        for &floor in self.stable_floors.values() {
            wm = wm.min(floor);
        }
        if wm > self.local_wm {
            self.local_wm = wm;
        }
    }

    /// Drops item versions below the *shard* watermark (the level
    /// snapshot reads are served at — a peer may still serve reads at
    /// its lower watermark, so GC must not outrun the minimum).
    fn gc_versions(&mut self) {
        let wm = self.shard_watermark();
        if wm > self.last_gc_wm {
            self.last_gc_wm = wm;
            self.storage.gc_versions_below(wm);
        }
    }

    fn arm_watchdog(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, txn: TxnId) {
        if let Some(st) = self.txns.get_mut(&txn) {
            if st.decided.is_none() && !st.watchdog_armed {
                st.watchdog_armed = true;
                ctx.set_timer(
                    self.cfg.watchdog_3t(),
                    NodeTimer::Proto(TimerKind::CoordinatorWatch { txn }),
                );
            }
        }
    }

    fn start_termination_election(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, txn: TxnId) {
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        if st.decided.is_some() || st.termination_rounds >= self.cfg.max_termination_rounds {
            return;
        }
        if let Some(parent) = st.spec.parent {
            // A branch of a cross-shard transaction may not terminate
            // in-shard: once prepared it could contradict the top-level
            // decision (e.g. a PC quorum committing a branch the parent
            // aborted). Outcome discovery replaces the election; the
            // watchdog re-arms, so the ask retries until answered.
            // Sibling branch coordinators are asked alongside the
            // parent — any decided branch can relay the outcome, so a
            // crashed parent no longer blocks until recovery.
            let targets = discovery_targets(parent, &st.x_siblings, self.cfg.site);
            for to in targets {
                self.send_net(ctx, to, NetMsg::Proto(Msg::XOutcomeReq { txn }));
            }
            self.emit(ctx.now(), Some(txn), EventKind::OutcomeDiscoveryOut);
            return;
        }
        if st.spec.protocol == ProtocolKind::PaxosCommit {
            // Paxos Commit replaces the termination election entirely:
            // any participant may stand up as a recovery candidate and
            // run Phase 1a at a ballot above every earlier one. The
            // acceptor majority then tells the candidate what (if
            // anything) was already chosen; unchosen instances are
            // presumed aborted.
            st.termination_rounds += 1;
            let bal = qbc_election::recovery_ballot(st.termination_rounds, self.cfg.site);
            let spec = Arc::clone(&st.spec);
            let mut candidate = PaxosLeader::recover(spec, bal);
            if self.cfg.mutation_weaken_paxos {
                candidate = candidate.with_weakened_quorum();
            }
            st.paxos = Some(candidate);
            let mut actions = self.take_actions();
            let st = self.txns.get_mut(&txn).expect("still live");
            st.paxos
                .as_mut()
                .expect("just installed")
                .start(&mut actions);
            self.apply_actions(ctx, txn, self.cfg.site, actions);
            return;
        }
        let spec = Arc::clone(&st.spec);
        if st.elector.is_none() {
            st.elector = Some(Elector::new(self.cfg.site, spec.participants.clone()));
        }
        let actions = st
            .elector
            .as_mut()
            .expect("just created")
            .step(ElInput::Start);
        self.emit(ctx.now(), Some(txn), EventKind::ElectionStarted);
        self.apply_election_actions(ctx, txn, spec, actions);
    }

    fn handle_election_msg(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        from: SiteId,
        txn: TxnId,
        spec: Arc<TxnSpec>,
        msg: ElectionMsg,
    ) {
        // A retired transaction answers the election with its outcome
        // instead of resurrecting state.
        if let Some(r) = self.retired.get(&txn) {
            let reply = Msg::Decided {
                txn,
                decision: r.decision,
                commit_version: r.commit_version,
            };
            self.send_net(ctx, from, NetMsg::Proto(reply));
            return;
        }
        self.ensure_txn(ctx.now(), &spec);
        let st = self.txns.get_mut(&txn).expect("ensured");
        // A decided site answers elections with the outcome directly.
        if let Some(decision) = st.decided {
            let commit_version = st.commit_version();
            self.send_net(
                ctx,
                from,
                NetMsg::Proto(Msg::Decided {
                    txn,
                    decision,
                    commit_version,
                }),
            );
            return;
        }
        st.last_coord_contact = ctx.now();
        if st.elector.is_none() {
            st.elector = Some(Elector::new(self.cfg.site, spec.participants.clone()));
        }
        let actions = st
            .elector
            .as_mut()
            .expect("just created")
            .step(ElInput::Msg { from, msg });
        self.apply_election_actions(ctx, txn, spec, actions);
        self.arm_watchdog(ctx, txn);
    }

    fn apply_election_actions(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg, NodeTimer>,
        txn: TxnId,
        spec: Arc<TxnSpec>,
        actions: Vec<ElAction>,
    ) {
        for a in actions {
            match a {
                ElAction::Send { to, msg } => {
                    let m = NetMsg::Election {
                        txn,
                        spec: Arc::clone(&spec),
                        msg,
                    };
                    self.send_net(ctx, to, m);
                }
                ElAction::SetTimer(timer) => {
                    ctx.set_timer(self.cfg.window_2t(), NodeTimer::Election { txn, timer });
                }
                ElAction::Elected => self.start_termination_round(ctx, txn),
                ElAction::CoordinatorIs(_) => {
                    if let Some(st) = self.txns.get_mut(&txn) {
                        st.last_coord_contact = ctx.now();
                    }
                }
            }
        }
    }

    fn start_termination_round(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, txn: TxnId) {
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        if st.decided.is_some() {
            return;
        }
        // An elected leader that never voted seeds its own `q` state
        // into the round's view — a veto, which must be durable and
        // irrevocable before the round runs (see
        // `Participant::veto_abort`).
        let mut veto = self.take_actions();
        let st = self.txns.get_mut(&txn).expect("checked above");
        st.participant.veto_abort(&mut veto);
        if veto.is_empty() {
            self.recycle_actions(veto);
        } else {
            self.apply_actions(ctx, txn, self.cfg.site, veto);
        }
        let Some(st) = self.txns.get_mut(&txn) else {
            return;
        };
        st.termination_rounds += 1;
        let round = st.termination_rounds;
        let kind = qbc_core::termination_kind_for(st.spec.protocol, self.cfg.site_votes.as_ref());
        let (term, actions) = Termination::start(
            self.cfg.site,
            Arc::clone(&st.spec),
            kind,
            round,
            st.participant.state(),
            st.participant.commit_version(),
        );
        st.termination = Some(term);
        self.emit(ctx.now(), Some(txn), EventKind::TerminationRound { round });
        self.apply_actions(ctx, txn, self.cfg.site, actions);
    }
}

impl Process for SiteNode {
    type Msg = NetMsg;
    type Timer = NodeTimer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        // A node built over a reopened (non-empty) file WAL holds
        // durable history but no volatile state: recover before serving
        // anything, exactly as post-crash recovery would. A fresh log
        // is a no-op, so newly created clusters (and their golden
        // digests) are unaffected.
        if !self.storage.wal().is_empty() {
            self.on_recover(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, from: SiteId, msg: NetMsg) {
        self.sweep_retired(ctx.now());
        self.handle_net(ctx, from, msg);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, _id: TimerId, timer: NodeTimer) {
        self.sweep_retired(ctx.now());
        let catalog = Arc::clone(&self.catalog);
        match timer {
            NodeTimer::Proto(kind) => match kind {
                TimerKind::VoteCollection { txn } => {
                    let mut actions = self.take_actions();
                    if let Some(st) = self.txns.get_mut(&txn) {
                        if let Some(c) = st.coordinator.as_mut() {
                            c.on_vote_timer(&mut actions);
                        } else if let Some(p) = st.paxos.as_mut() {
                            p.on_vote_timer(&mut actions);
                        }
                    }
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                    self.adopt_coordinator_decision(ctx.now(), txn);
                }
                TimerKind::Paxos1bCollection { txn, bal } => {
                    // Guarded on the undecided state: a leader stuck in
                    // `Proposing` after a higher-ballot candidate already
                    // decided would otherwise re-broadcast forever.
                    let mut actions = self.take_actions();
                    if let Some(p) = self
                        .txns
                        .get_mut(&txn)
                        .filter(|st| st.decided.is_none())
                        .and_then(|st| st.paxos.as_mut())
                    {
                        p.on_1b_timer(bal, &mut actions);
                    }
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                }
                TimerKind::Paxos2bCollection { txn, bal } => {
                    let mut actions = self.take_actions();
                    if let Some(p) = self
                        .txns
                        .get_mut(&txn)
                        .filter(|st| st.decided.is_none())
                        .and_then(|st| st.paxos.as_mut())
                    {
                        p.on_2b_timer(bal, &mut actions);
                    }
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                }
                TimerKind::AckCollection { txn } => {
                    let mut actions = self.take_actions();
                    if let Some(c) = self
                        .txns
                        .get_mut(&txn)
                        .and_then(|st| st.coordinator.as_mut())
                    {
                        c.on_ack_timer(&catalog, &mut actions);
                    }
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                    self.adopt_coordinator_decision(ctx.now(), txn);
                }
                TimerKind::StateCollection { txn, round } => {
                    let actions = self
                        .txns
                        .get_mut(&txn)
                        .and_then(|st| st.termination.as_mut())
                        .map(|t| t.on_state_timer(round, &catalog))
                        .unwrap_or_default();
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                }
                TimerKind::TerminationAcks { txn, round } => {
                    let actions = self
                        .txns
                        .get_mut(&txn)
                        .and_then(|st| st.termination.as_mut())
                        .map(|t| t.on_acks_timer(round, &catalog))
                        .unwrap_or_default();
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                }
                TimerKind::CoordinatorWatch { txn } => self.on_watchdog(ctx, txn),
                TimerKind::XVoteCollection { txn } => {
                    let actions = self
                        .xcoords
                        .get_mut(&txn)
                        .map(|x| x.on_vote_timer())
                        .unwrap_or_default();
                    let decided = !actions.is_empty();
                    self.apply_actions(ctx, txn, self.cfg.site, actions);
                    if decided {
                        self.schedule_retire(ctx.now(), txn);
                    }
                }
                TimerKind::BlockedRetry { txn } => {
                    let undecided = self
                        .txns
                        .get(&txn)
                        .map(|st| st.decided.is_none())
                        .unwrap_or(false);
                    if undecided {
                        self.start_termination_election(ctx, txn);
                    }
                }
            },
            NodeTimer::Election { txn, timer } => {
                let (spec, actions) = match self.txns.get_mut(&txn) {
                    Some(st) if st.decided.is_none() => match st.elector.as_mut() {
                        Some(e) => (Arc::clone(&st.spec), e.step(ElInput::Timer(timer))),
                        None => return,
                    },
                    _ => return,
                };
                self.apply_election_actions(ctx, txn, spec, actions);
            }
            NodeTimer::ReadTimeout { req_id } => {
                if let Some(r) = self.reads.get_mut(&req_id) {
                    if r.result == ReadResult::Pending {
                        r.result = ReadResult::Unavailable;
                    }
                    // Whatever the outcome, the collector's life now has
                    // a bound: retire it after the polling grace period.
                    self.arm_read_retire(ctx, req_id);
                }
            }
            NodeTimer::ReadRetire { req_id } => {
                self.reads.remove(&req_id);
                self.snap_reads.remove(&req_id);
            }
            NodeTimer::SnapReadTimeout { req_id } => self.on_snap_read_timeout(ctx, req_id),
            NodeTimer::FlushWal => {
                self.flush_timer = None;
                self.flush_wal(ctx);
            }
            NodeTimer::WalForceDone { batch } => {
                if let Some(ops) = self.inflight_forces.remove(&batch) {
                    self.run_deferred(ctx, ops);
                }
            }
            NodeTimer::Checkpoint => self.on_checkpoint_tick(ctx),
        }
        self.pump(ctx);
    }

    fn on_crash(&mut self, now: Time) {
        // Volatile state dies with the site; the WAL and item store
        // survive inside `storage` (which also drops staged-but-unforced
        // log records — the group-commit loss window).
        self.storage.crash();
        self.txns.clear();
        self.xcoords.clear();
        // Acceptor promises/accepts are durable (force-logged before
        // every echo); the in-memory map is rebuilt from the WAL.
        self.acceptors.clear();
        // Retired summaries are volatile too: the WAL still holds every
        // record they were distilled from, so recovery rebuilds them.
        self.retired.clear();
        self.xretired.clear();
        self.retire_queue.clear();
        self.age_queue.clear();
        self.decision_events.clear();
        self.reads.clear();
        self.snap_reads.clear();
        self.locks = LockManager::new();
        self.local_queue.clear();
        self.gated_on_buffer.clear();
        self.inflight_forces.clear();
        self.flush_timer = None;
        self.wal_free_at = Time::ZERO;
        // Checkpoint bookkeeping is volatile (timers from before the
        // crash never fire); recovery rebuilds it from the log.
        self.first_lsn.clear();
        self.checkpoint_armed = false;
        self.last_checkpoint_end = Lsn(0);
        self.bytes_since_checkpoint = 0;
        self.checkpointing = false;
        // Watermark state is volatile; recovery rebuilds floors from
        // in-doubt records and vmax from the durable store. Peers keep
        // their last-heard value for this site — stale but valid, since
        // decided-ness never regresses.
        self.stable_floors.clear();
        self.peer_watermarks.clear();
        self.local_wm = Version::INITIAL;
        self.vmax = Version::INITIAL;
        self.last_gc_wm = Version::INITIAL;
        self.emit(now, None, EventKind::Crash);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>) {
        // Checkpoint outcomes first: they stand in for truncated
        // per-transaction records, so the retired maps must answer
        // before the replay passes decide what to resurrect.
        let (ck_retired, ck_xretired, ck_items) = match last_checkpoint(self.log_records()) {
            Some((r, x, i)) => (r.to_vec(), x.to_vec(), i.to_vec()),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        // Item snapshot before the replay passes: suffix records carry
        // only post-checkpoint updates. Chain installation is additive
        // and idempotent, so never-written copies (snapshot at the
        // initial version) fall through to the load-time value
        // harmlessly.
        for (item, chain) in ck_items {
            if self.storage.read_item(item).is_some() {
                self.storage.install_item_chain(item, &chain);
            }
        }
        for o in ck_retired {
            self.retired.insert(
                o.txn,
                RetiredTxn {
                    decision: o.decision,
                    commit_version: o.commit_version,
                    decided_at: ctx.now(),
                },
            );
            // Re-enter the aging pipeline with a fresh clock: the
            // recovered site grants stragglers a full horizon again
            // rather than guessing how much had already elapsed.
            if self.cfg.retire_horizon.is_some() {
                self.age_queue.push_back((ctx.now(), o.txn));
            }
        }
        for o in ck_xretired {
            if self.cfg.retire_horizon.is_some() && !self.retired.contains_key(&o.txn) {
                self.age_queue.push_back((ctx.now(), o.txn));
            }
            self.xretired.insert(
                o.txn,
                XRetired {
                    decision: o.decision,
                    branches: o
                        .branches
                        .into_iter()
                        .map(|(c, p, v)| (c, p.into_iter().collect(), v))
                        .collect(),
                },
            );
        }
        // Rebuild the truncation bookkeeping from the durable log: the
        // first retained LSN per transaction, and the log end as of the
        // newest checkpoint.
        for (lsn, rec) in self.storage.wal().replay() {
            match rec.txn() {
                Some(t) => {
                    self.first_lsn.entry(t).or_insert(lsn);
                }
                None => self.last_checkpoint_end = Lsn(lsn.0 + 1),
            }
        }
        let recovered = recover_state(self.storage.wal().replay().map(|(_, r)| r));
        let site = self.cfg.site;
        let faulty = self.cfg.faulty;
        for (txn, rec) in recovered {
            if self.retired.contains_key(&txn) {
                // Retired before the checkpoint: only leftover records
                // of an already-answered history (truncation keeps
                // whole segments). The compact outcome keeps answering.
                continue;
            }
            let Some(spec) = rec.spec.clone() else {
                // Without a spec (vote-no abort) there is nothing to
                // re-enter; the decision is already durable.
                continue;
            };
            let participant = Participant::from_recovery(
                site,
                txn,
                ParticipantConfig {
                    vote_yes: true,
                    faulty,
                },
                &rec,
            );
            let state = participant.state();
            let decided = state.decision();
            // Re-apply committed updates (idempotent: version checks).
            if decided == Some(Decision::Commit) {
                if let Some(version) = rec.commit_version {
                    for (&item, &value) in spec.writeset.updates.iter() {
                        if self.storage.read_item(item).is_some() {
                            let _ = self.storage.apply_update(item, version, value);
                        }
                    }
                }
            }
            // Re-acquire locks for in-doubt transactions: their outcome
            // is unknown, so their items must stay inaccessible.
            if decided.is_none() {
                for item in spec.writeset.items() {
                    if self.storage.read_item(item).is_some() {
                        let _ = self.locks.acquire(txn, item, LockMode::Exclusive);
                        self.emit(ctx.now(), Some(txn), EventKind::PinStart { item });
                    }
                }
                if self.cfg.snapshot_reads {
                    // Rebuild the watermark floor the in-doubt pin
                    // imposes: at least the current local max of its
                    // writeset copies, raised to just below the commit
                    // version when a PreCommit record fixed it.
                    let mut floor = spec
                        .writeset
                        .items()
                        .filter_map(|i| self.storage.item_version(i))
                        .max();
                    if let Some(cv) = rec.commit_version {
                        let pc = Version(cv.0.saturating_sub(1));
                        floor = Some(floor.map_or(pc, |f| f.max(pc)));
                    }
                    if let Some(floor) = floor {
                        self.stable_floors.insert(txn, floor);
                    }
                }
            }
            self.txns.insert(
                txn,
                TxnState {
                    spec,
                    participant,
                    coordinator: None,
                    paxos: None,
                    termination: None,
                    elector: None,
                    last_coord_contact: ctx.now(),
                    watchdog_armed: false,
                    decided,
                    decided_at: if decided.is_some() {
                        Some(ctx.now())
                    } else {
                        None
                    },
                    decided_version: None,
                    blocked: false,
                    termination_rounds: 0,
                    started_at: ctx.now(),
                    // Sibling knowledge is volatile: a recovered branch
                    // falls back to parent-only outcome discovery.
                    x_siblings: Vec::new(),
                },
            );
            if decided.is_none() {
                self.arm_watchdog(ctx, txn);
            } else {
                self.schedule_retire(ctx.now(), txn);
            }
            // Coordinator-side recovery duties.
            let st = self.txns.get(&txn).expect("just inserted");
            if st.spec.coordinator != site {
                continue;
            }
            let targets: Vec<SiteId> = st.spec.participants.iter().copied().collect();
            let is_participant = st.spec.participants.contains(&site);
            let protocol = st.spec.protocol;
            let is_branch = st.spec.parent.is_some();
            let commit_version = st.participant.commit_version();
            match st.decided {
                // Re-announce a decision that may never have left this
                // site (crash between log force and broadcast).
                Some(decision) => {
                    for to in targets {
                        self.send_net(
                            ctx,
                            to,
                            NetMsg::Proto(Msg::Decided {
                                txn,
                                decision,
                                commit_version,
                            }),
                        );
                    }
                }
                // 2PC presumed abort: the commit point is this site's
                // own Decided record; its absence proves the transaction
                // never committed, so the recovering coordinator may
                // (must, for liveness) abort it. The quorum protocols
                // may NOT do this — their termination protocols can
                // commit without the coordinator — and neither may a
                // *branch* of a cross-shard transaction under any
                // protocol: its commit point lives at the parent, which
                // may already have counted this shard's yes vote. A
                // recovered branch rejoins and rediscovers the outcome
                // (the watchdog armed above drives the asks).
                None if protocol == ProtocolKind::TwoPhase && !is_branch => {
                    // Through the configured force policy, so recovery
                    // pays the same device costs as normal operation and
                    // the abort broadcasts below wait for the force.
                    self.log_record(
                        ctx,
                        LogRecord::Decided {
                            txn,
                            decision: Decision::Abort,
                            commit_version: None,
                        },
                    );
                    if is_participant {
                        // Terminate the local participant too.
                        let mut actions = self.take_actions();
                        self.txns
                            .get_mut(&txn)
                            .expect("present")
                            .participant
                            .on_msg(site, &Msg::Abort { txn }, Version::INITIAL, &mut actions);
                        self.apply_actions(ctx, txn, site, actions);
                    } else if let Some(st) = self.txns.get_mut(&txn) {
                        st.decided = Some(Decision::Abort);
                        st.decided_at = Some(ctx.now());
                        self.note_decision(txn, Decision::Abort, None);
                    }
                    for to in targets {
                        self.send_net(ctx, to, NetMsg::Proto(Msg::Abort { txn }));
                    }
                }
                None => {}
            }
        }
        // Cross-shard coordinator recovery (after the participant pass,
        // so self-addressed X-DECIDEs find the local branch state): an
        // undecided XStart is presumed aborted — no durable XDecision
        // proves no commit X-DECIDE ever left this site — and a decided
        // one is re-announced to every branch coordinator.
        let xrecovered = recover_xstate(self.storage.wal().replay().map(|(_, r)| r));
        for (txn, rec) in xrecovered {
            if self.xretired.contains_key(&txn) {
                // Retired into the checkpoint: the compact record keeps
                // answering orphans; no engine (and no re-announce
                // storm) needed.
                continue;
            }
            let (x, actions) = XTxnCoordinator::from_recovery(txn, &rec);
            self.xcoords.insert(txn, x);
            self.apply_actions(ctx, txn, self.cfg.site, actions);
            self.schedule_retire(ctx.now(), txn);
        }
        // Paxos Commit acceptor recovery: promises and accepted batches
        // were force-logged before every 1b/2b echo, so the durable
        // records reconstruct exactly what this acceptor may still be
        // held to by a recovery candidate. Decided or retired
        // transactions answer with the outcome instead.
        for (txn, rec) in recover_paxos(self.storage.wal().replay().map(|(_, r)| r)) {
            if self.retired.contains_key(&txn) {
                continue;
            }
            if self.txns.get(&txn).is_some_and(|st| st.decided.is_some()) {
                continue;
            }
            self.acceptors
                .insert(txn, PaxosAcceptor::from_recovery(&rec));
        }
        // Only live transactions pin the truncation cutoff; leftover
        // entries for retired/abandoned ones would pin it forever.
        let (txns, xcoords) = (&self.txns, &self.xcoords);
        self.first_lsn
            .retain(|t, _| txns.contains_key(t) || xcoords.contains_key(t));
        if self.cfg.snapshot_reads {
            // Rebuild vmax from the durable store (every installed
            // version survived in the chains) and recompute the local
            // watermark over the floors the in-doubt pass re-imposed.
            let items: Vec<ItemId> = self.storage.items().collect();
            for i in items {
                if let Some(v) = self.storage.item_version(i) {
                    if v > self.vmax {
                        self.vmax = v;
                    }
                }
            }
            self.refresh_watermark();
        }
        // Emitted after the re-pins above: recovery's re-acquired locks
        // register while the site still counts as down, so the
        // availability tracker sees the copies stay inaccessible across
        // the down→up edge.
        self.emit(ctx.now(), None, EventKind::Recover);
        self.pump(ctx);
    }
}

impl SiteNode {
    fn on_watchdog(&mut self, ctx: &mut Ctx<'_, NetMsg, NodeTimer>, txn: TxnId) {
        let now = ctx.now();
        let watchdog = self.cfg.watchdog_3t();
        let site = self.cfg.site;
        {
            let Some(st) = self.txns.get_mut(&txn) else {
                return;
            };
            st.watchdog_armed = false;
            if st.decided.is_some() {
                return;
            }
        }
        let mut actions = self.take_actions();
        let (expired, orphan_discovery) = {
            let st = self.txns.get_mut(&txn).expect("checked above");
            if now.since(st.last_coord_contact) >= watchdog {
                st.participant.on_coordinator_silent(&mut actions);
                // A held branch coordinator that holds no copies has
                // a participant still in `q` (which stays quiet):
                // it must still discover the cross-shard outcome —
                // from the parent, and cooperatively from sibling
                // branch coordinators.
                let discovery = if actions.is_empty() && st.spec.coordinator == site {
                    st.spec
                        .parent
                        .map(|p| discovery_targets(p, &st.x_siblings, site))
                } else {
                    None
                };
                (true, discovery)
            } else {
                (false, None)
            }
        };
        if expired {
            if let Some(targets) = orphan_discovery {
                for to in targets {
                    self.send_net(ctx, to, NetMsg::Proto(Msg::XOutcomeReq { txn }));
                }
                self.emit(now, Some(txn), EventKind::OutcomeDiscoveryOut);
            }
            self.apply_actions(ctx, txn, self.cfg.site, actions);
        } else {
            self.recycle_actions(actions);
        }
        // Re-arm while undecided (drives the re-entrant retry loop).
        self.arm_watchdog(ctx, txn);
        self.pump(ctx);
    }
}

/// Who an orphaned branch asks for the cross-shard outcome: the parent
/// first, then every sibling branch coordinator (cooperative
/// discovery), skipping the parent (no duplicate ask when a sibling's
/// coordinator *is* the parent's site) and this site itself.
fn discovery_targets(parent: SiteId, siblings: &[SiteId], this: SiteId) -> Vec<SiteId> {
    let mut targets = vec![parent];
    targets.extend(
        siblings
            .iter()
            .copied()
            .filter(|&s| s != parent && s != this),
    );
    targets
}

/// Canonical whole-site state hash for the model checker's visited-set.
///
/// Canonicalisation rules:
///
/// * hash-map tables (`txns`, `xcoords`, `retired`, `xretired`,
///   `first_lsn`) are sorted by key first — their iteration order is
///   insertion history, not state;
/// * absolute timestamps are hashed *relative* to `now`
///   (`last_coord_contact` feeds the watchdog's `now.since(..)`
///   comparison; `wal_free_at` is the log device's idle point), so
///   states that differ only by a clock translation merge;
/// * pure history is excluded: the participant's transition audit
///   trail, the lock manager's activity counters, `started_at`
///   (metrics-only), force/batch counters and the spare-buffer cache —
///   hashing any of it would make every distinct path hash distinct and
///   destroy the merging that keeps exhaustive search tractable.
impl qbc_simnet::Fingerprint for SiteNode {
    fn fingerprint(&self, now: Time, h: &mut qbc_simnet::FastHasher) {
        use std::fmt::Write as _;
        use std::hash::Hasher as _;
        let mut s = String::with_capacity(1024);
        // Durable half: item store, then the retained + pending log.
        // Log content is state (recovery replays it), and per-site
        // record order is fixed by the site's own event order, so
        // hashing it does not break cross-site delivery commutation.
        for item in self.storage.items() {
            // The whole retained chain: with version retention > 1 the
            // older versions are observable (snapshot reads), so states
            // differing only there must not merge.
            let chain = self.storage.item_versions(item);
            let _ = write!(s, "i{item:?}={chain:?};");
        }
        let wal = self.storage.wal();
        let _ = write!(s, "|wal@{:?}", wal.start_lsn());
        for r in wal.records() {
            let _ = write!(s, "{r:?};");
        }
        let _ = write!(s, "|pend{}", wal.pending_len());
        // Volatile half: lock table (stats-free snapshot), reads,
        // violations, the local self-delivery queue (empty between
        // events) and the durability-barrier machinery.
        let _ = write!(s, "|locks{:?}", self.locks.table_snapshot());
        let _ = write!(s, "|reads{:?}", self.reads);
        let _ = write!(s, "|viol{:?}", self.violations);
        let _ = write!(s, "|lq{:?}", self.local_queue);
        let _ = write!(s, "|dev{}", self.wal_free_at.since(now).0);
        let _ = write!(s, "|gated{:?}", self.gated_on_buffer);
        for ops in self.inflight_forces.values() {
            let _ = write!(s, "|inflight{ops:?}");
        }
        let _ = write!(s, "|flush{}", self.flush_timer.is_some());
        let _ = write!(
            s,
            "|ckpt{}@{:?}",
            self.checkpoint_armed, self.last_checkpoint_end
        );
        // Snapshot-read machinery (all constant when the feature is
        // off, so legacy state spaces merge exactly as before).
        let _ = write!(s, "|snreads{:?}", self.snap_reads);
        let _ = write!(s, "|ckb{}", self.bytes_since_checkpoint);
        let _ = write!(
            s,
            "|wm{:?},{:?},{:?}",
            self.local_wm, self.vmax, self.last_gc_wm
        );
        let mut floors: Vec<(TxnId, Version)> =
            self.stable_floors.iter().map(|(t, v)| (*t, *v)).collect();
        floors.sort_unstable();
        let _ = write!(s, "|floors{floors:?}");
        let mut pws: Vec<(SiteId, Version)> =
            self.peer_watermarks.iter().map(|(p, v)| (*p, *v)).collect();
        pws.sort_unstable();
        let _ = write!(s, "|pwm{pws:?}");
        h.write(s.as_bytes());
        // Per-transaction engines, sorted by id.
        let mut ids: Vec<TxnId> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let st = self.txns.get(&id).expect("sorted key");
            let mut t = format!("t{id:?}");
            st.participant.fingerprint(now, h);
            if let Some(c) = &st.coordinator {
                c.fingerprint(now, h);
            }
            if let Some(term) = &st.termination {
                term.fingerprint(now, h);
            }
            if let Some(e) = &st.elector {
                e.fingerprint(now, h);
            }
            if let Some(p) = &st.paxos {
                p.fingerprint(now, h);
            }
            let _ = write!(
                t,
                "|{}{}{}{}{}|{}|{:?}|{:?}|{}|{}|{:?}",
                st.coordinator.is_some() as u8,
                st.termination.is_some() as u8,
                st.elector.is_some() as u8,
                st.paxos.is_some() as u8,
                st.watchdog_armed as u8,
                now.since(st.last_coord_contact).0,
                st.decided,
                st.decided_version,
                st.blocked as u8,
                st.termination_rounds,
                st.x_siblings,
            );
            h.write(t.as_bytes());
        }
        let mut xids: Vec<TxnId> = self.xcoords.keys().copied().collect();
        xids.sort_unstable();
        for id in xids {
            h.write(format!("x{id:?}").as_bytes());
            self.xcoords
                .get(&id)
                .expect("sorted key")
                .fingerprint(now, h);
        }
        // Paxos acceptor table, sorted by transaction.
        let mut aids: Vec<TxnId> = self.acceptors.keys().copied().collect();
        aids.sort_unstable();
        for id in aids {
            h.write(format!("a{id:?}").as_bytes());
            self.acceptors
                .get(&id)
                .expect("sorted key")
                .fingerprint(now, h);
        }
        // Compact outcomes and retirement/checkpoint bookkeeping.
        let mut rids: Vec<TxnId> = self.retired.keys().copied().collect();
        rids.sort_unstable();
        for id in rids {
            let r = self.retired.get(&id).expect("sorted key");
            h.write(
                format!(
                    "r{id:?}={:?},{:?},{}",
                    r.decision,
                    r.commit_version,
                    now.since(r.decided_at).0
                )
                .as_bytes(),
            );
        }
        let mut xrids: Vec<TxnId> = self.xretired.keys().copied().collect();
        xrids.sort_unstable();
        for id in xrids {
            h.write(
                format!("xr{id:?}={:?}", self.xretired.get(&id).expect("sorted key")).as_bytes(),
            );
        }
        for (t, id) in &self.retire_queue {
            h.write(format!("rq{}:{id:?}", now.since(*t).0).as_bytes());
        }
        let mut lsns: Vec<(TxnId, Lsn)> = self.first_lsn.iter().map(|(t, l)| (*t, *l)).collect();
        lsns.sort_unstable();
        for (id, lsn) in lsns {
            h.write(format!("fl{id:?}@{lsn:?}").as_bytes());
        }
    }
}

/// Convenience: builds one [`SiteNode`] per site over a shared catalog.
///
/// `sites` should cover every site appearing in the catalog (plus any
/// extra client-only sites). Initial values default to zero.
pub fn build_cluster(
    sites: impl IntoIterator<Item = SiteId>,
    catalog: &Catalog,
    t_bound: qbc_simnet::Duration,
    mut customize: impl FnMut(NodeConfig) -> NodeConfig,
) -> Vec<(SiteId, SiteNode)> {
    sites
        .into_iter()
        .map(|s| {
            let cfg = customize(NodeConfig::new(s, catalog.clone(), t_bound));
            (s, SiteNode::new(cfg, |_| 0))
        })
        .collect()
}
