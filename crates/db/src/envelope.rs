//! The network message envelope and timer vocabulary of a database site.

use qbc_core::{Msg, ProtocolKind, TimerKind, TxnId, TxnSpec, WriteSet};
use qbc_election::{ElectionMsg, ElectionTimer};
use qbc_simnet::Label;
use qbc_votes::{ItemId, Version};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything a site sends over the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum NetMsg {
    /// A commit/termination protocol message.
    Proto(Msg),
    /// A protocol message with the sender's commit-stable watermark
    /// piggybacked on it. Only emitted when snapshot reads are enabled
    /// ([`crate::NodeConfig::snapshot_reads`]): watermarks spread on
    /// the messages the protocol already exchanges, costing no extra
    /// round. A receiver records the watermark and then handles the
    /// inner message exactly as a bare [`NetMsg::Proto`].
    ProtoW {
        /// The protocol message being carried.
        msg: Msg,
        /// The sender's site-local commit-stable watermark.
        wm: Version,
    },
    /// A per-transaction election message; carries the spec so sites
    /// that never saw the transaction can still take part.
    Election {
        /// Transaction whose termination needs a coordinator.
        txn: TxnId,
        /// Transaction description (shared: one allocation per
        /// transaction, refcounted across every election message).
        spec: Arc<TxnSpec>,
        /// The election payload.
        msg: ElectionMsg,
    },
    /// Quorum-read request for one item copy.
    ReadReq {
        /// Client-chosen request id.
        req_id: u64,
        /// Item requested.
        item: ItemId,
    },
    /// Reply to [`NetMsg::ReadReq`].
    ReadRep {
        /// Echoed request id.
        req_id: u64,
        /// Item.
        item: ItemId,
        /// Copy content if readable here: `(version, value)`. `None`
        /// when this site has no copy, or the copy is locked by an
        /// undecided transaction (the paper's blocked-locks effect).
        copy: Option<(Version, i64)>,
    },
    /// Snapshot-read request for one item copy: answered from the
    /// serving site's multi-version store at its shard watermark,
    /// bypassing locks and pins entirely (never refused for a pinned
    /// copy — the whole point of the snapshot path).
    SnapReadReq {
        /// Client-chosen request id.
        req_id: u64,
        /// Item requested.
        item: ItemId,
    },
    /// Reply to [`NetMsg::SnapReadReq`].
    SnapReadRep {
        /// Echoed request id.
        req_id: u64,
        /// Item.
        item: ItemId,
        /// `(version, value)` served at the watermark; `None` only when
        /// the serving site holds no copy of the item at all.
        copy: Option<(Version, i64)>,
        /// The shard watermark the read was served at.
        wm: Version,
    },
    /// A client asks this site to coordinate a new transaction. This is
    /// the wire form of [`crate::SiteNode::begin_transaction`], used by
    /// front-ends (the cluster runtime) on transports that cannot call
    /// into a node directly (the threaded substrate).
    BeginTxn {
        /// Client-chosen transaction id (globally unique).
        txn: TxnId,
        /// Items and values to write.
        writeset: WriteSet,
        /// Commit protocol to run.
        protocol: ProtocolKind,
    },
    /// A client asks this site to coordinate a snapshot read: the wire
    /// form of [`crate::SiteNode::start_snapshot_read`], for front-ends
    /// on transports that cannot call into a node directly.
    BeginSnapRead {
        /// Client-chosen request id.
        req_id: u64,
        /// Item to read.
        item: ItemId,
    },
    /// A client asks this site to coordinate a *cross-shard* transaction:
    /// the wire form of [`crate::SiteNode::begin_xshard`]. The branch
    /// specs are pre-split by the cluster layer (only it holds every
    /// shard's catalog), each carrying this site as `parent`.
    BeginXTxn {
        /// Client-chosen transaction id (globally unique; shared by
        /// every branch).
        txn: TxnId,
        /// One branch spec per involved shard.
        branches: Vec<Arc<TxnSpec>>,
    },
}

impl Label for NetMsg {
    fn label(&self) -> &'static str {
        match self {
            // The watermark wrapper is transparent: message accounting
            // (and the E16 comparisons built on it) keep seeing the
            // protocol message inside.
            NetMsg::Proto(m) | NetMsg::ProtoW { msg: m, .. } => m.label(),
            NetMsg::Election { msg, .. } => msg.label(),
            NetMsg::ReadReq { .. } => "READ-REQ",
            NetMsg::ReadRep { .. } => "READ-REP",
            NetMsg::SnapReadReq { .. } => "SNAP-READ-REQ",
            NetMsg::SnapReadRep { .. } => "SNAP-READ-REP",
            NetMsg::BeginSnapRead { .. } => "BEGIN-SNAP-READ",
            NetMsg::BeginTxn { .. } => "BEGIN-TXN",
            NetMsg::BeginXTxn { .. } => "BEGIN-XTXN",
        }
    }
}

/// Everything a site arms timers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeTimer {
    /// A protocol timer (vote/ack/state collection, watchdog, retry).
    Proto(TimerKind),
    /// An election timer for a transaction's termination coordinator
    /// election.
    Election {
        /// Transaction.
        txn: TxnId,
        /// Election-internal timer.
        timer: ElectionTimer,
    },
    /// Quorum-read collection window expired.
    ReadTimeout {
        /// Request id.
        req_id: u64,
    },
    /// Retire a finished read collector: once armed (at resolution,
    /// one collection window after the result settled) the entry is
    /// removed outright, bounding the per-site read tables under
    /// sustained read load.
    ReadRetire {
        /// Request id.
        req_id: u64,
    },
    /// A snapshot read's per-site attempt window expired: try the next
    /// copy site, or give up after the last one.
    SnapReadTimeout {
        /// Request id.
        req_id: u64,
    },
    /// The group-commit batch window expired: force the staged records.
    FlushWal,
    /// A WAL force issued earlier completed (the serialized log device
    /// model of [`crate::NodeConfig::force_latency`]).
    WalForceDone {
        /// Id of the completed force batch.
        batch: u64,
    },
    /// The periodic checkpoint tick
    /// ([`crate::NodeConfig::checkpoint_interval`]): write a
    /// [`qbc_core::LogRecord::Checkpoint`] if the log grew, then
    /// truncate the dead prefix.
    Checkpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_core::Decision;

    #[test]
    fn labels_delegate() {
        let m = NetMsg::Proto(Msg::Decided {
            txn: TxnId(1),
            decision: Decision::Abort,
            commit_version: None,
        });
        assert_eq!(m.label(), "DECIDED");
        let r = NetMsg::ReadReq {
            req_id: 1,
            item: ItemId(0),
        };
        assert_eq!(r.label(), "READ-REQ");
        // The watermark wrapper is invisible to message accounting.
        let w = NetMsg::ProtoW {
            msg: Msg::Decided {
                txn: TxnId(1),
                decision: Decision::Abort,
                commit_version: None,
            },
            wm: Version(3),
        };
        assert_eq!(w.label(), "DECIDED");
        let s = NetMsg::SnapReadRep {
            req_id: 2,
            item: ItemId(1),
            copy: Some((Version(1), 7)),
            wm: Version(1),
        };
        assert_eq!(s.label(), "SNAP-READ-REP");
    }
}
