//! The network message envelope and timer vocabulary of a database site.

use qbc_core::{Msg, ProtocolKind, TimerKind, TxnId, TxnSpec, WriteSet};
use qbc_election::{ElectionMsg, ElectionTimer};
use qbc_simnet::Label;
use qbc_votes::{ItemId, Version};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything a site sends over the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum NetMsg {
    /// A commit/termination protocol message.
    Proto(Msg),
    /// A per-transaction election message; carries the spec so sites
    /// that never saw the transaction can still take part.
    Election {
        /// Transaction whose termination needs a coordinator.
        txn: TxnId,
        /// Transaction description (shared: one allocation per
        /// transaction, refcounted across every election message).
        spec: Arc<TxnSpec>,
        /// The election payload.
        msg: ElectionMsg,
    },
    /// Quorum-read request for one item copy.
    ReadReq {
        /// Client-chosen request id.
        req_id: u64,
        /// Item requested.
        item: ItemId,
    },
    /// Reply to [`NetMsg::ReadReq`].
    ReadRep {
        /// Echoed request id.
        req_id: u64,
        /// Item.
        item: ItemId,
        /// Copy content if readable here: `(version, value)`. `None`
        /// when this site has no copy, or the copy is locked by an
        /// undecided transaction (the paper's blocked-locks effect).
        copy: Option<(Version, i64)>,
    },
    /// A client asks this site to coordinate a new transaction. This is
    /// the wire form of [`crate::SiteNode::begin_transaction`], used by
    /// front-ends (the cluster runtime) on transports that cannot call
    /// into a node directly (the threaded substrate).
    BeginTxn {
        /// Client-chosen transaction id (globally unique).
        txn: TxnId,
        /// Items and values to write.
        writeset: WriteSet,
        /// Commit protocol to run.
        protocol: ProtocolKind,
    },
    /// A client asks this site to coordinate a *cross-shard* transaction:
    /// the wire form of [`crate::SiteNode::begin_xshard`]. The branch
    /// specs are pre-split by the cluster layer (only it holds every
    /// shard's catalog), each carrying this site as `parent`.
    BeginXTxn {
        /// Client-chosen transaction id (globally unique; shared by
        /// every branch).
        txn: TxnId,
        /// One branch spec per involved shard.
        branches: Vec<Arc<TxnSpec>>,
    },
}

impl Label for NetMsg {
    fn label(&self) -> &'static str {
        match self {
            NetMsg::Proto(m) => m.label(),
            NetMsg::Election { msg, .. } => msg.label(),
            NetMsg::ReadReq { .. } => "READ-REQ",
            NetMsg::ReadRep { .. } => "READ-REP",
            NetMsg::BeginTxn { .. } => "BEGIN-TXN",
            NetMsg::BeginXTxn { .. } => "BEGIN-XTXN",
        }
    }
}

/// Everything a site arms timers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeTimer {
    /// A protocol timer (vote/ack/state collection, watchdog, retry).
    Proto(TimerKind),
    /// An election timer for a transaction's termination coordinator
    /// election.
    Election {
        /// Transaction.
        txn: TxnId,
        /// Election-internal timer.
        timer: ElectionTimer,
    },
    /// Quorum-read collection window expired.
    ReadTimeout {
        /// Request id.
        req_id: u64,
    },
    /// The group-commit batch window expired: force the staged records.
    FlushWal,
    /// A WAL force issued earlier completed (the serialized log device
    /// model of [`crate::NodeConfig::force_latency`]).
    WalForceDone {
        /// Id of the completed force batch.
        batch: u64,
    },
    /// The periodic checkpoint tick
    /// ([`crate::NodeConfig::checkpoint_interval`]): write a
    /// [`qbc_core::LogRecord::Checkpoint`] if the log grew, then
    /// truncate the dead prefix.
    Checkpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbc_core::Decision;

    #[test]
    fn labels_delegate() {
        let m = NetMsg::Proto(Msg::Decided {
            txn: TxnId(1),
            decision: Decision::Abort,
            commit_version: None,
        });
        assert_eq!(m.label(), "DECIDED");
        let r = NetMsg::ReadReq {
            req_id: 1,
            item: ItemId(0),
        };
        assert_eq!(r.label(), "READ-REQ");
    }
}
